"""Cardinality-estimation quality: q-error over a profiled workload replay.

The optimizer's cost model is only as good as its cardinality estimates,
and the paper's workload — short ad hoc queries over freshly uploaded,
never-ANALYZEd data — is exactly where estimates go wrong.  This module
re-executes the replayable slice of the query log with per-operator
profiling on (``Database.execute(profile=True)``) and compares the
planner's estimated row counts against the actuals the instrumented
executor observed, using the standard q-error metric::

    q(est, act) = max(est / act, act / est)      (rows floored at 1)

A q-error of 1.0 is a perfect estimate; the distribution's median/p90/max
— overall and per physical operator type — says which operators the
estimator misjudges and by how much.
"""

import collections

from repro.obs.profiler import q_error  # noqa: F401  (re-exported)


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class OperatorEstimation(object):
    """Q-error distribution for one physical operator type."""

    __slots__ = ("physical_name", "q_errors", "worst")

    def __init__(self, physical_name):
        self.physical_name = physical_name
        self.q_errors = []
        #: (q_error, est_rows, actual_rows, sql) for the worst instance.
        self.worst = None

    def add(self, q, est_rows, actual_rows, sql):
        self.q_errors.append(q)
        if self.worst is None or q > self.worst[0]:
            self.worst = (q, est_rows, actual_rows, sql)

    def summary(self):
        ordered = sorted(self.q_errors)
        return {
            "operator": self.physical_name,
            "count": len(ordered),
            "median_q_error": round(_percentile(ordered, 0.5), 2),
            "p90_q_error": round(_percentile(ordered, 0.9), 2),
            "max_q_error": round(ordered[-1], 2) if ordered else 0.0,
        }


class EstimationReport(object):
    """Estimated-vs-actual cardinalities over a profiled replay."""

    def __init__(self, per_operator, q_errors, queries_profiled,
                 queries_skipped):
        #: physical operator name -> :class:`OperatorEstimation`.
        self.per_operator = per_operator
        #: Flat q-error list over every executed operator instance.
        self.q_errors = q_errors
        self.queries_profiled = queries_profiled
        #: Replayable queries that failed to re-execute (churned catalog).
        self.queries_skipped = queries_skipped

    def summary(self):
        ordered = sorted(self.q_errors)
        return {
            "queries_profiled": self.queries_profiled,
            "queries_skipped": self.queries_skipped,
            "operators_profiled": len(ordered),
            "median_q_error": round(_percentile(ordered, 0.5), 2),
            "p90_q_error": round(_percentile(ordered, 0.9), 2),
            "max_q_error": round(ordered[-1], 2) if ordered else 0.0,
        }

    def operator_rows(self):
        """Per-operator summaries, worst median first."""
        rows = [op.summary() for op in self.per_operator.values()]
        rows.sort(key=lambda row: (-row["median_q_error"], row["operator"]))
        return rows

    def worst_estimates(self, n=5):
        """The ``n`` most misestimated operator instances."""
        worst = [
            (op.worst[0], op.physical_name, op.worst[1], op.worst[2], op.worst[3])
            for op in self.per_operator.values() if op.worst is not None
        ]
        worst.sort(reverse=True)
        return [
            {"q_error": round(q, 2), "operator": name,
             "est_rows": est, "actual_rows": act, "sql": sql}
            for q, name, est, act, sql in worst[:n]
        ]

    def to_dict(self):
        return {
            "summary": self.summary(),
            "per_operator": self.operator_rows(),
            "worst_estimates": self.worst_estimates(),
        }


def analyze_estimation(platform, limit=200):
    """Profile up to ``limit`` replayable logged queries; returns an
    :class:`EstimationReport`.

    Executes through ``platform.db`` directly (permissions were already
    enforced when the query was first logged) so the replay does not
    append to the query log or disturb the result cache — profiled
    executions bypass the cache by design, so actuals are real.
    """
    from repro.synth.driver import replayable_queries

    per_operator = collections.OrderedDict()
    q_errors = []
    profiled = 0
    skipped = 0
    for _user, sql in replayable_queries(platform, limit=limit):
        try:
            result = platform.db.execute(sql, profile=True)
        except Exception:
            skipped += 1
            continue
        profile = result.profile
        if profile is None:  # non-SELECT statement
            continue
        profiled += 1
        for stats in profile.operators:
            if not stats.loops:
                continue  # never opened (e.g. short-circuited subplan)
            q = stats.q_error
            q_errors.append(q)
            bucket = per_operator.get(stats.physical_name)
            if bucket is None:
                bucket = per_operator[stats.physical_name] = OperatorEstimation(
                    stats.physical_name)
            bucket.add(q, stats.est_rows, stats.actual_rows_per_loop, sql)
    return EstimationReport(per_operator, q_errors, profiled, skipped)


def render_estimation(report):
    """The report as a printable table (the CLI's --workload output)."""
    summary = report.summary()
    lines = [
        "Cardinality estimation over %d profiled queries "
        "(%d operator instances, %d skipped)"
        % (summary["queries_profiled"], summary["operators_profiled"],
           summary["queries_skipped"]),
        "overall q-error: median %.2f, p90 %.2f, max %.2f" % (
            summary["median_q_error"], summary["p90_q_error"],
            summary["max_q_error"]),
        "",
        "%-36s %8s %10s %10s %10s" % (
            "Operator", "Count", "Median Q", "P90 Q", "Max Q"),
        "-" * 78,
    ]
    for row in report.operator_rows():
        lines.append("%-36s %8d %10.2f %10.2f %10.2f" % (
            row["operator"], row["count"], row["median_q_error"],
            row["p90_q_error"], row["max_q_error"]))
    worst = report.worst_estimates()
    if worst:
        lines.append("")
        lines.append("worst estimates:")
        for item in worst:
            sql = item["sql"]
            if len(sql) > 60:
                sql = sql[:57] + "..."
            lines.append("  q=%-8.2f %-28s est %-10.1f actual %-10.1f %s" % (
                item["q_error"], item["operator"], item["est_rows"],
                item["actual_rows"], sql))
    return "\n".join(lines)
