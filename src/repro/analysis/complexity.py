"""Query complexity analyses (§6.1, Figures 7-10).

Thin, named wrappers over :mod:`repro.workload.metrics` so each figure has
one obvious entry point, plus side-by-side comparison helpers for the
SQLShare-vs-SDSS framing the paper uses.
"""

from repro.workload import metrics

#: The paper ignores this operator for SQLShare because the backend
#: requires a clustered index on every table.
SQLSHARE_IGNORED_OPERATORS = ("Clustered Index Scan",)


def length_histogram(catalog):
    """Figure 7: % of queries per ASCII-length bucket."""
    return metrics.length_histogram(catalog)


def length_comparison(catalogs):
    """Figure 7 with multiple workloads: {label: histogram}."""
    return {catalog.label: metrics.length_histogram(catalog) for catalog in catalogs}


def distinct_operator_distribution(catalog):
    """Figure 8: % of queries per distinct-operator bucket."""
    return metrics.distinct_operator_histogram(catalog)


def distinct_operator_comparison(catalogs):
    return {
        catalog.label: metrics.distinct_operator_histogram(catalog)
        for catalog in catalogs
    }


def operator_frequency(catalog, ignore=SQLSHARE_IGNORED_OPERATORS, top=10):
    """Figures 9/10: % of queries containing each physical operator."""
    return metrics.operator_frequency(catalog, ignore=ignore, top=top)


def top_decile_distinct_operators(catalog):
    """Mean distinct-operator count among the top 10% most complex queries
    (the paper: SQLShare's top decile has almost double SDSS's)."""
    counts = sorted(
        (record.distinct_operator_count for record in catalog), reverse=True
    )
    if not counts:
        return 0.0
    decile = counts[: max(1, len(counts) // 10)]
    return sum(decile) / float(len(decile))


def max_query_length(catalog):
    return max((record.length for record in catalog), default=0)
