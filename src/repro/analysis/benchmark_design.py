"""High-variety benchmark design (§8 of the paper, future work).

"We also plan to use the complexity and diversity properties of the query
workload to design a formal benchmark emphasizing high variety rather than
high volume or high velocity."

Given an analyzed workload, this module selects a small, weighted suite of
queries that preserves the workload's variety: one representative per plan
template, stratified across complexity bands, with weights proportional to
how much of the workload each template covers.
"""

import collections

from repro.analysis.diversity import normalize_sql, plan_template

#: Complexity bands by distinct-operator count (the paper's Fig 8 buckets).
BANDS = (("simple", 0, 3), ("moderate", 4, 7), ("complex", 8, 10**9))


def band_of(record):
    count = record.distinct_operator_count
    for name, low, high in BANDS:
        if low <= count <= high:
            return name
    return BANDS[-1][0]


class BenchmarkQuery(object):
    """One suite member: SQL, weight, and provenance metadata."""

    __slots__ = ("sql", "weight", "band", "template_population", "length",
                 "distinct_operators")

    def __init__(self, sql, weight, band, template_population, length,
                 distinct_operators):
        self.sql = sql
        self.weight = weight
        self.band = band
        self.template_population = template_population
        self.length = length
        self.distinct_operators = distinct_operators

    def __repr__(self):
        return "BenchmarkQuery(%s, w=%.4f, %s)" % (
            self.sql[:40], self.weight, self.band
        )


class VarietyBenchmark(object):
    """A designed suite plus its coverage statistics."""

    def __init__(self, queries, template_total, covered_templates):
        self.queries = queries
        self.template_total = template_total
        self.covered_templates = covered_templates

    @property
    def template_coverage(self):
        if not self.template_total:
            return 0.0
        return self.covered_templates / float(self.template_total)

    def band_mix(self):
        counts = collections.Counter(query.band for query in self.queries)
        return {name: counts.get(name, 0) for name, _lo, _hi in BANDS}

    def __len__(self):
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def design_benchmark(catalog, size=30, per_band_minimum=2):
    """Select a variety-preserving suite of ``size`` queries.

    Groups string-distinct queries by plan template, ranks templates by
    population (how many queries share them), then picks representatives
    round-robin across complexity bands so rare complex shapes are not
    crowded out by the popular simple ones.
    """
    groups = collections.defaultdict(list)
    seen = set()
    for record in catalog:
        if record.plan_json is None:
            continue
        key = normalize_sql(record.sql)
        if key in seen:
            continue
        seen.add(key)
        groups[plan_template(record.plan_json)].append(record)
    template_total = len(groups)
    # Representative per template: the median-length member (typical, not
    # degenerate).
    representatives = []
    for template, records in groups.items():
        records.sort(key=lambda record: record.length)
        representative = records[len(records) // 2]
        representatives.append((len(records), representative))
    # Rank by population within each band.
    by_band = collections.defaultdict(list)
    for population, record in representatives:
        by_band[band_of(record)].append((population, record))
    for members in by_band.values():
        members.sort(key=lambda pair: -pair[0])
    picked = []
    # Guarantee minority bands their floor first.
    for name, _lo, _hi in reversed(BANDS):  # complex first
        take = min(per_band_minimum, len(by_band.get(name, [])))
        picked.extend(by_band[name][:take])
        by_band[name] = by_band[name][take:]
    # Fill the rest by global population.
    remaining = sorted(
        (pair for members in by_band.values() for pair in members),
        key=lambda pair: -pair[0],
    )
    picked.extend(remaining[: max(0, size - len(picked))])
    picked = picked[:size]
    total_population = sum(population for population, _record in picked) or 1
    queries = [
        BenchmarkQuery(
            record.sql,
            population / float(total_population),
            band_of(record),
            population,
            record.length,
            record.distinct_operator_count,
        )
        for population, record in picked
    ]
    return VarietyBenchmark(queries, template_total, len(queries))


def run_benchmark(benchmark_suite, database, repetitions=1):
    """Execute a designed suite against a database; returns per-query
    weighted timings (wall clock, seconds)."""
    import time

    results = []
    for query in benchmark_suite:
        started = time.perf_counter()
        for _ in range(repetitions):
            database.execute(query.sql)
        elapsed = (time.perf_counter() - started) / repetitions
        results.append((query, elapsed))
    return results
