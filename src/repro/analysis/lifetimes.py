"""Dataset permanence analyses (§6.3, Figures 4, 11 and 12).

Lifetime of a dataset = days between the first and last query that accessed
it.  Table coverage = cumulative fraction of a user's tables referenced by
their first N% of queries.
"""

import collections


def queries_per_table(platform, cap=5):
    """Figure 4: histogram of how many queries touch each dataset.

    Uses the platform log's dataset references; datasets never queried are
    not part of the figure (it is a per-accessed-table histogram).
    """
    per_dataset = collections.Counter()
    for entry in platform.log.successful():
        for name in entry.datasets:
            per_dataset[name.lower()] += 1
    buckets = collections.OrderedDict()
    for count in range(1, cap):
        buckets[str(count)] = 0
    buckets[">=%d" % cap] = 0
    for _name, count in per_dataset.items():
        if count >= cap:
            buckets[">=%d" % cap] += 1
        else:
            buckets[str(count)] += 1
    return buckets


def dataset_access_times(platform):
    """dataset name -> sorted list of access timestamps (incl. creation)."""
    times = collections.defaultdict(list)
    for dataset in platform.datasets.values():
        if dataset.created_at is not None:
            times[dataset.name.lower()].append(dataset.created_at)
    for entry in platform.log.successful():
        for name in entry.datasets:
            times[name.lower()].append(entry.timestamp)
    return {name: sorted(stamps) for name, stamps in times.items()}


def dataset_lifetimes(platform, owner=None):
    """Lifetime in days per dataset (optionally for one owner).

    Returns {dataset name: lifetime_days} where lifetime is the difference
    between first and last access; a dataset accessed once has lifetime 0.
    """
    owners = {d.name.lower(): d.owner for d in platform.datasets.values()}
    lifetimes = {}
    for name, stamps in dataset_access_times(platform).items():
        if owner is not None and owners.get(name) != owner:
            continue
        lifetimes[name] = (stamps[-1] - stamps[0]).total_seconds() / 86400.0
    return lifetimes


def most_active_users(platform, count=12):
    """The N most active users by query count (Figures 11/12 use 12)."""
    activity = collections.Counter(
        entry.owner for entry in platform.log.successful()
    )
    return [user for user, _n in activity.most_common(count)]


def lifetime_curves(platform, user_count=12):
    """Figure 11: per top user, dataset lifetimes in rank order (desc).

    Returns {user: [lifetime_days, ...] sorted descending} — each list is
    one curve; x is the rank-order percentile.
    """
    curves = {}
    for user in most_active_users(platform, user_count):
        lifetimes = sorted(dataset_lifetimes(platform, owner=user).values(), reverse=True)
        if lifetimes:
            curves[user] = lifetimes
    return curves


def median_lifetime_days(platform):
    values = sorted(dataset_lifetimes(platform).values())
    if not values:
        return 0.0
    middle = len(values) // 2
    if len(values) % 2:
        return values[middle]
    return (values[middle - 1] + values[middle]) / 2.0


def table_coverage_curve(platform, user):
    """Figure 12: one user's coverage curve.

    Returns a list of (queries_pct, tables_pct) points: after the first N%
    of the user's queries, what fraction of all the tables they ever
    reference has been touched?
    """
    entries = [
        entry for entry in platform.log.successful() if entry.owner == user
    ]
    entries.sort(key=lambda entry: entry.timestamp)
    all_tables = set()
    for entry in entries:
        all_tables.update(name.lower() for name in entry.datasets)
    if not entries or not all_tables:
        return []
    seen = set()
    points = []
    for index, entry in enumerate(entries, start=1):
        seen.update(name.lower() for name in entry.datasets)
        points.append(
            (100.0 * index / len(entries), 100.0 * len(seen) / len(all_tables))
        )
    return points


def coverage_curves(platform, user_count=12):
    """Figure 12 across the most active users: {user: curve}."""
    return {
        user: table_coverage_curve(platform, user)
        for user in most_active_users(platform, user_count)
    }


def coverage_slope(curve):
    """Average d(tables)/d(queries) of a coverage curve (slope ~1 = ad hoc
    intermingled uploads; >1 early then flat = conventional usage)."""
    if len(curve) < 2:
        return 0.0
    (x0, y0), (x1, y1) = curve[0], curve[-1]
    if x1 == x0:
        return 0.0
    return (y1 - y0) / (x1 - x0)
