"""User classification (§6.4 / Figure 13: SQLShare attracts high churn).

Each user is a point (datasets owned, queries written).  Three regimes:

- *analytical* users upload relatively few tables and query them
  repeatedly — the conventional database workload;
- *exploratory* users upload about as many datasets as they write queries
  — the ad hoc, high-churn workload SQLShare was built for;
- *one-shot* users upload a single dataset, write a handful of queries and
  never return.
"""

import collections

ANALYTICAL = "analytical"
EXPLORATORY = "exploratory"
ONE_SHOT = "one-shot"

#: Queries-per-dataset ratio above which a user looks conventional.
ANALYTICAL_RATIO = 5.0
#: Maximum dataset count for the one-shot class.
ONE_SHOT_DATASETS = 1


class UserPoint(object):
    """One user's coordinates and class in the Figure 13 scatter."""

    __slots__ = ("user", "datasets", "queries", "category")

    def __init__(self, user, datasets, queries):
        self.user = user
        self.datasets = datasets
        self.queries = queries
        self.category = classify(datasets, queries)

    @property
    def ratio(self):
        return self.queries / float(max(1, self.datasets))

    def __repr__(self):
        return "UserPoint(%r, datasets=%d, queries=%d, %s)" % (
            self.user, self.datasets, self.queries, self.category
        )


def classify(datasets, queries):
    """Assign the Figure 13 category for one user."""
    if datasets <= ONE_SHOT_DATASETS:
        return ONE_SHOT
    if queries / float(max(1, datasets)) >= ANALYTICAL_RATIO:
        return ANALYTICAL
    return EXPLORATORY


def user_points(platform):
    """Build the Figure 13 scatter from a platform's state and log.

    Dataset counts include deleted datasets when they appear in the log
    history (ownership of a deleted dataset is reconstructed from uploads
    still present; queries always count)."""
    owned = collections.Counter(
        dataset.owner for dataset in platform.datasets.values()
    )
    queries = collections.Counter(
        entry.owner for entry in platform.log.successful()
    )
    users = sorted(set(owned) | set(queries))
    return [UserPoint(user, owned.get(user, 0), queries.get(user, 0)) for user in users]


def category_counts(points):
    counts = collections.Counter(point.category for point in points)
    return {
        ANALYTICAL: counts.get(ANALYTICAL, 0),
        EXPLORATORY: counts.get(EXPLORATORY, 0),
        ONE_SHOT: counts.get(ONE_SHOT, 0),
    }


def scatter_rows(points):
    """(datasets, queries, category) triples, ready for plotting/printing."""
    return [(point.datasets, point.queries, point.category) for point in points]
