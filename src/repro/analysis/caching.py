"""Bounded intermediate-result caching (§6.2's closing observation).

"We conclude that most of the reuse could be achieved with a small cache
if we have a good heuristic to determine which results will be reused."
This module tests that claim: it replays the workload against a cache with
a bounded number of entries under different admission/eviction heuristics
and reports how much of the infinite-cache saving each one captures.
"""

import collections

from repro.analysis.diversity import normalize_sql
from repro.analysis.reuse import _subtree_facets
from repro.workload.plans_json import walk_plan


class CachePolicy(object):
    """Eviction heuristic interface over (signature, filters, columns)."""

    name = "base"

    def priority(self, entry):
        """Lower priority is evicted first."""
        raise NotImplementedError


class LRUPolicy(CachePolicy):
    """Evict the least recently used subtree."""

    name = "lru"

    def priority(self, entry):
        return entry.last_used


class CostPolicy(CachePolicy):
    """Evict the cheapest-to-recompute subtree (keep expensive results)."""

    name = "cost"

    def priority(self, entry):
        return entry.cost


class CostFrequencyPolicy(CachePolicy):
    """Evict by (uses so far x cost): the paper's 'good heuristic' candidate."""

    name = "cost*freq"

    def priority(self, entry):
        return entry.cost * (1 + entry.hits)


class _Entry(object):
    __slots__ = ("signature", "filters", "columns", "cost", "last_used", "hits")

    def __init__(self, signature, filters, columns, cost, tick):
        self.signature = signature
        self.filters = filters
        self.columns = columns
        self.cost = cost
        self.last_used = tick
        self.hits = 0


class BoundedCache(object):
    """Fixed-capacity subtree cache with pluggable eviction."""

    def __init__(self, capacity, policy):
        self.capacity = capacity
        self.policy = policy
        self._entries = []
        self._tick = 0

    def lookup(self, signature, filters, columns):
        self._tick += 1
        for entry in self._entries:
            if entry.signature != signature:
                continue
            if entry.filters <= filters and entry.columns >= columns:
                entry.last_used = self._tick
                entry.hits += 1
                return entry
        return None

    def admit(self, signature, filters, columns, cost):
        self._tick += 1
        for entry in self._entries:
            if (entry.signature == signature and entry.filters == filters
                    and entry.columns == columns):
                return  # already cached
        entry = _Entry(signature, filters, columns, cost, self._tick)
        self._entries.append(entry)
        if len(self._entries) > self.capacity:
            victim = min(self._entries, key=self.policy.priority)
            self._entries.remove(victim)

    def __len__(self):
        return len(self._entries)


class CacheSimulation(object):
    """Result of one bounded-cache replay."""

    def __init__(self, policy_name, capacity):
        self.policy_name = policy_name
        self.capacity = capacity
        self.total_cost = 0.0
        self.saved_cost = 0.0

    @property
    def saved_fraction(self):
        if self.total_cost <= 0:
            return 0.0
        return self.saved_cost / self.total_cost


def simulate_cache(catalog, capacity, policy=None):
    """Replay a catalog's distinct queries against a bounded cache."""
    policy = policy or CostFrequencyPolicy()
    cache = BoundedCache(capacity, policy)
    result = CacheSimulation(policy.name, capacity)
    seen = set()
    records = sorted(catalog.records, key=lambda record: record.timestamp)
    for record in records:
        if record.plan_json is None:
            continue
        key = normalize_sql(record.sql)
        if key in seen:
            continue
        seen.add(key)
        query_total = max(record.plan_json.get("total", 0.0), 0.0)
        result.total_cost += query_total
        saved_here = 0.0
        covered = []
        for node in walk_plan(record.plan_json, include_subplans=False):
            if any(_inside(done, node) for done in covered):
                continue
            signature, filters, columns = _subtree_facets(node)
            if cache.lookup(signature, filters, columns) is not None:
                saved_here += node.get("total", 0.0)
                covered.append(node)
        for node in walk_plan(record.plan_json, include_subplans=False):
            signature, filters, columns = _subtree_facets(node)
            cache.admit(signature, filters, columns, node.get("total", 0.0))
        result.saved_cost += min(saved_here, query_total)
    return result


def _inside(ancestor, node):
    if ancestor is node:
        return True
    for child in ancestor.get("children", []):
        if _inside(child, node):
            return True
    return False


def capacity_sweep(catalog, capacities=(8, 32, 128, 512), policies=None):
    """Saved fraction per (policy, capacity) — the §6.2 'small cache' table."""
    policies = policies or [LRUPolicy(), CostPolicy(), CostFrequencyPolicy()]
    table = collections.OrderedDict()
    for policy in policies:
        row = collections.OrderedDict()
        for capacity in capacities:
            row[capacity] = simulate_cache(catalog, capacity, policy).saved_fraction
        table[policy.name] = row
    return table
