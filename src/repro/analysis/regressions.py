"""Plan-regression detection over a replayed workload.

The paper's longitudinal stance, applied to the optimizer: as a deployment
ages, tables grow, statistics drift, and the planner starts choosing
different physical plans for the *same* query text.  Most such changes are
improvements (that is why the optimizer re-plans); the dangerous ones are
regressions — the new plan is measurably slower than the baseline the old
plan had established.  SQL Server's Query Store made hunting these a
first-class DBA workflow; this analysis runs that workflow over our
synthetic deployment:

1. replay a slice of the logged workload several times with the result
   cache disabled, so every round executes for real and each query's
   current plan accumulates an established latency baseline;
2. perturb the deployment by growing every base table the replayed
   queries touch (repeated ``INSERT INTO t SELECT * FROM t`` — the
   catalog's live row counts are what the cost model reads, so growth is
   what flips scan/join strategies);
3. replay the same slice again and ask the Query Store which fingerprints
   changed plans and which of those changes were regressions.

The report feeds ``repro querystore --regressions`` style output and the
EXPERIMENTS.md regression-detection experiment.
"""

from repro.obs.querystore import QueryStore
from repro.reporting.dashboard import render_regression_verdict
from repro.reporting.tables import format_kv, format_table
from repro.synth.driver import (
    build_sqlshare_deployment,
    replay_workload,
    replayable_queries,
)


def _referenced_tables(platform, queries):
    """Base tables the replayed queries actually read (by log entry)."""
    wanted = {sql for _user, sql in queries}
    catalog = platform.db.catalog
    names = set()
    for entry in platform.log.successful():
        if entry.sql in wanted:
            for name in entry.tables:
                if catalog.has_table(name):
                    names.add(name.lower())
    return sorted(names)


def grow_tables(platform, names, doublings=3, max_rows=20000):
    """Grow tables in place by repeated self-insert; returns what changed.

    ``INSERT INTO t SELECT * FROM t`` goes through the engine, so row
    counts, catalog versions and cache invalidation all behave exactly as
    a real mutation — which is the point: the planner must see the growth
    the same way it would in production.
    """
    grown = []
    catalog = platform.db.catalog
    for name in names:
        if not catalog.has_table(name):
            continue
        table = catalog.get_table(name)
        before = len(table.rows)
        if before == 0:
            continue
        for _ in range(doublings):
            if len(table.rows) * 2 > max_rows:
                break
            platform.db.execute('INSERT INTO "%s" SELECT * FROM "%s"'
                                % (table.name, table.name))
        after = len(table.rows)
        if after != before:
            grown.append({"table": table.name, "rows_before": before,
                          "rows_after": after})
    return grown


def analyze_regressions(platform=None, limit=60, rounds=6, doublings=3,
                        max_rows=20000, min_executions=None, scale=None):
    """Replay → grow → replay; returns the workload-wide regression report.

    ``rounds`` is the number of replays on each side of the perturbation;
    it must be at least the store's ``min_executions`` or no baseline ever
    establishes (the default store needs 5).
    """
    if platform is None:
        platform, _generator = build_sqlshare_deployment(scale=scale)
    queries = replayable_queries(platform, limit=limit)
    # A dedicated store isolates the experiment from any ambient runtime
    # history; min_executions defaults to "every pre-growth round counts".
    platform.query_store = QueryStore(
        min_executions=min_executions if min_executions is not None
        else min(rounds, 5))
    runtime = None
    for _ in range(rounds):
        # Cache disabled: every round must execute for real, otherwise the
        # baselines would be one execution plus (rounds - 1) cache hits.
        # Adaptive re-planning off: this experiment measures *detection*
        # of a planted regression, so the loop must not correct it mid-run.
        _stats, runtime = replay_workload(
            platform, queries, workers=0, runtime=runtime,
            cache_enabled=False, tracing_enabled=False,
            adaptive_enabled=False)
    store = runtime.query_store
    changes_before = store.plan_changes
    grown = grow_tables(platform, _referenced_tables(platform, queries),
                        doublings=doublings, max_rows=max_rows)
    for _ in range(rounds):
        # Adaptive re-planning off: this experiment measures *detection*
        # of a planted regression, so the loop must not correct it mid-run.
        _stats, runtime = replay_workload(
            platform, queries, workers=0, runtime=runtime,
            cache_enabled=False, tracing_enabled=False,
            adaptive_enabled=False)
    changed = [
        entry.to_dict(store.min_executions, store.regression_factor)
        for entry in store.entries() if entry.plan_changes
    ]
    return {
        "queries_replayed": len(queries),
        "rounds": rounds,
        "grown_tables": grown,
        "plan_changes": store.plan_changes - changes_before,
        "changed_queries": changed,
        "regressions": store.regressions(),
        "store": store.summary(),
    }


def render_regressions(report):
    """The regression report as readable text."""
    out = [format_kv({
        "queries replayed": report["queries_replayed"],
        "rounds each side": report["rounds"],
        "tables grown": len(report["grown_tables"]),
        "plan changes": report["plan_changes"],
        "regressions": len(report["regressions"]),
    }, title="plan-regression detection (replay / grow / replay)")]
    if report["grown_tables"]:
        out.append(format_table(
            ["table", "rows before", "rows after"],
            [(g["table"], g["rows_before"], g["rows_after"])
             for g in report["grown_tables"][:15]],
            title="perturbation"))
    if report["changed_queries"]:
        out.append(format_table(
            ["fingerprint", "plans", "execs", "regressed", "sql"],
            [(entry["fingerprint"], len(entry["plans"]), entry["executions"],
              "yes" if entry["regression"] else "",
              entry["sql"][:44] + ("..." if len(entry["sql"]) > 44 else ""))
             for entry in report["changed_queries"][:20]],
            title="queries whose plan changed"))
    for verdict in report["regressions"]:
        out.append(render_regression_verdict(verdict))
    if not report["plan_changes"]:
        out.append("no plans changed — the perturbation did not move the "
                   "cost model (try more doublings or a larger workload)")
    return "\n\n".join(out)
