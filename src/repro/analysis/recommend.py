"""Context-aware query recommendation over the workload (SnipSuggest-style).

The paper motivates this directly: "research on query recommendation
platforms like SnipSuggest can be further improved by taking real science
queries into consideration", and proposes recommending "queries of
comparable complexity to queries that the user has written before" (§8).

The model here follows SnipSuggest's core idea: decompose every logged
query into *snippets* (tables, selected columns, predicate templates,
joins, group-by keys, order-by keys, functions), then rank candidate
snippets for a partial query by their conditional popularity given the
snippets already present.
"""

import collections

from repro.analysis.diversity import strip_constants
from repro.engine import ast_nodes as ast
from repro.engine.parser import parse
from repro.errors import SQLError


class QuerySnippets(object):
    """The snippet decomposition of one query."""

    __slots__ = ("tables", "columns", "predicates", "joins", "group_by",
                 "order_by", "functions")

    def __init__(self):
        self.tables = set()
        self.columns = set()
        self.predicates = set()
        self.joins = set()
        self.group_by = set()
        self.order_by = set()
        self.functions = set()

    def all_snippets(self):
        out = set()
        out.update(("table", item) for item in self.tables)
        out.update(("column", item) for item in self.columns)
        out.update(("predicate", item) for item in self.predicates)
        out.update(("join", item) for item in self.joins)
        out.update(("group_by", item) for item in self.group_by)
        out.update(("order_by", item) for item in self.order_by)
        out.update(("function", item) for item in self.functions)
        return out


def extract_snippets(sql):
    """Parse a query and decompose it into snippets.

    Raises :class:`SQLError` on unparseable input (callers usually skip).
    """
    query = parse(sql)
    snippets = QuerySnippets()
    for node in query.walk():
        if isinstance(node, ast.TableRef):
            snippets.tables.add(node.name.lower())
        elif isinstance(node, ast.Join) and node.condition is not None:
            names = sorted(
                ref.name.lower()
                for side in (node.left, node.right)
                for ref in side.walk()
                if isinstance(ref, ast.TableRef)
            )
            if len(names) >= 2:
                snippets.joins.add("%s JOIN %s" % (names[0], names[-1]))
        elif isinstance(node, ast.SelectItem):
            if isinstance(node.expr, ast.ColumnRef):
                snippets.columns.add(node.expr.name.lower())
        elif isinstance(node, ast.FuncCall):
            snippets.functions.add(node.name.lower())
        elif isinstance(node, ast.Select):
            if node.where is not None:
                snippets.predicates.update(_predicate_templates(node.where))
            for expr in node.group_by:
                if isinstance(expr, ast.ColumnRef):
                    snippets.group_by.add(expr.name.lower())
            for item in node.order_by:
                if isinstance(item.expr, ast.ColumnRef):
                    snippets.order_by.add(item.expr.name.lower())
    return snippets


def _predicate_templates(where):
    """Conjunct-level predicate templates with constants stripped."""
    conjuncts = _split(where)
    templates = set()
    for conjunct in conjuncts:
        text = _render(conjunct)
        if text:
            templates.add(strip_constants(text))
    return templates


def _split(node):
    if isinstance(node, ast.BinaryOp) and node.op == "and":
        return _split(node.left) + _split(node.right)
    return [node]


def _render(node):
    """Compact textual form of a predicate AST (best-effort)."""
    if isinstance(node, ast.BinaryOp):
        left = _render(node.left)
        right = _render(node.right)
        if left is None or right is None:
            return None
        return "%s %s %s" % (left, node.op.upper(), right)
    if isinstance(node, ast.ColumnRef):
        return node.name.lower()
    if isinstance(node, ast.Literal):
        if isinstance(node.value, str):
            return "'%s'" % node.value
        return str(node.value)
    if isinstance(node, ast.IsNull):
        operand = _render(node.operand)
        if operand is None:
            return None
        return "%s IS %sNULL" % (operand, "NOT " if node.negated else "")
    if isinstance(node, ast.Like):
        operand = _render(node.operand)
        pattern = _render(node.pattern)
        if operand is None or pattern is None:
            return None
        return "%s LIKE %s" % (operand, pattern)
    if isinstance(node, ast.Between):
        parts = [_render(node.operand), _render(node.low), _render(node.high)]
        if any(part is None for part in parts):
            return None
        return "%s BETWEEN %s AND %s" % tuple(parts)
    if isinstance(node, ast.FuncCall):
        args = [_render(arg) for arg in node.args]
        if any(arg is None for arg in args):
            return None
        return "%s(%s)" % (node.name.lower(), ", ".join(args))
    return None


class QueryRecommender(object):
    """Snippet popularity model built from a workload.

    ``corpus`` is an iterable of SQL strings (or anything with ``.sql``
    attributes, e.g. catalog records / log entries).
    """

    def __init__(self, corpus):
        #: snippet -> number of queries containing it.
        self.snippet_counts = collections.Counter()
        #: (context snippet, candidate snippet) -> co-occurrence count.
        self.pair_counts = collections.Counter()
        #: per-query snippet sets kept for similarity search.
        self._query_snippets = []
        self._sql_texts = []
        self.parsed = 0
        self.failed = 0
        for item in corpus:
            sql = item if isinstance(item, str) else item.sql
            try:
                snippets = extract_snippets(sql).all_snippets()
            except SQLError:
                self.failed += 1
                continue
            self.parsed += 1
            self._query_snippets.append(snippets)
            self._sql_texts.append(sql)
            for snippet in snippets:
                self.snippet_counts[snippet] += 1
            snippet_list = sorted(snippets)
            for context in snippet_list:
                for candidate in snippet_list:
                    if context != candidate:
                        self.pair_counts[(context, candidate)] += 1

    # -- ranking ------------------------------------------------------------------

    def score(self, candidate, context):
        """Smoothed conditional popularity of ``candidate`` given context."""
        if not context:
            return float(self.snippet_counts.get(candidate, 0)) / max(1, self.parsed)
        total = 0.0
        for present in context:
            joint = self.pair_counts.get((present, candidate), 0)
            base = self.snippet_counts.get(present, 0)
            total += (joint + 0.1) / (base + 1.0)
        return total / len(context)

    def recommend(self, partial_sql, kind=None, k=5):
        """Top-k snippets to add to a partial query.

        ``kind`` restricts candidates ("predicate", "column", "join",
        "group_by", "order_by", "function"); snippets already present are
        never recommended.
        """
        try:
            context = extract_snippets(partial_sql).all_snippets()
        except SQLError:
            context = set()
        candidates = []
        for snippet, _count in self.snippet_counts.most_common():
            if snippet in context:
                continue
            if kind is not None and snippet[0] != kind:
                continue
            candidates.append(snippet)
        ranked = sorted(
            candidates, key=lambda snippet: -self.score(snippet, context)
        )
        return [
            (snippet[0], snippet[1], self.score(snippet, context))
            for snippet in ranked[:k]
        ]

    def similar_queries(self, sql, k=3):
        """Logged queries most similar to ``sql`` by snippet Jaccard."""
        try:
            target = extract_snippets(sql).all_snippets()
        except SQLError:
            return []
        scored = []
        for snippets, text in zip(self._query_snippets, self._sql_texts):
            if text == sql:
                continue
            union = len(target | snippets)
            if union == 0:
                continue
            scored.append((len(target & snippets) / float(union), text))
        scored.sort(key=lambda pair: -pair[0])
        return scored[:k]


def build_recommender_from_catalog(catalog):
    """Convenience: a recommender over an analyzed workload catalog."""
    return QueryRecommender(record.sql for record in catalog)
