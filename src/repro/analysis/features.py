"""SQL feature usage (§5.3: frequent SQL idioms).

Counts the fraction of queries using language features "sometimes omitted
in simpler SQL dialects": sorting, top-k, outer joins and window functions.
The paper's headline numbers: sort 24%, top-k 2%, outer join 11%, window
functions 4%.
"""

from repro.engine import ast_nodes as ast
from repro.engine.parser import parse
from repro.errors import SQLError


class FeatureFlags(object):
    """Which §5.3 features one query uses."""

    __slots__ = ("sort", "top_k", "outer_join", "window", "subquery", "set_operation",
                 "group_by", "case", "cast")

    def __init__(self):
        self.sort = False
        self.top_k = False
        self.outer_join = False
        self.window = False
        self.subquery = False
        self.set_operation = False
        self.group_by = False
        self.case = False
        self.cast = False


def detect_features(sql):
    """Parse a query and flag the language features it uses."""
    query = parse(sql)
    flags = FeatureFlags()
    for node in query.walk():
        if isinstance(node, ast.Select):
            if node.order_by:
                flags.sort = True
            if node.top is not None:
                flags.top_k = True
            if node.group_by:
                flags.group_by = True
        elif isinstance(node, ast.SetOperation):
            flags.set_operation = True
            if node.order_by:
                flags.sort = True
        elif isinstance(node, ast.Join) and node.kind in ("left", "right", "full"):
            flags.outer_join = True
        elif isinstance(node, ast.WindowFunction):
            flags.window = True
        elif isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists,
                               ast.SubqueryRef)):
            flags.subquery = True
        elif isinstance(node, ast.Case):
            flags.case = True
        elif isinstance(node, ast.Cast):
            flags.cast = True
    return flags


FEATURE_NAMES = ("sort", "top_k", "outer_join", "window", "subquery",
                 "set_operation", "group_by", "case", "cast")


def feature_percentages(sql_texts):
    """Percent of queries using each feature; returns (dict, parsed, failed)."""
    counts = dict.fromkeys(FEATURE_NAMES, 0)
    parsed = 0
    failed = 0
    for sql in sql_texts:
        try:
            flags = detect_features(sql)
        except SQLError:
            failed += 1
            continue
        parsed += 1
        for name in FEATURE_NAMES:
            if getattr(flags, name):
                counts[name] += 1
    total = float(parsed) or 1.0
    percentages = {name: 100.0 * count / total for name, count in counts.items()}
    return percentages, parsed, failed


def survey_platform(platform):
    """Feature percentages over a platform's successful query log."""
    return feature_percentages(entry.sql for entry in platform.log.successful())
