"""Workload diversity / entropy (§6.2, Table 3 and Table 4).

Three equivalence notions, coarsest to finest:

1. exact ASCII string equivalence;
2. column-distinct equivalence (Mozafari et al.): two queries are the same
   when they reference the same set of attributes;
3. query plan templates (QPT): the optimized plan with all constants and
   literals removed — "it unifies most semantically equivalent queries but
   still incorporates the operations."

Plus the chunked workload-distance measure of §6.4 (Mozafari's method: a
workload is diverse when consecutive chronological chunks are far apart in
attribute-frequency space).
"""

import collections
import math
import re

from repro.workload.plans_json import walk_plan

_NUMBER_RE = re.compile(r"\b\d+(?:\.\d+)?(?:[eE][+-]?\d+)?\b")
_STRING_RE = re.compile(r"'(?:[^']|'')*'")


def normalize_sql(sql):
    """Light canonicalization for string-distinct counting."""
    return " ".join(sql.split()).lower()


def string_distinct(catalog):
    """Number of string-distinct queries (Table 3 row 2)."""
    return len({normalize_sql(record.sql) for record in catalog})


def column_distinct(catalog):
    """Number of column-distinct queries per Mozafari et al. (row 3).

    A query's identity is the frozen set of (table, column) attributes it
    references; computed over string-distinct queries, as the paper does.
    """
    seen_strings = set()
    signatures = set()
    for record in catalog:
        key = normalize_sql(record.sql)
        if key in seen_strings:
            continue
        seen_strings.add(key)
        signatures.add(frozenset(record.columns))
    return len(signatures)


def strip_constants(text):
    """Remove literals from a predicate/expression string."""
    text = _STRING_RE.sub("?", text)
    return _NUMBER_RE.sub("?", text)


def plan_template(plan_json):
    """The query plan template (QPT): plan structure minus constants.

    Hashable nested tuple of (physicalOp, stripped filters, children).
    Table/column identity is retained — two queries over different tables
    do different work — but every literal is replaced by ``?``.
    """
    return _node_template(plan_json)


def _node_template(node):
    filters = tuple(sorted(strip_constants(text) for text in node.get("filters", [])))
    outputs = tuple(node.get("outputColumns", []))
    children = tuple(_node_template(child) for child in node.get("children", []))
    subplans = tuple(_node_template(child) for child in node.get("subplans", []))
    return (node["physicalOp"], filters, outputs, children, subplans)


def distinct_templates(catalog):
    """Number of unique query plan templates (Table 3 row 4), computed over
    string-distinct queries."""
    seen_strings = set()
    templates = set()
    for record in catalog:
        if record.plan_json is None:
            continue
        key = normalize_sql(record.sql)
        if key in seen_strings:
            continue
        seen_strings.add(key)
        templates.add(plan_template(record.plan_json))
    return len(templates)


def entropy_table(catalog):
    """The full Table 3 column for one workload."""
    total = len(catalog)
    strings = string_distinct(catalog)
    columns = column_distinct(catalog)
    templates = distinct_templates(catalog)
    return collections.OrderedDict(
        [
            ("total_queries", total),
            ("string_distinct", strings),
            ("string_distinct_pct", 100.0 * strings / total if total else 0.0),
            ("column_distinct", columns),
            ("column_distinct_pct", 100.0 * columns / strings if strings else 0.0),
            ("distinct_templates", templates),
            ("distinct_templates_pct", 100.0 * templates / strings if strings else 0.0),
        ]
    )


# -- Table 4: expression operator distribution ------------------------------------


def expression_distribution(catalog, top=None):
    """Counter of expression operators (Table 4) plus distinct-op count."""
    counts = collections.Counter()
    for record in catalog:
        counts.update(record.expression_ops)
    ranked = counts.most_common(top)
    return ranked, len(counts)


# -- §6.4: Mozafari chunked workload distance ----------------------------------------


def mozafari_distance(records, chunks=2):
    """Workload diversity as distance between chronological chunks.

    Each chunk is a vector over unique referenced-attribute sets, holding
    the normalized frequency of queries referencing exactly that set; the
    result is the maximum euclidean distance between consecutive chunks.
    The original paper's maximum was 0.003; SQLShare users show orders of
    magnitude more.
    """
    records = sorted(records, key=lambda record: record.timestamp)
    if len(records) < chunks or chunks < 2:
        return 0.0
    size = len(records) // chunks
    vectors = []
    signatures = sorted(
        {frozenset(record.columns) for record in records},
        key=lambda signature: sorted(signature),
    )
    index_of = {signature: i for i, signature in enumerate(signatures)}
    for chunk_index in range(chunks):
        start = chunk_index * size
        end = start + size if chunk_index < chunks - 1 else len(records)
        chunk = records[start:end]
        vector = [0.0] * len(signatures)
        for record in chunk:
            vector[index_of[frozenset(record.columns)]] += 1.0
        total = sum(vector) or 1.0
        vectors.append([value / total for value in vector])
    distances = [
        _euclidean(vectors[i], vectors[i + 1]) for i in range(len(vectors) - 1)
    ]
    return max(distances)


def per_user_mozafari(catalog, chunks=2, min_queries=10):
    """§6.4: the distance for every user with enough queries."""
    result = {}
    for user, records in catalog.by_user().items():
        if len(records) >= min_queries:
            result[user] = mozafari_distance(records, chunks=chunks)
    return result


def _euclidean(left, right):
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(left, right)))
