"""Adaptive re-planning demonstration: the regression flip experiment.

SQLShare's users never tune anything — so when the optimizer's synthetic
selectivity guesses pick a catastrophically wrong join strategy, nobody
files a ticket.  The adaptive loop (``repro.adaptive``) is the automated
answer, and this module is its end-to-end proof:

1. **Plant** a misestimate.  A self-join whose inputs are filtered by
   several always-true ``<>`` predicates compounds the default
   selectivity guesses until the planner believes the join inputs are a
   handful of rows — and picks nested loops over a table where every row
   matches.  The plan is ~10x+ slower than the hash join it should be.
2. **Detect**: after the first real execution the runtime compares the
   plan's root estimate against the actual row count; the q-error blows
   through the bound and the controller schedules a probe.
3. **Probe**: the next execution of the same fingerprint is silently
   upgraded to a profiled run, harvesting per-operator actual
   cardinalities into the feedback store.
4. **Re-plan**: the fingerprint's cached plan is forgotten; the next
   planning pass consults observed cardinalities instead of guesses and
   flips to the hash join.

The experiment reports the per-execution plan/latency trail and how many
executions the correction took (the issue's acceptance bound is 20; in
practice it is 3).  A second experiment exercises the workload advisor
on the same machinery: a filter-heavy workload earns a clustering
(index) recommendation, an aggregate-view workload earns a
materialization, and both are applied and re-measured.

Surfaced as ``repro advise`` (no ``--url``) and
``benchmarks/bench_advisor.py``.
"""

import time

from repro.core.sqlshare import SQLShare
from repro.reporting.tables import format_kv, format_table

#: The planted-misestimate workload: every ``<>`` predicate is true for
#: every row, but each one multiplies the planner's estimate down, so the
#: join inputs look tiny and nested loops wins the cost race.
FLIP_SQL = (
    "select a.id, b.id from "
    "(select * from [sensor_sweep] where flag <> 'synthetic' "
    "and tag <> 'calib') a join "
    "(select * from [sensor_sweep] where flag <> 'dropped' "
    "and tag <> 'test') b on a.k = b.k"
)

#: Acceptance bound from the issue: the flip must land within this many
#: executions of the same statement.
MAX_EXECUTIONS_TO_CORRECT = 20


def _sweep_csv(rows):
    lines = ["id,k,flag,tag"]
    for i in range(rows):
        lines.append("%d,%d,real,obs" % (i, i))
    return "\n".join(lines) + "\n"


def _join_physical(explained):
    """The physical strategy of the topmost join in an explained plan."""
    stack = [explained.plan]
    while stack:
        operator = stack.pop(0)
        if "Join" in operator.logical:
            return operator.physical_name
        stack.extend(operator.subplans)
        stack.extend(operator.children)
    return explained.plan.physical_name


def build_flip_platform(rows=400):
    """A platform holding only the sensor_sweep table."""
    platform = SQLShare()
    platform.upload("ada", "sensor_sweep", _sweep_csv(rows))
    platform.make_public("ada", "sensor_sweep")
    return platform


def run_flip_experiment(rows=400, executions=8, q_error_bound=4.0):
    """Plant, detect, probe, re-plan; returns the full trail as a dict."""
    from repro.runtime import QueryRuntime, RuntimeConfig

    platform = build_flip_platform(rows=rows)
    runtime = QueryRuntime(platform, RuntimeConfig(
        max_workers=0,
        cache_enabled=False,  # every execution must be real
        tracing_enabled=False,
        adaptive_q_error_bound=q_error_bound,
    ))
    trail = []
    corrected_at = None
    initial = _join_physical(platform.db.explain(FLIP_SQL))
    try:
        for execution in range(1, executions + 1):
            planned = _join_physical(platform.db.explain(FLIP_SQL))
            start = time.perf_counter()
            job = runtime.submit("ada", FLIP_SQL, inline=True)
            elapsed = time.perf_counter() - start
            trail.append({
                "execution": execution,
                "plan": planned,
                "seconds": round(elapsed, 6),
                "profiled": job.profile_data is not None,
                "state": job.state,
            })
            if corrected_at is None and planned != initial:
                corrected_at = execution
    finally:
        runtime.shutdown()
    final = _join_physical(platform.db.explain(FLIP_SQL))
    slow = [t["seconds"] for t in trail if t["plan"] == initial
            and not t["profiled"]]
    fast = [t["seconds"] for t in trail if t["plan"] != initial
            and not t["profiled"]]
    return {
        "rows": rows,
        "sql": FLIP_SQL,
        "plan_before": initial,
        "plan_after": final,
        "flipped": final != initial,
        "executions_to_correct": corrected_at,
        "max_executions_allowed": MAX_EXECUTIONS_TO_CORRECT,
        "within_bound": (corrected_at is not None
                         and corrected_at <= MAX_EXECUTIONS_TO_CORRECT),
        "seconds_before": min(slow) if slow else None,
        "seconds_after": min(fast) if fast else None,
        "speedup": (round(min(slow) / min(fast), 2)
                    if slow and fast and min(fast) > 0 else None),
        "trail": trail,
        "adaptive": runtime.adaptive.summary() if runtime.adaptive else None,
    }


# -- the advisor experiment ----------------------------------------------------


def _readings_csv(sites=80, rows_per_site=40):
    lines = ["site,val"]
    for site in range(sites):
        for row in range(rows_per_site):
            lines.append("s%d,%d" % (site, row))
    return "\n".join(lines) + "\n"


def build_advisor_platform(sites=80, rows_per_site=40):
    """A platform with a filter-heavy base table and an aggregate view."""
    platform = SQLShare()
    platform.upload("ada", "readings", _readings_csv(sites, rows_per_site))
    platform.make_public("ada", "readings")
    platform.create_dataset(
        "ada", "site_totals",
        "SELECT site, COUNT(*) AS n, SUM(val) AS total "
        "FROM [readings] GROUP BY site")
    platform.make_public("ada", "site_totals")
    return platform


def _time_query(platform, user, sql, repeats=3):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        platform.run_query(user, sql)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def run_advisor_experiment(sites=80, rows_per_site=40, repeats=4):
    """Workload → recommendations → apply → re-measure; returns a dict."""
    from repro.adaptive import WorkloadAdvisor
    from repro.runtime import QueryRuntime, RuntimeConfig

    platform = build_advisor_platform(sites, rows_per_site)
    index_sql = "SELECT val FROM [readings] WHERE site = 's17'"
    mv_sql = "SELECT * FROM [site_totals]"
    runtime = QueryRuntime(platform, RuntimeConfig(
        max_workers=0, cache_enabled=False, tracing_enabled=False))
    try:
        for _ in range(repeats):
            runtime.submit("ada", index_sql, inline=True)
            runtime.submit("ada", mv_sql, inline=True)
        advisor = WorkloadAdvisor(platform, query_store=runtime.query_store)
        report = advisor.recommendations(top=10, min_executions=2)
        recommendations = report["recommendations"]
        index_recs = [r for r in recommendations if r["kind"] == "index"]
        mv_recs = [r for r in recommendations if r["kind"] == "materialize"]
        before = {
            "index_query_seconds": _time_query(platform, "ada", index_sql),
            "mv_query_seconds": _time_query(platform, "ada", mv_sql),
        }
        applied = []
        for recommendation in index_recs[:1] + mv_recs[:1]:
            applied.append(advisor.apply(recommendation))
        after = {
            "index_query_seconds": _time_query(platform, "ada", index_sql),
            "mv_query_seconds": _time_query(platform, "ada", mv_sql),
        }
    finally:
        runtime.shutdown()
    return {
        "queries_considered": report["queries_considered"],
        "recommendations": recommendations,
        "index_recommendations": len(index_recs),
        "mv_recommendations": len(mv_recs),
        "applied": applied,
        "before": before,
        "after": after,
        "index_speedup": (round(before["index_query_seconds"]
                                / after["index_query_seconds"], 2)
                          if after["index_query_seconds"] > 0 else None),
        "mv_speedup": (round(before["mv_query_seconds"]
                             / after["mv_query_seconds"], 2)
                       if after["mv_query_seconds"] > 0 else None),
    }


def analyze_adaptive(rows=400, executions=8):
    """Both experiments in one report (the ``repro advise`` local path)."""
    return {
        "flip": run_flip_experiment(rows=rows, executions=executions),
        "advisor": run_advisor_experiment(),
    }


def _seconds(value):
    return "%.4f" % value if value is not None else "n/a"


def render_adaptive(report):
    """The combined report as readable text."""
    flip = report["flip"]
    out = [format_kv({
        "table rows": flip["rows"],
        "plan before": flip["plan_before"],
        "plan after": flip["plan_after"],
        "corrected at execution": flip["executions_to_correct"],
        "bound": flip["max_executions_allowed"],
        "slow plan (s)": _seconds(flip["seconds_before"]),
        "fast plan (s)": _seconds(flip["seconds_after"]),
        "speedup": flip["speedup"],
    }, title="adaptive re-planning: planted regression flip")]
    out.append(format_table(
        ["exec", "plan", "seconds", "profiled"],
        [(t["execution"], t["plan"], "%.4f" % t["seconds"],
          "probe" if t["profiled"] else "")
         for t in flip["trail"]],
        title="execution trail"))
    advisor = report["advisor"]
    out.append(format_table(
        ["rank", "kind", "dataset", "column", "freq", "score"],
        [(r["rank"], r["kind"], r["dataset"], r.get("column", ""),
          r["frequency"], "%.1f" % r["score"])
         for r in advisor["recommendations"]],
        title="workload advisor recommendations"))
    out.append(format_kv({
        "index query before (s)": _seconds(
            advisor["before"]["index_query_seconds"]),
        "index query after (s)": _seconds(
            advisor["after"]["index_query_seconds"]),
        "index speedup": advisor["index_speedup"],
        "view query before (s)": _seconds(
            advisor["before"]["mv_query_seconds"]),
        "view query after (s)": _seconds(
            advisor["after"]["mv_query_seconds"]),
        "view speedup": advisor["mv_speedup"],
    }, title="advisor apply: measured effect"))
    return "\n\n".join(out)
