"""Reuse estimation by plan-subtree matching (§6.2: compress runtimes).

"We implemented a simple algorithm to calculate reuse of query results that
matches subtrees of query execution plans.  While iterating over the
queries, all subtrees are matched against all subtrees from previous
queries.  We allow a subtree that we match against to have less selective
filters (filters are a subset) and more columns for the same tables
(columns is a superset).  If we find that we have seen the same subtree
before, we add the cost of the subtree as estimated by the optimizer to the
saved runtime."

Duplicate queries are removed first, as the paper does for this analysis
(a repeated query trivially reuses everything).
"""

import re

from repro.analysis.diversity import normalize_sql
from repro.workload.plans_json import walk_plan

#: Optimizer-generated output names carry no identity across plans.
_GENERATED_NAME_RE = re.compile(r"^(Expr|WindowExpr|Hidden)\d+$")


class SubtreeIndex(object):
    """Previously-seen plan subtrees, keyed by a structural signature."""

    def __init__(self, exact_only=False):
        self._by_structure = {}
        #: Ablation switch: require exact filter/column match instead of the
        #: subset/superset relaxation.
        self.exact_only = exact_only

    def find_match(self, signature, filters, columns):
        """A previously-seen subtree this one could be computed from."""
        for seen_filters, seen_columns in self._by_structure.get(signature, []):
            if self.exact_only:
                if seen_filters == filters and seen_columns == columns:
                    return True
            else:
                # The cached subtree may filter less (its result is a
                # superset of rows) and carry more columns.
                if seen_filters <= filters and seen_columns >= columns:
                    return True
        return False

    def add(self, signature, filters, columns):
        self._by_structure.setdefault(signature, []).append((filters, columns))


def _subtree_facets(node):
    """(structural signature, filters frozenset, columns frozenset).

    The signature captures operator structure and the tables it reads.
    Filters are deliberately NOT part of the signature — the subset
    relaxation compares them (a cached subtree with fewer predicates can be
    filtered further) and they keep their constants (different constants
    are different results).
    """
    filters = set()
    columns = set()
    signature_parts = []
    for descendant in walk_plan(node, include_subplans=False):
        signature_parts.append(descendant["physicalOp"])
        signature_parts.extend(descendant.get("tables", []))
        filters.update(descendant.get("filters", []))
        columns.update(
            name
            for name in descendant.get("outputColumns", [])
            if not _GENERATED_NAME_RE.match(name)
        )
    return tuple(signature_parts), frozenset(filters), frozenset(columns)


class ReuseEstimate(object):
    """Result of the reuse analysis over one workload."""

    def __init__(self):
        self.total_cost = 0.0
        self.saved_cost = 0.0
        #: Per-query saving fractions (for the bimodality observation).
        self.per_query_fraction = []

    @property
    def saved_fraction(self):
        if self.total_cost <= 0:
            return 0.0
        return self.saved_cost / self.total_cost

    def bimodality(self, low=0.10, high=0.90):
        """Fractions of queries saving <low and >high of their runtime —
        the paper observes most savings are either very high or very low."""
        if not self.per_query_fraction:
            return 0.0, 0.0
        total = float(len(self.per_query_fraction))
        low_count = sum(1 for f in self.per_query_fraction if f < low)
        high_count = sum(1 for f in self.per_query_fraction if f > high)
        return low_count / total, high_count / total


def estimate_reuse(catalog, exact_only=False):
    """Run the subtree-matching reuse estimation over a catalog.

    Assumes infinite cache and zero reuse cost, like the paper ("It could
    overestimate since we assume infinite memory as well as no cost for
    using a previously computed result").
    """
    index = SubtreeIndex(exact_only=exact_only)
    estimate = ReuseEstimate()
    seen_sql = set()
    records = sorted(catalog.records, key=lambda record: record.timestamp)
    for record in records:
        if record.plan_json is None:
            continue
        key = normalize_sql(record.sql)
        if key in seen_sql:
            continue  # duplicates removed first
        seen_sql.add(key)
        query_total = max(record.plan_json.get("total", 0.0), 0.0)
        estimate.total_cost += query_total
        saved_here = 0.0
        saved_nodes = []
        for node in walk_plan(record.plan_json, include_subplans=False):
            if any(_is_descendant(done, node) for done in saved_nodes):
                continue  # already covered by a larger matched subtree
            signature, filters, columns = _subtree_facets(node)
            if index.find_match(signature, filters, columns):
                saved_here += node.get("total", 0.0)
                saved_nodes.append(node)
        for node in walk_plan(record.plan_json, include_subplans=False):
            signature, filters, columns = _subtree_facets(node)
            index.add(signature, filters, columns)
        saved_here = min(saved_here, query_total)
        estimate.saved_cost += saved_here
        estimate.per_query_fraction.append(
            saved_here / query_total if query_total > 0 else 0.0
        )
    return estimate


def _is_descendant(ancestor, node):
    if ancestor is node:
        return True
    for child in ancestor.get("children", []):
        if _is_descendant(child, node):
            return True
    return False
