"""Analyses of Sections 5 and 6 of the paper.

Each module reproduces one cluster of findings:

- :mod:`repro.analysis.idioms` -- schematization idioms (§5.1)
- :mod:`repro.analysis.sharing` -- views, permissions, view depth (§5.2, Fig 6)
- :mod:`repro.analysis.features` -- SQL feature usage (§5.3)
- :mod:`repro.analysis.complexity` -- length / operator complexity (§6.1, Figs 7-10)
- :mod:`repro.analysis.diversity` -- workload entropy and expressions (§6.2, Tables 3-4)
- :mod:`repro.analysis.reuse` -- cached-subtree reuse estimation (§6.2)
- :mod:`repro.analysis.lifetimes` -- dataset lifetime / coverage (§6.3, Figs 4, 11, 12)
- :mod:`repro.analysis.users` -- user classification (§6.4, Fig 13)
- :mod:`repro.analysis.hygiene` -- static-analysis error/smell rates per
  user archetype (builds on :mod:`repro.engine.semantic` and
  :mod:`repro.lint`)
- :mod:`repro.analysis.estimation` -- cardinality-estimation quality
  (q-error) from profiled workload replay (builds on :mod:`repro.obs`)
"""
