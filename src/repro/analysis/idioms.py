"""Schematization idiom detection (§5.1: relaxed schemas afford integration).

The paper searches the corpus of derived datasets for SQL idioms that
correspond to schematization tasks users perform *inside* the database:

- NULL injection: a CASE expression replacing special values with NULL;
- post hoc column types: CAST introducing types on existing columns;
- vertical recomposition: UNION stitching decomposed files back together;
- column renaming: aliases assigning semantic names (often to the default
  ``columnN`` names the ingest pipeline generated).
"""

from repro.engine import ast_nodes as ast
from repro.engine.parser import parse
from repro.errors import SQLError
from repro.ingest.ingestor import DEFAULT_COLUMN_TEMPLATE


class IdiomReport(object):
    """Idioms found in one query/view definition."""

    __slots__ = ("null_injection", "cast", "union", "renaming", "renamed_columns")

    def __init__(self):
        self.null_injection = False
        self.cast = False
        self.union = False
        self.renaming = False
        self.renamed_columns = 0

    def any(self):
        return self.null_injection or self.cast or self.union or self.renaming


def detect_idioms(sql):
    """Detect schematization idioms in one SQL text.

    Raises :class:`SQLError` (propagated from the parser) on unparseable
    input; callers typically skip those.
    """
    query = parse(sql)
    report = IdiomReport()
    for node in query.walk():
        if isinstance(node, ast.Case):
            if _case_yields_null(node):
                report.null_injection = True
        elif isinstance(node, ast.Cast):
            report.cast = True
        elif isinstance(node, ast.SetOperation) and node.op == "union":
            report.union = True
        elif isinstance(node, ast.SelectItem):
            if _is_rename(node):
                report.renaming = True
                report.renamed_columns += 1
    return report


def _case_yields_null(case_node):
    """A CASE branch (or its implicit ELSE) producing NULL — the cleaning
    idiom that maps special values like -999 or 'ND' to SQL NULL."""
    for _condition, result in case_node.whens:
        if isinstance(result, ast.Literal) and result.value is None:
            return True
    if case_node.else_result is None:
        # Searched CASE without ELSE yields NULL on fall-through; only count
        # it when some WHEN filters a specific special value (equality).
        return any(
            isinstance(condition, ast.BinaryOp) and condition.op in ("=", "<>")
            for condition, _result in case_node.whens
        )
    return isinstance(case_node.else_result, ast.Literal) and case_node.else_result.value is None


def _is_rename(item):
    """``expr AS name`` where expr is a bare column with a different name."""
    return (
        item.alias is not None
        and isinstance(item.expr, ast.ColumnRef)
        and item.alias.lower() != item.expr.name.lower()
    )


class CorpusIdiomSurvey(object):
    """The §5.1 numbers over a platform's derived datasets and uploads."""

    def __init__(self, platform):
        self.platform = platform
        self.null_injection_datasets = []
        self.cast_datasets = []
        self.union_datasets = []
        self.renaming_datasets = []
        self.unparseable = []
        self._run()

    def _run(self):
        for dataset in self.platform.datasets.values():
            if not dataset.is_derived:
                continue
            try:
                report = detect_idioms(dataset.sql)
            except SQLError:
                self.unparseable.append(dataset.name)
                continue
            if report.null_injection:
                self.null_injection_datasets.append(dataset.name)
            if report.cast:
                self.cast_datasets.append(dataset.name)
            if report.union:
                self.union_datasets.append(dataset.name)
            if report.renaming:
                self.renaming_datasets.append(dataset.name)

    # -- upload-side statistics --------------------------------------------------

    def default_column_name_stats(self):
        """(# uploads with >=1 defaulted name, # uploads with all defaulted,
        total uploads) — the paper's 1996 / 1691 / 3891 trio."""
        some = 0
        every = 0
        total = 0
        for report in self.platform.ingest_reports.values():
            total += 1
            if report.used_default_names:
                some += 1
            if report.all_names_defaulted:
                every += 1
        return some, every, total

    def summary(self):
        derived_total = sum(
            1 for d in self.platform.datasets.values() if d.is_derived
        )
        some_default, all_default, uploads = self.default_column_name_stats()
        datasets_total = len(self.platform.datasets) or 1
        return {
            "derived_datasets": derived_total,
            "null_injection": len(self.null_injection_datasets),
            "cast": len(self.cast_datasets),
            "union_recomposition": len(self.union_datasets),
            "renaming": len(self.renaming_datasets),
            "renaming_pct_of_datasets": 100.0 * len(self.renaming_datasets) / datasets_total,
            "uploads_with_default_names": some_default,
            "uploads_all_default_names": all_default,
            "uploads": uploads,
        }


def count_default_named_uploads(reports):
    """Convenience over raw ingest reports (used by tests and benches)."""
    some = sum(1 for report in reports if report.used_default_names)
    every = sum(1 for report in reports if report.all_names_defaulted)
    return some, every
