"""Query hygiene per user archetype: static-analysis findings over the log.

Runs the semantic analyzer + lint rules (``Database.check`` — no planning,
no execution) over every logged query and aggregates error and smell rates
by the Figure 13 user categories (analytical / exploratory / one-shot).
The hypothesis this measures: ad hoc, high-churn users produce more
ill-formed and smelly SQL than conventional analytical users.

One artifact needs care: checking a *historical* query against the *final*
catalog flags references to datasets that were deleted later (SQLShare's
routine churn) as unknown tables.  Successful queries whose only errors are
catalog lookups are therefore counted as ``stale``, not as user errors.
"""

import collections

from repro.analysis import users as user_analysis
from repro.errors import ERROR, WARNING


class UserHygiene(object):
    """Per-user tallies of static-analysis findings."""

    __slots__ = ("user", "category", "queries", "error_queries",
                 "smell_queries", "stale_queries", "ordinal_queries",
                 "diagnostics", "code_counts")

    def __init__(self, user, category):
        self.user = user
        self.category = category
        self.queries = 0
        #: Queries with at least one non-catalog error finding.
        self.error_queries = 0
        #: Queries with at least one warning/info finding (query smells).
        self.smell_queries = 0
        #: Successful queries whose only errors are catalog lookups —
        #: dataset churn, not user mistakes.
        self.stale_queries = 0
        #: Queries sorting by output position or ambiguous alias (LINT012)
        #: — the hand-edited-SQL signature tracked as its own rate.
        self.ordinal_queries = 0
        self.diagnostics = 0
        self.code_counts = collections.Counter()


class HygieneReport(object):
    """Aggregated hygiene over one platform's query log."""

    def __init__(self, per_user):
        self.per_user = per_user

    def category_rates(self):
        """Per-archetype rates: one dict per category plus 'all'.

        Each row reports the share of queries with errors, with smells,
        gone stale, and the mean diagnostics per query.
        """
        buckets = collections.defaultdict(list)
        for hygiene in self.per_user:
            buckets[hygiene.category].append(hygiene)
        buckets["all"] = list(self.per_user)
        rows = []
        for category in sorted(buckets):
            members = buckets[category]
            queries = sum(h.queries for h in members)
            if not queries:
                continue
            rows.append({
                "category": category,
                "users": len(members),
                "queries": queries,
                "error_rate": sum(h.error_queries for h in members) / queries,
                "smell_rate": sum(h.smell_queries for h in members) / queries,
                "stale_rate": sum(h.stale_queries for h in members) / queries,
                "ordinal_rate":
                    sum(h.ordinal_queries for h in members) / queries,
                "diagnostics_per_query":
                    sum(h.diagnostics for h in members) / queries,
            })
        return rows

    def top_codes(self, n=10):
        """Most frequent diagnostic codes over the whole corpus."""
        totals = collections.Counter()
        for hygiene in self.per_user:
            totals.update(hygiene.code_counts)
        return totals.most_common(n)


def analyze_hygiene(platform, entries=None, check=None, lint=True):
    """Check every logged query; returns a :class:`HygieneReport`.

    ``check`` overrides the analysis callable (``sql -> [Diagnostic]``);
    it defaults to ``platform.db.check``.
    """
    if check is None:
        check = lambda sql: platform.db.check(sql, lint=lint)  # noqa: E731
    categories = {
        point.user: point.category
        for point in user_analysis.user_points(platform)
    }
    per_user = {}
    for entry in platform.log:
        hygiene = per_user.get(entry.owner)
        if hygiene is None:
            category = categories.get(entry.owner, user_analysis.ONE_SHOT)
            hygiene = per_user[entry.owner] = UserHygiene(entry.owner, category)
        hygiene.queries += 1
        try:
            diagnostics = check(entry.sql)
        except Exception:
            diagnostics = []
        hygiene.diagnostics += len(diagnostics)
        for diagnostic in diagnostics:
            hygiene.code_counts[diagnostic.code] += 1
        if any(d.code == "LINT012" for d in diagnostics):
            hygiene.ordinal_queries += 1
        errors = [d for d in diagnostics if d.severity == ERROR]
        smells = [d for d in diagnostics if d.severity != ERROR]
        hard_errors = [d for d in errors if d.category != "catalog"]
        if errors and not hard_errors and entry.succeeded:
            hygiene.stale_queries += 1
        elif errors:
            hygiene.error_queries += 1
        if smells:
            hygiene.smell_queries += 1
    return HygieneReport(sorted(per_user.values(), key=lambda h: h.user))


def runtime_error_rates(platform, entries=None):
    """Observed (not predicted) error rates per user archetype.

    Where :func:`analyze_hygiene` re-checks historical SQL against today's
    catalog, this reads what actually happened at runtime: every log entry
    written by the platform/scheduler carries the failure's taxonomy class
    (:data:`repro.errors.ERROR_CLASSES`), so the rates here reflect real
    outcomes — including timeouts and cancellations static analysis can
    never see.  Returns one row per category plus ``"all"``, each with the
    total queries, overall error rate, and a per-class breakdown.
    """
    categories = {
        point.user: point.category
        for point in user_analysis.user_points(platform)
    }
    buckets = collections.defaultdict(
        lambda: {"queries": 0, "errors": 0,
                 "by_class": collections.Counter()})
    if entries is None:
        entries = platform.log
    for entry in entries:
        category = categories.get(entry.owner, user_analysis.ONE_SHOT)
        for key in (category, "all"):
            bucket = buckets[key]
            bucket["queries"] += 1
            if entry.error is not None:
                bucket["errors"] += 1
                klass = entry.error_class or "other"
                bucket["by_class"][klass] += 1
    rows = []
    for category in sorted(buckets):
        bucket = buckets[category]
        rows.append({
            "category": category,
            "queries": bucket["queries"],
            "error_rate": bucket["errors"] / bucket["queries"],
            "by_class": dict(bucket["by_class"]),
        })
    return rows
