"""Views and sharing statistics (§5.2: views afford controlled data sharing).

Headline numbers reproduced here: ~56% of datasets derived from others via
views; ~37% public; ~9% shared with specific users; ~2.5% of views access
datasets the author does not own; >10% of queries access datasets the query
author does not own; Figure 6's max-view-depth histogram for the top-100
most active users.
"""

import collections


class SharingSurvey(object):
    """Computes the §5.2 statistics over a platform."""

    def __init__(self, platform):
        self.platform = platform

    # -- dataset-side -----------------------------------------------------------

    def derived_fraction(self):
        """Fraction of datasets that are views over other datasets."""
        datasets = list(self.platform.datasets.values())
        if not datasets:
            return 0.0
        derived = sum(1 for d in datasets if d.derived_from)
        return derived / float(len(datasets))

    def public_fraction(self):
        datasets = list(self.platform.datasets.values())
        if not datasets:
            return 0.0
        public = sum(
            1 for d in datasets if self.platform.permissions.is_public(d.name)
        )
        return public / float(len(datasets))

    def shared_fraction(self):
        """Datasets shared with at least one specific user (not public)."""
        datasets = list(self.platform.datasets.values())
        if not datasets:
            return 0.0
        shared = sum(
            1
            for d in datasets
            if self.platform.permissions.shared_with(d.name)
        )
        return shared / float(len(datasets))

    def cross_owner_view_fraction(self):
        """Views referencing a dataset their author does not own (~2.5%)."""
        derived = [d for d in self.platform.datasets.values() if d.is_derived]
        if not derived:
            return 0.0
        crossing = 0
        for dataset in derived:
            for parent_name in dataset.derived_from:
                if not self.platform.has_dataset(parent_name):
                    continue  # parent deleted since; ownership unknowable
                if self.platform.dataset(parent_name).owner != dataset.owner:
                    crossing += 1
                    break
        return crossing / float(len(derived))

    # -- query-side --------------------------------------------------------------

    def cross_owner_query_fraction(self):
        """Queries touching a dataset the query author does not own (>10%)."""
        entries = self.platform.log.successful()
        if not entries:
            return 0.0
        crossing = 0
        for entry in entries:
            for name in entry.datasets:
                if not self.platform.has_dataset(name):
                    continue  # dataset deleted since
                if self.platform.dataset(name).owner != entry.owner:
                    crossing += 1
                    break
        return crossing / float(len(entries))

    # -- Figure 6 --------------------------------------------------------------------

    def view_depth_histogram(self, top_users=100, bins=((1, 3), (4, 6), (8, None))):
        """Max view depth per user, binned as in Figure 6 (1-3 / 4-6 / 8+).

        Only the ``top_users`` most active users (by query count) are
        considered, and users whose maximum depth is 0 (no derived views)
        are excluded, as the figure plots view-building users.
        """
        activity = collections.Counter(
            entry.owner for entry in self.platform.log.successful()
        )
        top = {user for user, _count in activity.most_common(top_users)}
        depths = self.platform.views.max_depth_by_user()
        histogram = collections.OrderedDict()
        for low, high in bins:
            label = "%d-%d" % (low, high) if high is not None else "%d+" % low
            histogram[label] = 0
        for user, depth in depths.items():
            if top and user not in top:
                continue
            if depth <= 0:
                continue
            for (low, high), label in zip(bins, histogram):
                if depth >= low and (high is None or depth <= high):
                    histogram[label] += 1
                    break
        return histogram

    def summary(self):
        return {
            "derived_pct": 100.0 * self.derived_fraction(),
            "public_pct": 100.0 * self.public_fraction(),
            "shared_pct": 100.0 * self.shared_fraction(),
            "cross_owner_view_pct": 100.0 * self.cross_owner_view_fraction(),
            "cross_owner_query_pct": 100.0 * self.cross_owner_query_fraction(),
        }
