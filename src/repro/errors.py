"""Exception hierarchy shared by the engine and the platform.

Every error raised on purpose by this package derives from :class:`ReproError`
so callers can catch the package's failures without catching programming
mistakes (``TypeError`` and friends propagate unchanged).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SQLError(ReproError):
    """Base class for errors raised while processing a SQL statement."""


class LexError(SQLError):
    """The statement could not be tokenized."""

    def __init__(self, message, position=None):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The statement could not be parsed."""

    def __init__(self, message, token=None):
        super().__init__(message)
        self.token = token


class BindError(SQLError):
    """A name (table, column, function) could not be resolved."""


class TypeCheckError(SQLError):
    """An expression is not well typed (e.g. ``'a' + DATE``)."""


class ExecutionError(SQLError):
    """A runtime failure while evaluating a query (cast failure, div by zero)."""


class CatalogError(SQLError):
    """Catalog violation: duplicate table, unknown view, invalid DDL."""


class IngestError(ReproError):
    """A file could not be staged or ingested."""


class PermissionError_(ReproError):
    """A dataset access was denied (broken ownership chain, private data)."""


class QuotaError(ReproError):
    """A user exceeded their storage quota."""


class DatasetError(ReproError):
    """Invalid dataset operation (unknown dataset, bad append, name clash)."""
