"""Exception hierarchy shared by the engine and the platform.

Every error raised on purpose by this package derives from :class:`ReproError`
so callers can catch the package's failures without catching programming
mistakes (``TypeError`` and friends propagate unchanged).

This module also hosts the two small value objects the static-analysis
layer is built on — :class:`Span` (a source location) and
:class:`Diagnostic` (one structured finding) — so the engine, the lint
rules and the CLI all agree on a single representation.
"""

#: Diagnostic severities, mildest last.
ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Ordering used when sorting / summarising mixed-severity reports.
SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


class Span(object):
    """A half-open ``[start, end)`` byte range with a 1-based line/column."""

    __slots__ = ("start", "end", "line", "col")

    def __init__(self, start, end=None, line=0, col=0):
        self.start = start
        self.end = start if end is None else end
        self.line = line
        self.col = col

    @classmethod
    def from_offset(cls, source, start, end=None):
        """Build a Span for ``start`` computing line/col from ``source``."""
        if start is None:
            return None
        start = min(start, len(source))
        line = source.count("\n", 0, start) + 1
        line_start = source.rfind("\n", 0, start) + 1
        return cls(start, end, line, start - line_start + 1)

    def to_dict(self):
        return {"start": self.start, "end": self.end,
                "line": self.line, "col": self.col}

    def __eq__(self, other):
        if not isinstance(other, Span):
            return NotImplemented
        return (self.start, self.end, self.line, self.col) == \
               (other.start, other.end, other.line, other.col)

    def __repr__(self):
        return "Span(%d:%d @%d,%d)" % (self.start, self.end, self.line, self.col)


class Diagnostic(object):
    """One structured analysis finding.

    ``category`` tells :func:`repro.engine.semantic.error_from_diagnostics`
    which exception class an error-severity finding maps to when surfaced
    through ``Database.execute`` ("catalog", "type", "bind", "syntax" or
    "lint").
    """

    __slots__ = ("code", "severity", "message", "span", "category")

    def __init__(self, code, severity, message, span=None, category="bind"):
        self.code = code
        self.severity = severity
        self.message = message
        self.span = span
        self.category = category

    @property
    def line(self):
        return self.span.line if self.span is not None else 0

    @property
    def col(self):
        return self.span.col if self.span is not None else 0

    def to_dict(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": self.span.to_dict() if self.span is not None else None,
            "category": self.category,
        }

    @classmethod
    def from_error(cls, error, source=None):
        """Adapt any :class:`SQLError` into a Diagnostic.

        ``source`` (the statement text) lets offset-only errors recover a
        line/column.
        """
        span = getattr(error, "span", None)
        if span is None and source is not None:
            position = getattr(error, "position", None)
            token = getattr(error, "token", None)
            if token is not None and getattr(token, "line", 0):
                span = Span(token.pos, getattr(token, "end", token.pos),
                            token.line, token.col)
            elif token is not None:
                span = Span.from_offset(source, token.pos)
            elif position is not None:
                span = Span.from_offset(source, position)
        if isinstance(error, LexError):
            code, category = "SYN001", "syntax"
        elif isinstance(error, ParseError):
            code, category = "SYN002", "syntax"
        elif isinstance(error, TypeCheckError):
            code, category = "SEM005", "type"
        elif isinstance(error, CatalogError):
            code, category = "SEM003", "catalog"
        elif isinstance(error, BindError):
            code, category = "SEM001", "bind"
        else:
            code, category = "SQL000", "bind"
        return cls(code, ERROR, str(error), span, category)

    def __repr__(self):
        where = ""
        if self.span is not None and self.span.line:
            where = " @%d:%d" % (self.span.line, self.span.col)
        return "Diagnostic(%s, %s%s: %s)" % (
            self.code, self.severity, where, self.message)


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SQLError(ReproError):
    """Base class for errors raised while processing a SQL statement.

    Instances may carry a :class:`Span` (``.span``) locating the offending
    token and, when raised from the semantic analyzer, the full list of
    findings for the statement (``.diagnostics``).
    """

    span = None
    diagnostics = None


class LexError(SQLError):
    """The statement could not be tokenized."""

    def __init__(self, message, position=None):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The statement could not be parsed."""

    def __init__(self, message, token=None):
        super().__init__(message)
        self.token = token
        if token is not None and getattr(token, "line", 0):
            self.span = Span(token.pos, getattr(token, "end", token.pos),
                             token.line, token.col)


class BindError(SQLError):
    """A name (table, column, function) could not be resolved."""

    def __init__(self, message, span=None):
        super().__init__(message)
        self.span = span


class TypeCheckError(SQLError):
    """An expression is not well typed (e.g. ``'a' + DATE``)."""

    def __init__(self, message, span=None):
        super().__init__(message)
        self.span = span


class ExecutionError(SQLError):
    """A runtime failure while evaluating a query (cast failure, div by zero)."""


class PlanCheckError(SQLError):
    """The plan verifier rejected a physical plan before execution.

    Raised only in strict mode (``Database.plan_check_mode = "strict"``,
    the default under tests/CI); serve mode downgrades to a warning plus
    the ``check_plan_violations_total`` metric.  Carries the structured
    findings (``.violations`` — :class:`repro.check.plancheck.PlanViolation`)
    so callers can render codes rather than parse the message.
    """

    def __init__(self, message, violations=None):
        super().__init__(message)
        self.violations = list(violations or [])


class QueryCancelled(ExecutionError):
    """The query was cancelled while executing (cooperative cancellation)."""


class QueryTimeout(QueryCancelled):
    """The query exceeded its statement timeout."""


class AdmissionError(ReproError):
    """The scheduler refused a submission (per-user queue depth exceeded)."""


class CatalogError(SQLError):
    """Catalog violation: duplicate table, unknown view, invalid DDL."""


class IngestError(ReproError):
    """A file could not be staged or ingested."""


class PermissionError_(ReproError):
    """A dataset access was denied (broken ownership chain, private data)."""


class QuotaError(ReproError):
    """A user exceeded their storage quota."""


class DatasetError(ReproError):
    """Invalid dataset operation (unknown dataset, bad append, name clash)."""


#: Error taxonomy used by the metrics registry and the query log: every
#: failure is counted under exactly one of these classes, so error rates
#: can be reported per class (and per user archetype) from runtime data.
ERROR_CLASSES = (
    "parse", "semantic", "runtime", "timeout", "cancelled",
    "permission", "admission", "other",
)


def classify_error(error):
    """Map an exception to its taxonomy class (one of ERROR_CLASSES).

    Order matters: ``QueryTimeout`` subclasses ``QueryCancelled`` which
    subclasses ``ExecutionError``, so the most specific class wins.
    """
    if isinstance(error, QueryTimeout):
        return "timeout"
    if isinstance(error, QueryCancelled):
        return "cancelled"
    if isinstance(error, (LexError, ParseError)):
        return "parse"
    if isinstance(error, (BindError, TypeCheckError, CatalogError)):
        return "semantic"
    if isinstance(error, ExecutionError):
        return "runtime"
    if isinstance(error, (PermissionError_, QuotaError)):
        return "permission"
    if isinstance(error, AdmissionError):
        return "admission"
    return "other"
