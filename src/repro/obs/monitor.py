"""Continuous monitor: sampler + time-series + alerts as one unit.

The runtime owns exactly one of these.  It wires the pieces the obvious
way — a :class:`MetricsSampler` snapshots the registry into a
:class:`TimeSeriesStore`, and every sample triggers one
:class:`AlertManager` evaluation — and exposes the combined health
verdict that ``GET /api/v1/health`` serves.
"""

from repro.obs.alerts import AlertManager, default_rules
from repro.obs.timeseries import DEFAULT_SAMPLES, MetricsSampler, TimeSeriesStore


class ContinuousMonitor(object):
    """One registry's sampler, history and alert evaluator."""

    def __init__(self, registry, interval=5.0, capacity=DEFAULT_SAMPLES,
                 rules=None):
        self.registry = registry
        self.store = TimeSeriesStore(capacity=capacity)
        self.alerts = AlertManager(
            self.store, rules if rules is not None else default_rules())
        self.sampler = MetricsSampler(
            registry, self.store, interval=interval,
            on_sample=self._on_sample)

    def _on_sample(self, store):
        self.alerts.evaluate(store)

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        self.sampler.start()
        return self

    def stop(self):
        self.sampler.stop()

    @property
    def running(self):
        return self.sampler.running

    def tick(self):
        """One synchronous sample+evaluate (tests and `repro top --once`)."""
        return self.sampler.sample_once()

    # -- verdicts -------------------------------------------------------------

    def health(self):
        payload = self.alerts.health()
        payload["sampler_running"] = self.running
        payload["samples_taken"] = self.store.samples_taken
        payload["last_sample_epoch"] = self.store.last_sample_epoch
        return payload

    def stats(self):
        return {
            "interval": self.sampler.interval,
            "running": self.running,
            "store": self.store.stats(),
            "health": self.alerts.health(),
        }
