"""The correlated structured event log: one JSON line per lifecycle event.

Tracing (``repro.obs.tracing``) answers "where did *this* request spend
its time"; the event log answers "what happened on this cluster, in
order" — the SkyServer Traffic Report's raw material.  Every process
(coordinator, each shard worker, a single-node server) appends one JSON
object per lifecycle event — submit, route, shard op, cache hit/miss,
batch transition, respawn, alert transition — stamped with the
``trace_id`` / ``shard`` / ``user`` / ``fingerprint`` that let
``repro logs`` correlate lines across processes into one timeline.

Timestamps are **monotonic offsets from a per-process epoch origin**:
each :class:`EventLog` records ``time.time()`` and ``time.monotonic()``
once at construction and stamps every event with
``origin_epoch + (monotonic_now - origin_mono)``.  Within a process the
order can therefore never be scrambled by wall-clock adjustment, and
across processes on one host the epochs agree closely enough for a
merged timeline (the ``seq`` field breaks ties deterministically).

Logs are written per-process with bounded rotation (``max_bytes`` per
file, ``backups`` rotated generations) so a long-lived shard can never
fill the disk, plus an in-memory ring for endpoint/test access.  Writes
swallow I/O errors: observability must never take a query path down.

Writes are buffered and flushed by a background thread every
``FLUSH_INTERVAL`` seconds rather than per line: at cluster query rates
a per-event flush syscall is the single largest observability cost, and
the log's contract is a merged timeline within tailing latency, not a
durability journal (the WAL owns durability).  ``flush()`` forces the
buffer out for readers that cannot wait.
"""

import hashlib
import json
import os
import threading
import time
from collections import deque

#: Default rotation geometry: ~4 MiB per generation, 3 generations kept.
MAX_BYTES = 4 * 1024 * 1024
BACKUPS = 3

#: How long a written line may sit in the process buffer before the
#: background flusher pushes it to the file (tail-following latency).
FLUSH_INTERVAL = 0.2

#: File name every process uses inside its own directory; ``repro logs``
#: discovers coordinator + shard logs by this name.
EVENTS_FILE = "events.jsonl"


def fingerprint(sql):
    """Cheap stable fingerprint of one statement's raw text.

    Deliberately *not* the query store's normalized fingerprint (that one
    needs a parse); a raw-text hash costs O(len) and is stable enough to
    group repeat submissions in the log.
    """
    if sql is None:
        return None
    return hashlib.sha256(sql.encode("utf-8", "replace")).hexdigest()[:12]


class EventLog(object):
    """A per-process structured event sink: ring buffer + rotated file."""

    def __init__(self, path=None, process="local", shard=None,
                 max_bytes=MAX_BYTES, backups=BACKUPS, capacity=2048):
        self.path = str(path) if path is not None else None
        self.process = process
        self.shard = shard
        self.max_bytes = max_bytes
        self.backups = backups
        self._origin_mono = time.monotonic()
        self._origin_epoch = time.time()
        self._ring = deque(maxlen=capacity)
        self._seq = 0
        self._fh = None
        self._lock = threading.Lock()
        self._dirty = False
        self._flusher = None
        self._closed = False

    # -- writing ---------------------------------------------------------------

    def emit(self, event, trace_id=None, user=None, fingerprint=None,
             **fields):
        """Record one event; returns the record dict (or None on a no-op
        sink).  Never raises: the log is advisory by contract."""
        record = {
            "ts": round(
                self._origin_epoch
                + (time.monotonic() - self._origin_mono), 6),
            "event": event,
            "process": self.process,
        }
        if self.shard is not None:
            record["shard"] = self.shard
        if trace_id is not None:
            record["trace_id"] = trace_id
        if user is not None:
            record["user"] = user
        if fingerprint is not None:
            record["fingerprint"] = fingerprint
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self._ring.append(record)
            if self.path is not None:
                try:
                    self._write_locked(record)
                except OSError:
                    pass  # a full/unwritable disk must not fail the caller
        return record

    def _write_locked(self, record):
        if self._fh is None:
            # Binary append: BufferedWriter.tell() is cheap and counts
            # buffered bytes, so rotation triggers without a flush.
            # One-time lazy open; writes after it are buffered (no
            # syscall) and the log is advisory by contract.
            self._fh = open(self.path, "ab")  # selfcheck: ok[SELFCHECK003]
            if self._flusher is None and not self._closed:
                self._flusher = threading.Thread(
                    target=self._flush_loop, name="event-log-flusher",
                    daemon=True)
                self._flusher.start()
        line = json.dumps(record, default=str, separators=(",", ":")) + "\n"
        self._fh.write(line.encode("utf-8"))
        self._dirty = True
        if self._fh.tell() >= self.max_bytes:
            self._rotate_locked()

    def _flush_loop(self):
        while not self._closed:
            time.sleep(FLUSH_INTERVAL)
            try:
                self.flush()
            except OSError:
                pass

    def flush(self):
        """Push buffered lines to the file (tailing readers see them)."""
        with self._lock:
            if self._fh is not None and self._dirty:
                self._dirty = False
                self._fh.flush()

    def _rotate_locked(self):
        """Shift ``events.jsonl.(n)`` up one generation and start fresh."""
        self._fh.close()
        self._fh = None
        self._dirty = False
        for index in range(self.backups - 1, 0, -1):
            src = "%s.%d" % (self.path, index)
            if os.path.exists(src):
                os.replace(src, "%s.%d" % (self.path, index + 1))
        if self.backups > 0:
            os.replace(self.path, self.path + ".1")
        else:
            os.remove(self.path)

    # -- reading ---------------------------------------------------------------

    def recent(self, limit=None, trace_id=None, user=None, event=None):
        """Ring-buffer contents, oldest first, optionally filtered."""
        with self._lock:
            records = list(self._ring)
        records = filter_events(records, trace_id=trace_id, user=user,
                                event=event)
        if limit is not None:
            records = records[-limit:]
        return records

    def close(self):
        self._closed = True
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
                self._dirty = False


class NullEventLog(object):
    """Every emit a no-op — the uninstrumented baseline's sink."""

    path = None
    process = "null"
    shard = None

    def emit(self, event, **_fields):
        return None

    def recent(self, **_filters):
        return []

    def flush(self):
        pass

    def close(self):
        pass


# -- the per-process default sink ---------------------------------------------
#
# One process has one event log (a worker *is* a shard; the coordinator is
# the coordinator), so module-level configure/emit keeps every emit site —
# scheduler, batch lane, alert manager, cluster layers — free of plumbing.

_default = EventLog()
_default_lock = threading.Lock()


def configure(path=None, process="local", shard=None, enabled=True,
              **kwargs):
    """Install this process's event sink (file-backed when ``path`` is
    given, ring-only otherwise, inert when ``enabled=False``)."""
    global _default
    log = (EventLog(path=path, process=process, shard=shard, **kwargs)
           if enabled else NullEventLog())
    with _default_lock:
        previous, _default = _default, log
    previous.close()
    return log


def get_log():
    return _default


def emit(event, **fields):
    """Emit on the process-default sink (see :meth:`EventLog.emit`)."""
    return _default.emit(event, **fields)


# -- merged readers (the `repro logs` machinery) ------------------------------

def cluster_log_paths(base_dir):
    """Every event-log path under a serve/cluster data directory:
    the coordinator's (or single node's) log first, then each shard's,
    each preceded by its rotated generations (oldest first)."""
    bases = [os.path.join(base_dir, EVENTS_FILE)]
    try:
        entries = sorted(os.listdir(base_dir))
    except OSError:
        entries = []
    for entry in entries:
        if entry.startswith("shard-"):
            bases.append(os.path.join(base_dir, entry, EVENTS_FILE))
    paths = []
    for base in bases:
        for index in range(BACKUPS, 0, -1):
            rotated = "%s.%d" % (base, index)
            if os.path.exists(rotated):
                paths.append(rotated)
        if os.path.exists(base):
            paths.append(base)
    return paths


def _parse_lines(fh):
    for line in fh:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail mid-rotation; skip, never die
        if isinstance(record, dict):
            yield record


def read_events(paths, trace_id=None, user=None, event=None):
    """All records from ``paths`` merged into one timeline, ordered by
    monotonic-offset timestamp (then process, then per-process seq)."""
    records = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                records.extend(_parse_lines(fh))
        except OSError:
            continue
    records = filter_events(records, trace_id=trace_id, user=user,
                            event=event)
    records.sort(key=_order_key)
    return records


def filter_events(records, trace_id=None, user=None, event=None):
    return [
        record for record in records
        if (trace_id is None or record.get("trace_id") == trace_id)
        and (user is None or record.get("user") == user)
        and (event is None or record.get("event") == event)
    ]


def _order_key(record):
    return (record.get("ts", 0.0), str(record.get("process", "")),
            record.get("seq", 0))


def follow_events(paths, poll=0.5, stop=None, trace_id=None, user=None,
                  event=None):
    """Tail-follow ``paths``: yield existing records merged, then poll for
    growth (a truncated/rotated file is re-read from the top).  ``stop``
    is a callable checked once per poll so tests and Ctrl-C handling can
    end the generator."""
    offsets = {}
    batch = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                batch.extend(_parse_lines(fh))
                offsets[path] = fh.tell()
        except OSError:
            offsets[path] = 0
    batch = filter_events(batch, trace_id=trace_id, user=user, event=event)
    batch.sort(key=_order_key)
    for record in batch:
        yield record
    while stop is None or not stop():
        time.sleep(poll)
        batch = []
        for path in paths:
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size < offsets.get(path, 0):
                offsets[path] = 0  # rotated under us: start over
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(offsets.get(path, 0))
                batch.extend(_parse_lines(fh))
                offsets[path] = fh.tell()
        batch = filter_events(batch, trace_id=trace_id, user=user,
                              event=event)
        batch.sort(key=_order_key)
        for record in batch:
            yield record
