"""A thread-safe metrics registry with Prometheus text exposition.

Three instrument kinds, mirroring the Prometheus data model:

- :class:`Counter` — monotonically increasing totals (optionally labeled);
- :class:`Gauge` — point-in-time values, settable directly or backed by a
  callback evaluated at scrape time (queue depth, cache entry counts);
- :class:`Histogram` — bucketed observations plus streaming quantile
  estimation (the P² algorithm: O(1) memory and time per observation, no
  sample retention), for latency distributions.

A :class:`MetricsRegistry` owns one namespace of instruments and renders
them all as the Prometheus text exposition format (version 0.0.4), which
``GET /api/v1/metrics`` serves.  Registration is idempotent — asking for an
existing name returns the existing instrument — so several components
(scheduler, cache, engine) can share one registry without coordination.

:class:`NullRegistry` is a no-op drop-in used to measure (and disable)
instrumentation overhead; every update on its instruments is a pass.
"""

import math
import threading
from collections import OrderedDict

#: Default histogram buckets (seconds): sub-millisecond to tens of seconds.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Quantiles every histogram estimates online.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


def buckets_up_to(max_seconds, base=DEFAULT_BUCKETS):
    """Extend the default bucket ladder geometrically to cover ``max_seconds``.

    ``DEFAULT_BUCKETS`` tops out at 10 s, which under-resolves queries that
    run up to a statement timeout of, say, 60 s — everything lands in +Inf.
    This returns the default ladder plus 10-25-50-style decades until the
    last bound is >= ``max_seconds``, so registration sites (and ``repro
    serve --histogram-max``) can match bucket resolution to the timeout.
    """
    buckets = list(base)
    steps = (1.0, 2.5, 5.0)
    decade = 10.0
    while buckets[-1] < max_seconds:
        for step in steps:
            bound = decade * step
            if bound > buckets[-1]:
                buckets.append(bound)
                if bound >= max_seconds:
                    break
        decade *= 10.0
    return tuple(buckets)


def _format_value(value):
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return "%d" % int(as_float)
    return repr(as_float)


def _escape_label(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(labels):
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (key, _escape_label(value))
        for key, value in sorted(labels.items())
    )
    return "{%s}" % inner


class P2Quantile(object):
    """Streaming quantile estimation via the P² algorithm (Jain & Chlamtac).

    Keeps five markers whose heights approximate the target quantile with
    O(1) state and O(1) work per observation — no sample is ever retained,
    so a histogram can sit on the per-query hot path.
    """

    __slots__ = ("q", "_count", "_heights", "_pos", "_desired", "_inc")

    def __init__(self, q):
        self.q = q
        self._count = 0
        self._heights = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value):
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            heights.append(value)
            heights.sort()
            return
        # Locate the cell and bump marker positions above it.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        pos = self._pos
        for index in range(cell + 1, 5):
            pos[index] += 1.0
        for index in range(5):
            self._desired[index] += self._inc[index]
        # Adjust the three interior markers toward their desired positions.
        for index in (1, 2, 3):
            delta = self._desired[index] - pos[index]
            if (delta >= 1.0 and pos[index + 1] - pos[index] > 1.0) or (
                delta <= -1.0 and pos[index - 1] - pos[index] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                pos[index] += step

    def _parabolic(self, i, step):
        heights, pos = self._heights, self._pos
        return heights[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (heights[i + 1] - heights[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (heights[i] - heights[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i, step):
        heights, pos = self._heights, self._pos
        j = i + int(step)
        return heights[i] + step * (heights[j] - heights[i]) / (pos[j] - pos[i])

    def value(self):
        if not self._heights:
            return 0.0
        if self._count <= 5:
            # Exact while the sample is tiny.
            rank = max(0, min(len(self._heights) - 1,
                              int(math.ceil(self.q * len(self._heights))) - 1))
            return self._heights[rank]
        return self._heights[2]

    # -- persistence (the Query Store checkpoints its estimators) ---------------

    def to_state(self):
        """JSON-safe marker state; :meth:`from_state` round-trips exactly."""
        return {
            "q": self.q,
            "count": self._count,
            "heights": list(self._heights),
            "pos": list(self._pos),
            "desired": list(self._desired),
        }

    @classmethod
    def from_state(cls, state):
        estimator = cls(state["q"])
        estimator._count = state["count"]
        estimator._heights = list(state["heights"])
        estimator._pos = list(state["pos"])
        estimator._desired = list(state["desired"])
        return estimator


class _Instrument(object):
    """Base: name, help text and a lock shared by all samples."""

    kind = "untyped"

    def __init__(self, name, help_text=""):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def samples(self):
        """Yield ``(series_name, labels_dict, value)`` triples."""
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing total, optionally labeled.

    ``counter.inc()`` bumps the unlabeled series; ``counter.labels(k=v)``
    returns a child bound to one label combination (children are cached, so
    hot paths can keep a reference and pay one dict hit + one add).
    """

    kind = "counter"

    def __init__(self, name, help_text=""):
        super(Counter, self).__init__(name, help_text)
        self._values = {}  # label-items tuple -> float

    def inc(self, amount=1.0):
        self.labels().inc(amount)

    def labels(self, **labels):
        return _BoundCounter(self, tuple(sorted(labels.items())))

    def value(self, **labels):
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def _add(self, key, amount):
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def samples(self):
        with self._lock:
            items = list(self._values.items())
        if not items:
            items = [((), 0.0)]
        return [(self.name, dict(key), value) for key, value in items]


class _BoundCounter(object):
    __slots__ = ("_counter", "_key")

    def __init__(self, counter, key):
        self._counter = counter
        self._key = key

    def inc(self, amount=1.0):
        self._counter._add(self._key, amount)


class Gauge(_Instrument):
    """A point-in-time value: set directly or computed at scrape time."""

    kind = "gauge"

    def __init__(self, name, help_text="", fn=None):
        super(Gauge, self).__init__(name, help_text)
        self._value = 0.0
        self._fn = fn

    def set(self, value):
        with self._lock:
            self._value = float(value)

    def inc(self, amount=1.0):
        with self._lock:
            self._value += amount

    def dec(self, amount=1.0):
        self.inc(-amount)

    def set_function(self, fn):
        """Back this gauge with a callable evaluated at scrape time."""
        self._fn = fn

    def value(self):
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return 0.0  # a scrape must never take the server down
        with self._lock:
            return self._value

    def samples(self):
        return [(self.name, {}, self.value())]


class Histogram(_Instrument):
    """Bucketed observations + online quantiles.

    ``observe`` is O(buckets) for the cumulative counts (a dozen
    comparisons) and O(1) for each P² estimator — no sample retention, so
    it is safe on the per-query hot path.
    """

    kind = "histogram"

    def __init__(self, name, help_text="", buckets=None,
                 quantiles=DEFAULT_QUANTILES):
        super(Histogram, self).__init__(name, help_text)
        self._bounds = tuple(sorted(buckets if buckets is not None
                                    else DEFAULT_BUCKETS))
        self._bucket_counts = [0] * (len(self._bounds) + 1)  # +Inf last
        self._sum = 0.0
        self._count = 0
        self._estimators = OrderedDict(
            (q, P2Quantile(q)) for q in quantiles
        )

    def observe(self, value):
        value = float(value)
        with self._lock:
            index = 0
            for bound in self._bounds:
                if value <= bound:
                    break
                index += 1
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1
            for estimator in self._estimators.values():
                estimator.observe(value)

    @property
    def count(self):
        with self._lock:
            return self._count

    @property
    def sum(self):
        with self._lock:
            return self._sum

    def quantile(self, q):
        """The streaming estimate for quantile ``q`` (must be configured)."""
        with self._lock:
            estimator = self._estimators.get(q)
            if estimator is None:
                raise KeyError("histogram %s does not track q=%s" % (self.name, q))
            return estimator.value()

    def quantiles(self):
        with self._lock:
            return {q: est.value() for q, est in self._estimators.items()}

    def to_dict(self):
        with self._lock:
            payload = {
                "count": self._count,
                "sum": round(self._sum, 6),
                "mean": round(self._sum / self._count, 6) if self._count else 0.0,
            }
            for q, estimator in self._estimators.items():
                payload["p%g" % (q * 100)] = round(estimator.value(), 6)
        return payload

    def samples(self):
        with self._lock:
            counts = list(self._bucket_counts)
            total_sum, total_count = self._sum, self._count
        out = []
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            out.append((self.name + "_bucket", {"le": _format_value(bound)},
                        cumulative))
        out.append((self.name + "_bucket", {"le": "+Inf"}, total_count))
        out.append((self.name + "_sum", {}, total_sum))
        out.append((self.name + "_count", {}, total_count))
        return out


class _CallbackCounter(_Instrument):
    """A counter whose value is read from elsewhere at scrape time.

    Used to expose counters another component already maintains (the result
    cache's :class:`~repro.runtime.cache.CacheStats`) without double
    accounting: the registry holds only the reader.
    """

    kind = "counter"

    def __init__(self, name, help_text, fn):
        super(_CallbackCounter, self).__init__(name, help_text)
        self._fn = fn

    def value(self):
        try:
            return float(self._fn())
        except Exception:
            return 0.0

    def samples(self):
        return [(self.name, {}, self.value())]


class MetricsRegistry(object):
    """One namespace of instruments; renders Prometheus text exposition."""

    def __init__(self, default_buckets=None):
        self._instruments = OrderedDict()  # name -> instrument
        self._lock = threading.Lock()
        #: Bucket bounds used when a histogram is registered without
        #: explicit ``buckets``.  Settable at construction or later (e.g.
        #: ``repro serve --histogram-max``) — but only *before* the first
        #: registration of a histogram takes effect for it, because
        #: registration is idempotent by name.
        self.default_buckets = (tuple(default_buckets)
                                if default_buckets is not None else None)

    # -- registration (idempotent by name) --------------------------------------

    def _get_or_create(self, name, factory, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is not None:
                if instrument.kind != kind:
                    raise ValueError(
                        "metric %r already registered as %s"
                        % (name, instrument.kind)
                    )
                return instrument
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name, help_text=""):
        return self._get_or_create(
            name, lambda: Counter(name, help_text), "counter")

    def gauge(self, name, help_text=""):
        return self._get_or_create(name, lambda: Gauge(name, help_text), "gauge")

    def histogram(self, name, help_text="", buckets=None,
                  quantiles=DEFAULT_QUANTILES):
        if buckets is None:
            buckets = self.default_buckets
        return self._get_or_create(
            name,
            lambda: Histogram(name, help_text, buckets=buckets,
                              quantiles=quantiles),
            "histogram",
        )

    def gauge_callback(self, name, help_text, fn):
        """A gauge computed by ``fn()`` at scrape time (replaces existing)."""
        gauge = Gauge(name, help_text, fn=fn)
        with self._lock:
            self._instruments[name] = gauge
        return gauge

    def counter_callback(self, name, help_text, fn):
        """A counter read from ``fn()`` at scrape time (replaces existing)."""
        counter = _CallbackCounter(name, help_text, fn)
        with self._lock:
            self._instruments[name] = counter
        return counter

    def get(self, name):
        with self._lock:
            return self._instruments.get(name)

    def unregister(self, name):
        with self._lock:
            self._instruments.pop(name, None)

    def names(self):
        with self._lock:
            return list(self._instruments)

    # -- exposition ---------------------------------------------------------------

    def render_prometheus(self):
        """The full registry as Prometheus text exposition (version 0.0.4)."""
        with self._lock:
            instruments = list(self._instruments.values())
        lines = []
        for instrument in instruments:
            if instrument.help:
                lines.append("# HELP %s %s" % (
                    instrument.name,
                    instrument.help.replace("\\", "\\\\").replace("\n", "\\n"),
                ))
            lines.append("# TYPE %s %s" % (instrument.name, instrument.kind))
            for series, labels, value in instrument.samples():
                lines.append("%s%s %s" % (
                    series, _render_labels(labels), _format_value(value)))
        return "\n".join(lines) + "\n"

    def snapshot(self):
        """Flat ``{series-with-labels: value}`` dict, for deltas in benches."""
        with self._lock:
            instruments = list(self._instruments.values())
        flat = {}
        for instrument in instruments:
            for series, labels, value in instrument.samples():
                flat["%s%s" % (series, _render_labels(labels))] = value
        return flat


class _NullInstrument(object):
    """Accepts every instrument method as a no-op (shared singleton)."""

    def inc(self, amount=1.0):
        pass

    def dec(self, amount=1.0):
        pass

    def set(self, value):
        pass

    def set_function(self, fn):
        pass

    def observe(self, value):
        pass

    def labels(self, **labels):
        return self

    def value(self, **labels):
        return 0.0

    def quantile(self, q):
        return 0.0

    def quantiles(self):
        return {}

    def to_dict(self):
        return {}

    count = 0
    sum = 0.0


_NULL = _NullInstrument()


class NullRegistry(object):
    """API-compatible no-op registry: the uninstrumented baseline."""

    default_buckets = None

    def counter(self, name, help_text=""):
        return _NULL

    def gauge(self, name, help_text=""):
        return _NULL

    def histogram(self, name, help_text="", buckets=None,
                  quantiles=DEFAULT_QUANTILES):
        return _NULL

    def gauge_callback(self, name, help_text, fn):
        return _NULL

    def counter_callback(self, name, help_text, fn):
        return _NULL

    def get(self, name):
        return None

    def unregister(self, name):
        pass

    def names(self):
        return []

    def render_prometheus(self):
        return ""

    def snapshot(self):
        return {}
