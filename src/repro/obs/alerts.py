"""Declarative alerting over the metrics time-series.

Rules are small expressions evaluated against a :class:`TimeSeriesStore`
after every sampler tick, with Prometheus-style ok → pending → firing
state machines.  The grammar is deliberately tiny — one aggregate, an
optional divisor, a comparison, an optional ``for`` duration::

    rule      := term [ "/" term ] op threshold [ "for" seconds ]
    term      := agg "(" series "[" window "]" ")"
    agg       := rate | delta | mean | latest | p50 | p90 | p95 | p99
    op        := ">" | ">=" | "<" | "<="

Examples (the defaults shipped by :func:`default_rules`)::

    rate(repro_queries_failed_total[60]) > 0.5 for 10
    p99(repro_scheduler_exec_seconds[60]) > 1.0 for 10
    rate(repro_cache_hits_total[120]) / rate(repro_cache_probes_total[120]) < 0.1 for 30

``for 0`` (or omitting ``for``) fires on the first breaching evaluation;
otherwise the rule sits *pending* until the condition has held
continuously for the duration.  The quantile aggregates expect a
histogram base name and use the store's bucket-delta interpolation.
A rule whose series has no data yet evaluates to "no data" and resets
toward ok rather than firing — monitoring a cold service must not page.
"""

import re
import threading
import time
from collections import deque

# States, in escalation order.
OK = "ok"
PENDING = "pending"
FIRING = "firing"

_TERM = r"(?P<{p}agg>[a-z0-9]+)\(\s*(?P<{p}series>[A-Za-z0-9_:]+)\s*\[\s*(?P<{p}window>\d+(?:\.\d+)?)\s*\]\s*\)"
_RULE_RE = re.compile(
    r"^\s*" + _TERM.format(p="") +
    r"(?:\s*/\s*" + _TERM.format(p="div_") + r")?" +
    r"\s*(?P<op>>=|<=|>|<)\s*(?P<threshold>-?\d+(?:\.\d+)?)" +
    r"(?:\s+for\s+(?P<for>\d+(?:\.\d+)?))?\s*$"
)

_QUANTILE_AGGS = {"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99}
_PLAIN_AGGS = ("rate", "delta", "mean", "latest")

_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


class RuleSyntaxError(ValueError):
    """The rule expression does not match the grammar."""


def _evaluate_term(store, agg, series, window, now=None):
    if agg in _QUANTILE_AGGS:
        return store.quantile(series, _QUANTILE_AGGS[agg], window, now=now)
    if agg == "rate":
        return store.rate(series, window, now=now)
    if agg == "delta":
        return store.delta(series, window, now=now)
    if agg == "mean":
        return store.mean(series, window, now=now)
    if agg == "latest":
        return store.latest(series)
    raise RuleSyntaxError("unknown aggregate %r" % agg)


class AlertRule(object):
    """One parsed rule plus its ok → pending → firing state machine."""

    def __init__(self, name, expr, severity="warning", description=""):
        match = _RULE_RE.match(expr)
        if match is None:
            raise RuleSyntaxError("cannot parse rule %r" % expr)
        groups = match.groupdict()
        for key in ("agg", "div_agg"):
            agg = groups[key]
            if agg is not None and agg not in _QUANTILE_AGGS and agg not in _PLAIN_AGGS:
                raise RuleSyntaxError("unknown aggregate %r in %r" % (agg, expr))
        self.name = name
        self.expr = expr
        self.severity = severity
        self.description = description
        self.agg = groups["agg"]
        self.series = groups["series"]
        self.window = float(groups["window"])
        self.div_agg = groups["div_agg"]
        self.div_series = groups["div_series"]
        self.div_window = float(groups["div_window"]) if groups["div_window"] else None
        self.op = groups["op"]
        self.threshold = float(groups["threshold"])
        self.for_seconds = float(groups["for"]) if groups["for"] else 0.0
        # State machine.
        self.state = OK
        self.value = None
        self.pending_since = None  # monotonic
        self.fired_at = None  # epoch, display only
        self.transitions = 0

    def evaluate(self, store, now=None):
        """One evaluation tick; returns the (possibly new) state."""
        value = _evaluate_term(store, self.agg, self.series, self.window, now=now)
        if value is not None and self.div_series is not None:
            divisor = _evaluate_term(
                store, self.div_agg, self.div_series, self.div_window, now=now)
            if divisor is None or divisor == 0:
                value = None
            else:
                value = value / divisor
        self.value = value
        breached = value is not None and _OPS[self.op](value, self.threshold)
        mono = time.monotonic() if now is None else now
        if not breached:
            # No data counts as recovery: a cold series must not page.
            self.pending_since = None
            if self.state != OK:
                self.state = OK
                self.transitions += 1
            return self.state
        if self.pending_since is None:
            self.pending_since = mono
        held = mono - self.pending_since
        if held >= self.for_seconds:
            if self.state != FIRING:
                self.state = FIRING
                self.fired_at = time.time()
                self.transitions += 1
        elif self.state != FIRING:
            if self.state != PENDING:
                self.state = PENDING
                self.transitions += 1
        return self.state

    def to_dict(self):
        return {
            "name": self.name,
            "expr": self.expr,
            "severity": self.severity,
            "description": self.description,
            "state": self.state,
            "value": None if self.value is None else round(self.value, 6),
            "threshold": self.threshold,
            "for_seconds": self.for_seconds,
            "fired_at": self.fired_at,
            "transitions": self.transitions,
        }


class AlertManager(object):
    """Evaluates a rule set on every sampler tick; keeps a notification log."""

    MAX_NOTIFICATIONS = 256

    def __init__(self, store, rules=None):
        self.store = store
        self._rules = []
        self._lock = threading.Lock()
        self.evaluations = 0
        self.notifications = deque(maxlen=self.MAX_NOTIFICATIONS)
        for rule in (rules if rules is not None else ()):
            self.add_rule(rule)

    def add_rule(self, rule):
        if not isinstance(rule, AlertRule):
            rule = AlertRule(**rule)
        with self._lock:
            self._rules.append(rule)
        return rule

    @property
    def rules(self):
        with self._lock:
            return list(self._rules)

    def evaluate(self, store=None, now=None):
        """Evaluate every rule once; log state transitions. Returns states."""
        store = store if store is not None else self.store
        states = {}
        with self._lock:
            rules = list(self._rules)
            self.evaluations += 1
        for rule in rules:
            before = rule.state
            after = rule.evaluate(store, now=now)
            states[rule.name] = after
            if after != before:
                with self._lock:
                    self.notifications.append({
                        "epoch": time.time(),
                        "rule": rule.name,
                        "severity": rule.severity,
                        "from_state": before,
                        "to_state": after,
                        "value": None if rule.value is None else round(rule.value, 6),
                        "expr": rule.expr,
                    })
                # Correlated event-log line for the same transition (the
                # import is deferred: events imports nothing from obs, but
                # keeping alerts importable standalone is cheap insurance).
                from repro.obs import events

                events.emit(
                    "alert", rule=rule.name, severity=rule.severity,
                    from_state=before, to_state=after,
                    value=(None if rule.value is None
                           else round(rule.value, 6)))
        return states

    def firing(self):
        return [rule for rule in self.rules if rule.state == FIRING]

    def health(self):
        """Aggregate health verdict: ok | degraded (anything pending/firing)."""
        rules = self.rules
        firing = [rule.name for rule in rules if rule.state == FIRING]
        pending = [rule.name for rule in rules if rule.state == PENDING]
        return {
            "status": "degraded" if firing else "ok",
            "firing": firing,
            "pending": pending,
            "rules": len(rules),
            "evaluations": self.evaluations,
        }

    def to_dict(self):
        with self._lock:
            notifications = list(self.notifications)
        payload = self.health()
        payload["alerts"] = [rule.to_dict() for rule in self.rules]
        payload["notifications"] = notifications
        return payload


def default_rules():
    """The rule set `repro serve` installs when monitoring is enabled."""
    return [
        AlertRule(
            "HighErrorRate",
            "rate(repro_queries_failed_total[60]) > 0.5 for 10",
            severity="critical",
            description="More than 0.5 failed queries/s over the last minute.",
        ),
        AlertRule(
            "AdmissionRejections",
            "rate(repro_scheduler_admission_rejections_total[60]) > 1 for 10",
            severity="warning",
            description="Scheduler is rejecting more than 1 job/s at admission.",
        ),
        AlertRule(
            "CacheHitRateLow",
            "rate(repro_cache_hits_total[120]) / rate(repro_cache_probes_total[120]) < 0.1 for 30",
            severity="info",
            description="Result-cache hit rate dropped below 10% over 2 minutes.",
        ),
        AlertRule(
            "HighQueryLatency",
            "p99(repro_scheduler_exec_seconds[60]) > 1.0 for 10",
            severity="critical",
            description="p99 query execution latency exceeded 1s over the last minute.",
        ),
        AlertRule(
            "PlanRegression",
            "delta(repro_plan_regressions_total[300]) > 0",
            severity="warning",
            description="The Query Store issued a new plan-regression "
                        "verdict in the last 5 minutes.",
        ),
        # Only the cluster coordinator exports this gauge; on single-process
        # servers the series has no data, which counts as ok (see module doc).
        AlertRule(
            "ShardDown",
            "latest(repro_cluster_shards_down[60]) > 0",
            severity="critical",
            description="One or more cluster worker shards are dead or unresponsive.",
        ),
    ]
