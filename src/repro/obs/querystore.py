"""A SQL-Server-Query-Store-style per-fingerprint runtime history.

Jain et al. ("Database-Agnostic Workload Management") argue that the
normalized-SQL *fingerprint* is the right unit for tracking a workload
over time; SQL Server's Query Store is the production embodiment: for
every query fingerprint, keep runtime statistics *per plan*, so that when
the optimizer switches plans the old plan's baseline is still there to
compare against.  This module is that layer for the repro runtime:

- a **query fingerprint** is a short hash of the normalized SQL text (the
  same normalization the result cache keys on, so whitespace/case variants
  unify);
- a **plan fingerprint** is a short hash of the physical plan's *shape* —
  operator names, table bindings and tree structure, deliberately
  excluding cardinality estimates so that stats drift alone does not read
  as a plan change;
- per (query, plan): executions, errors, cache hits, rows, total/mean
  latency and a streaming p95 (the P² estimator — O(1) state, so the
  store can sit on the job-completion path);
- **plan-change events** whenever a query starts executing under a new
  plan after an established baseline, and a **regression verdict** when
  the new plan is measurably slower than that baseline.

The store is bounded (LRU over query fingerprints) and serializable:
:meth:`QueryStore.dump_state` / :meth:`QueryStore.restore_state` ride in
``repro.storage`` snapshot checkpoints, so runtime baselines survive a
restart — exactly what makes regression detection useful across deploys.
"""

import hashlib
import threading
import time
from collections import OrderedDict, deque

from repro.obs.metrics import P2Quantile


def normalize_sql(sql):
    """The result cache's canonical rendering (lazy import: the runtime
    package imports this module, so a top-level import would cycle)."""
    from repro.runtime.cache import normalize_sql as _normalize

    return _normalize(sql)


#: Executions a plan needs before it counts as an established baseline
#: (or before a newer plan can be judged against one).
DEFAULT_MIN_EXECUTIONS = 5

#: A newer plan is a regression when its mean latency exceeds the
#: baseline plan's mean by this factor (and both are established).
DEFAULT_REGRESSION_FACTOR = 1.5


def query_fingerprint(sql, normalized=None):
    """Short stable hash of the normalized SQL text."""
    text = normalized if normalized is not None else normalize_sql(sql)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def plan_fingerprint(root):
    """Short stable hash of a physical plan's shape.

    Pre-order walk over children *and* subplans, folding in the operator's
    physical/logical names and its table binding.  Estimates and costs are
    excluded on purpose: the fingerprint should change when the *plan*
    changes (scan -> seek, nested loops -> hash join, join order), not
    when statistics drift under the same shape.
    """
    if root is None:
        return None
    tokens = []

    def visit(operator, depth):
        tokens.append("%d:%s:%s:%s" % (
            depth, operator.physical_name, operator.logical,
            operator.properties.get("Table", ""),
        ))
        for subplan in operator.subplans:
            tokens.append("%d:(" % depth)
            visit(subplan, depth + 1)
            tokens.append("%d:)" % depth)
        for child in operator.children:
            visit(child, depth + 1)

    visit(root, 0)
    return hashlib.sha256("|".join(tokens).encode("utf-8")).hexdigest()[:12]


class PlanStats(object):
    """Interval runtime statistics for one (query, plan) pair.

    Cache hits are counted but their (near-zero) latency never enters the
    latency aggregates — a warm cache would otherwise make every plan look
    instant and mask real regressions.
    """

    __slots__ = ("plan", "executions", "errors", "cache_hits", "rows_total",
                 "total_seconds", "min_seconds", "max_seconds", "_p95",
                 "first_seen", "last_seen")

    def __init__(self, plan):
        self.plan = plan
        self.executions = 0
        self.errors = 0
        self.cache_hits = 0
        self.rows_total = 0
        self.total_seconds = 0.0
        self.min_seconds = None
        self.max_seconds = 0.0
        self._p95 = P2Quantile(0.95)
        self.first_seen = None
        self.last_seen = None

    def observe(self, seconds, rows, error, cache_hit, epoch):
        if self.first_seen is None:
            self.first_seen = epoch
        self.last_seen = epoch
        if error:
            self.errors += 1
            return
        if cache_hit:
            self.cache_hits += 1
            return
        self.executions += 1
        self.rows_total += rows
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)
        self.min_seconds = (seconds if self.min_seconds is None
                            else min(self.min_seconds, seconds))
        self._p95.observe(seconds)

    @property
    def mean_seconds(self):
        return self.total_seconds / self.executions if self.executions else 0.0

    @property
    def p95_seconds(self):
        return self._p95.value()

    def to_dict(self):
        return {
            "plan": self.plan,
            "executions": self.executions,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "rows_total": self.rows_total,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.mean_seconds, 6),
            "p95_seconds": round(self.p95_seconds, 6),
            "min_seconds": (round(self.min_seconds, 6)
                            if self.min_seconds is not None else None),
            "max_seconds": round(self.max_seconds, 6),
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
        }

    def dump_state(self):
        state = self.to_dict()
        # The rounded presentation fields above are fine to persist, but
        # the estimator needs its exact marker state to keep converging.
        state["p95_state"] = self._p95.to_state()
        return state

    @classmethod
    def restore_state(cls, state):
        stats = cls(state["plan"])
        stats.executions = state["executions"]
        stats.errors = state["errors"]
        stats.cache_hits = state["cache_hits"]
        stats.rows_total = state["rows_total"]
        stats.total_seconds = state["total_seconds"]
        stats.min_seconds = state["min_seconds"]
        stats.max_seconds = state["max_seconds"]
        stats.first_seen = state["first_seen"]
        stats.last_seen = state["last_seen"]
        stats._p95 = P2Quantile.from_state(state["p95_state"])
        return stats


class QueryStoreEntry(object):
    """Everything the store knows about one query fingerprint."""

    __slots__ = ("fingerprint", "sql", "plans", "plan_changes",
                 "current_plan", "first_seen", "last_seen")

    #: Plan-change events retained per entry.
    MAX_CHANGES = 16

    def __init__(self, fingerprint, sql):
        self.fingerprint = fingerprint
        #: Normalized SQL (truncated for memory; the fingerprint is the key).
        self.sql = sql[:500]
        self.plans = OrderedDict()  # plan fingerprint -> PlanStats
        self.plan_changes = deque(maxlen=self.MAX_CHANGES)
        self.current_plan = None
        self.first_seen = None
        self.last_seen = None

    @property
    def executions(self):
        return sum(stats.executions for stats in self.plans.values())

    @property
    def errors(self):
        return sum(stats.errors for stats in self.plans.values())

    @property
    def cache_hits(self):
        return sum(stats.cache_hits for stats in self.plans.values())

    @property
    def total_seconds(self):
        return sum(stats.total_seconds for stats in self.plans.values())

    def regression(self, min_executions=DEFAULT_MIN_EXECUTIONS,
                   factor=DEFAULT_REGRESSION_FACTOR):
        """The regression verdict for this entry's *current* plan.

        A regression requires: the query changed plans at least once, both
        the current plan and the best established earlier plan have
        ``min_executions`` real executions, and the current plan's mean
        latency exceeds the earlier baseline's mean by ``factor``.
        Returns a verdict dict or None.
        """
        current = self.plans.get(self.current_plan)
        if current is None or current.executions < min_executions:
            return None
        baseline = None
        for plan_fp, stats in self.plans.items():
            if plan_fp == self.current_plan:
                continue
            if stats.executions < min_executions:
                continue
            if baseline is None or stats.mean_seconds < baseline.mean_seconds:
                baseline = stats
        if baseline is None:
            return None
        if current.mean_seconds <= factor * baseline.mean_seconds:
            return None
        return {
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "regressed_plan": current.plan,
            "baseline_plan": baseline.plan,
            "baseline_mean_seconds": round(baseline.mean_seconds, 6),
            "regressed_mean_seconds": round(current.mean_seconds, 6),
            "baseline_p95_seconds": round(baseline.p95_seconds, 6),
            "regressed_p95_seconds": round(current.p95_seconds, 6),
            "slowdown": round(
                current.mean_seconds / baseline.mean_seconds, 3)
            if baseline.mean_seconds else float("inf"),
            "baseline_executions": baseline.executions,
            "regressed_executions": current.executions,
        }

    def to_dict(self, min_executions=DEFAULT_MIN_EXECUTIONS,
                factor=DEFAULT_REGRESSION_FACTOR):
        verdict = self.regression(min_executions, factor)
        return {
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "executions": self.executions,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "total_seconds": round(self.total_seconds, 6),
            "current_plan": self.current_plan,
            "plans": [stats.to_dict() for stats in self.plans.values()],
            "plan_changes": list(self.plan_changes),
            "regression": verdict,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
        }


class QueryStore(object):
    """Bounded, thread-safe store of per-fingerprint runtime history."""

    #: Plans retained per entry (oldest-seen dropped beyond this).
    MAX_PLANS_PER_ENTRY = 8

    def __init__(self, capacity=512, min_executions=DEFAULT_MIN_EXECUTIONS,
                 regression_factor=DEFAULT_REGRESSION_FACTOR):
        self.capacity = capacity
        self.min_executions = min_executions
        self.regression_factor = regression_factor
        self._entries = OrderedDict()  # query fingerprint -> entry (LRU)
        self._lock = threading.Lock()
        self.recorded = 0
        self.evictions = 0
        self.plan_changes = 0

    # -- recording ------------------------------------------------------------

    def record(self, sql, plan=None, plan_fp=None, seconds=0.0, rows=0,
               error=False, cache_hit=False, normalized=None, epoch=None):
        """Fold one completion in; returns the entry's fingerprint.

        ``plan`` is the physical plan root (fingerprinted here) or pass a
        precomputed ``plan_fp``.  Failed completions carry no plan and are
        accumulated under the entry's current plan (or a ``"-"`` bucket
        before any plan is known).
        """
        if epoch is None:
            epoch = time.time()
        normalized = normalized if normalized is not None else normalize_sql(sql)
        fingerprint = query_fingerprint(sql, normalized=normalized)
        if plan_fp is None:
            plan_fp = plan_fingerprint(plan)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = QueryStoreEntry(fingerprint, normalized)
                entry.first_seen = epoch
                self._entries[fingerprint] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            else:
                self._entries.move_to_end(fingerprint)
            entry.last_seen = epoch
            if plan_fp is None:
                plan_fp = entry.current_plan or "-"
            stats = entry.plans.get(plan_fp)
            if stats is None:
                stats = entry.plans[plan_fp] = PlanStats(plan_fp)
                while len(entry.plans) > self.MAX_PLANS_PER_ENTRY:
                    entry.plans.popitem(last=False)
            if (plan_fp != "-" and entry.current_plan is not None
                    and plan_fp != entry.current_plan):
                previous = entry.plans.get(entry.current_plan)
                if previous is not None and previous.executions >= self.min_executions:
                    entry.plan_changes.append({
                        "epoch": epoch,
                        "from_plan": entry.current_plan,
                        "to_plan": plan_fp,
                        "from_executions": previous.executions,
                        "from_mean_seconds": round(previous.mean_seconds, 6),
                    })
                    self.plan_changes += 1
            if plan_fp != "-":
                entry.current_plan = plan_fp
            stats.observe(seconds, rows, error, cache_hit, epoch)
            self.recorded += 1
        return fingerprint

    # -- lookup ---------------------------------------------------------------

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint):
        with self._lock:
            return self._entries.get(fingerprint)

    def entries(self):
        with self._lock:
            return list(self._entries.values())

    def regressions(self):
        """Every entry whose current plan regressed, worst slowdown first."""
        verdicts = []
        for entry in self.entries():
            with self._lock:
                verdict = entry.regression(self.min_executions,
                                           self.regression_factor)
            if verdict is not None:
                verdicts.append(verdict)
        verdicts.sort(key=lambda v: -v["slowdown"])
        return verdicts

    def summary(self):
        with self._lock:
            entries = list(self._entries.values())
            payload = {
                "entries": len(entries),
                "capacity": self.capacity,
                "recorded": self.recorded,
                "evictions": self.evictions,
                "plan_changes": self.plan_changes,
            }
        payload["regressions"] = sum(
            1 for entry in entries
            if entry.regression(self.min_executions, self.regression_factor)
        )
        return payload

    def to_dict(self, limit=50, regressions_only=False, order_by="total_seconds"):
        entries = self.entries()
        entries.sort(key=lambda e: -getattr(e, order_by, 0.0))
        rows = []
        for entry in entries:
            if limit is not None and len(rows) >= limit:
                break
            with self._lock:
                payload = entry.to_dict(self.min_executions,
                                        self.regression_factor)
            if regressions_only and payload["regression"] is None:
                continue
            rows.append(payload)
        result = self.summary()
        result["queries"] = rows
        return result

    # -- persistence (rides in repro.storage snapshots) -------------------------

    def dump_state(self):
        with self._lock:
            return {
                "capacity": self.capacity,
                "min_executions": self.min_executions,
                "regression_factor": self.regression_factor,
                "recorded": self.recorded,
                "evictions": self.evictions,
                "plan_changes": self.plan_changes,
                "entries": [
                    {
                        "fingerprint": entry.fingerprint,
                        "sql": entry.sql,
                        "current_plan": entry.current_plan,
                        "first_seen": entry.first_seen,
                        "last_seen": entry.last_seen,
                        "plan_changes": list(entry.plan_changes),
                        "plans": [stats.dump_state()
                                  for stats in entry.plans.values()],
                    }
                    for entry in self._entries.values()
                ],
            }

    def restore_state(self, state):
        with self._lock:
            self.capacity = state["capacity"]
            self.min_executions = state["min_executions"]
            self.regression_factor = state["regression_factor"]
            self.recorded = state["recorded"]
            self.evictions = state["evictions"]
            self.plan_changes = state["plan_changes"]
            self._entries.clear()
            for spec in state["entries"]:
                entry = QueryStoreEntry(spec["fingerprint"], spec["sql"])
                entry.current_plan = spec["current_plan"]
                entry.first_seen = spec["first_seen"]
                entry.last_seen = spec["last_seen"]
                entry.plan_changes.extend(spec["plan_changes"])
                for plan_state in spec["plans"]:
                    entry.plans[plan_state["plan"]] = (
                        PlanStats.restore_state(plan_state))
                self._entries[entry.fingerprint] = entry
        return self
