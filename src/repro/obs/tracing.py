"""Query-lifecycle tracing: timed spans from submit to fetch.

Every :class:`~repro.runtime.job.QueryJob` carries a :class:`Trace`; the
scheduler and the engine append :class:`Span` records as the query moves
through submit → admit → parse → analyze → plan → execute → fetch (plus
cache probe spans).  Span timestamps are offsets from the trace's origin,
measured with ``time.monotonic()`` so durations survive wall-clock
adjustment; the origin also remembers an epoch timestamp — display for a
single process, and the *alignment point* when fragments recorded by
different processes are stitched into one cluster-wide trace.

Distributed traces: a :class:`TraceContext` (trace id, parent span id,
sampling flag) rides inside cluster protocol frames and submit bodies.
The receiving process records its spans into its own local trace and
ships them back as a *fragment* (``Trace.to_dict``); the coordinator
folds fragments in with :meth:`Trace.add_remote`, which aligns the remote
offsets via the epoch origins, tags every span with the source process
lane, and namespaces the remote span ids so they stay unique after the
merge.

Two export formats:

- :meth:`Trace.to_dict` — structured JSON for ``GET /api/v1/query/<id>/trace``
  (also the wire format for fragments);
- :meth:`Trace.to_chrome` — Chrome ``trace_event`` "X" (complete) events,
  loadable in ``chrome://tracing`` / Perfetto.  Lanes are deterministic:
  ``pid 0`` is the coordinator (or the only process of a single-node
  trace), shard ``k`` is ``pid k+1``, and tids are assigned by sorted
  thread name — repeated exports of the same workload diff cleanly.
"""

import re
import threading
import time
import uuid
from contextlib import contextmanager

_SHARD_LABEL = re.compile(r"^shard[-_]?(\d+)$")


def new_trace_id():
    """A fresh cluster-unique trace id (coordinator-minted per submit)."""
    return uuid.uuid4().hex[:16]


class TraceContext(object):
    """The propagated part of a trace: what crosses process boundaries."""

    __slots__ = ("trace_id", "parent", "sampled")

    def __init__(self, trace_id, parent=None, sampled=True):
        self.trace_id = trace_id
        #: Span id (in the originating process's trace) this hop is a
        #: child of; None for a root context.
        self.parent = parent
        self.sampled = bool(sampled)

    def to_wire(self):
        payload = {"id": self.trace_id, "sampled": self.sampled}
        if self.parent is not None:
            payload["parent"] = self.parent
        return payload

    @classmethod
    def from_wire(cls, payload):
        """Parse a wire dict; returns None for absent/malformed context
        (an untraced frame must never fail on account of tracing)."""
        if not isinstance(payload, dict) or not payload.get("id"):
            return None
        return cls(str(payload["id"]), parent=payload.get("parent"),
                   sampled=payload.get("sampled", True))

    def __repr__(self):
        return "TraceContext(%s, parent=%r, sampled=%r)" % (
            self.trace_id, self.parent, self.sampled)


class Span(object):
    """One timed phase of a query's life.

    ``start``/``end`` are seconds since the owning trace's origin.
    ``attrs`` carries small structured annotations (cache hit flags, row
    counts, outcome states).  ``process`` is None for spans recorded in
    this process and a lane label (``"shard1"``) for stitched remote
    spans; ``span_id``/``parent_id`` give exported traces a tree shape.
    """

    __slots__ = ("name", "start", "end", "thread_id", "thread_name",
                 "attrs", "process", "span_id", "parent_id")

    def __init__(self, name, start, end, thread_id=0, thread_name=None,
                 attrs=None, process=None, span_id=None, parent_id=None):
        self.name = name
        self.start = start
        self.end = end
        self.thread_id = thread_id
        #: The recording thread's name ("query-runtime-0", "MainThread"),
        #: carried so the Chrome export can label lanes.
        self.thread_name = thread_name
        self.attrs = attrs or {}
        self.process = process
        self.span_id = span_id
        self.parent_id = parent_id

    @property
    def duration(self):
        return self.end - self.start

    def to_dict(self):
        payload = {
            "name": self.name,
            "start_ms": round(self.start * 1000.0, 3),
            "duration_ms": round(self.duration * 1000.0, 3),
        }
        if self.span_id is not None:
            payload["id"] = self.span_id
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
        if self.process is not None:
            payload["process"] = self.process
        if self.thread_name is not None:
            payload["thread"] = self.thread_name
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload

    def __repr__(self):
        return "Span(%s, %.3fms)" % (self.name, self.duration * 1000.0)


class Trace(object):
    """An append-only list of spans for one query (thread-safe).

    Spans may be recorded from the submitting thread, the worker thread and
    the fetching thread; the lock only guards the append, so tracing costs
    one monotonic read per edge plus one small object per span.
    """

    __slots__ = ("trace_id", "parent", "origin", "origin_epoch", "_spans",
                 "_seq", "_lock")

    def __init__(self, trace_id, parent=None):
        self.trace_id = trace_id
        #: Remote parent span id when this trace is one process's fragment
        #: of a distributed trace (set from the propagated TraceContext).
        self.parent = parent
        #: Monotonic zero point every span offset is relative to.
        self.origin = time.monotonic()
        #: Epoch timestamp of the origin: display for one process, the
        #: alignment point when stitching fragments across processes.
        self.origin_epoch = time.time()
        self._spans = []
        self._seq = 0
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------------

    def new_span_id(self):
        """Reserve a span id before the span closes — the propagation case:
        the id must ride in the frame while the call span is still open."""
        with self._lock:
            span_id = "sp%d" % self._seq
            self._seq += 1
        return span_id

    def add_span(self, name, start, end, span_id=None, parent=None, **attrs):
        """Record a finished span from absolute monotonic timestamps."""
        span = Span(
            name,
            start - self.origin,
            end - self.origin,
            thread_id=threading.get_ident(),
            thread_name=threading.current_thread().name,
            attrs=attrs or None,
            span_id=span_id,
            parent_id=parent,
        )
        with self._lock:
            if span.span_id is None:
                span.span_id = "sp%d" % self._seq
                self._seq += 1
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name, span_id=None, parent=None, **attrs):
        """Context manager timing one phase; attrs may be added via the
        yielded dict (e.g. ``payload["hit"] = True``)."""
        start = time.monotonic()
        payload = dict(attrs)
        try:
            yield payload
        finally:
            span = Span(
                name,
                start - self.origin,
                time.monotonic() - self.origin,
                thread_id=threading.get_ident(),
                thread_name=threading.current_thread().name,
                attrs=payload or None,
                span_id=span_id,
                parent_id=parent,
            )
            with self._lock:
                if span.span_id is None:
                    span.span_id = "sp%d" % self._seq
                    self._seq += 1
                self._spans.append(span)

    def add_remote(self, fragment, process, parent=None, truncated=False,
                   prefix=None):
        """Stitch one remote fragment (a ``Trace.to_dict`` payload) in.

        Remote offsets are re-based through the two epoch origins, every
        span is tagged with the ``process`` lane label, and remote span
        ids (and intra-fragment parent references) are namespaced as
        ``<prefix>:<id>`` (default prefix: the process label) so they
        cannot collide with local ids or with another shard's.  Fragment
        spans without an explicit parent become children of ``parent``
        (or of the fragment's propagated parent), which stays
        *un*-namespaced — it names a span of *this* trace.  Returns the
        number of spans added.
        """
        if not isinstance(fragment, dict):
            return 0
        if prefix is None:
            prefix = process
        try:
            offset = float(fragment.get("origin_epoch",
                                        self.origin_epoch)) - self.origin_epoch
        except (TypeError, ValueError):
            offset = 0.0
        default_parent = parent or fragment.get("parent")
        added = []
        for payload in fragment.get("spans", []):
            try:
                start = offset + float(payload.get("start_ms", 0.0)) / 1000.0
                duration = float(payload.get("duration_ms", 0.0)) / 1000.0
            except (TypeError, ValueError):
                continue
            attrs = dict(payload.get("attrs") or {})
            if truncated:
                attrs["truncated"] = True
            span_id = payload.get("id")
            parent_id = payload.get("parent")
            added.append(Span(
                payload.get("name", "?"),
                start,
                start + duration,
                thread_id=0,
                thread_name=payload.get("thread") or process,
                attrs=attrs or None,
                process=payload.get("process") or process,
                span_id=("%s:%s" % (prefix, span_id)
                         if span_id is not None and prefix else span_id),
                parent_id=("%s:%s" % (prefix, parent_id)
                           if parent_id is not None and prefix
                           else (parent_id or default_parent)),
            ))
        with self._lock:
            self._spans.extend(added)
        return len(added)

    def adopt(self, other, parent=None, prefix=None):
        """Fold another *local* Trace's spans in without the dict
        round-trip — the hot in-process fold on the worker run path,
        where serializing the job trace only to re-parse it costs more
        than the query.  Semantics match :meth:`add_remote`: offsets
        re-based through the epoch origins, ids (and intra-trace parent
        references) namespaced as ``<prefix>:<id>``, orphan spans
        parented under ``parent`` (un-namespaced).  Returns the number
        of spans added."""
        offset = other.origin_epoch - self.origin_epoch
        default_parent = parent or other.parent
        with other._lock:
            source = list(other._spans)
        added = []
        for span in source:
            span_id, parent_id = span.span_id, span.parent_id
            added.append(Span(
                span.name,
                span.start + offset,
                span.end + offset,
                thread_id=span.thread_id,
                thread_name=span.thread_name,
                attrs=dict(span.attrs) if span.attrs else None,
                process=span.process,
                span_id=("%s:%s" % (prefix, span_id)
                         if span_id is not None and prefix else span_id),
                parent_id=("%s:%s" % (prefix, parent_id)
                           if parent_id is not None and prefix
                           else (parent_id or default_parent)),
            ))
        with self._lock:
            self._spans.extend(added)
        return len(added)

    def snapshot(self):
        """A point-in-time copy sharing this trace's origin and span
        objects — the stitching endpoint folds remote fragments into the
        copy, so repeated stitches never duplicate spans in the stored
        trace."""
        clone = Trace(self.trace_id, parent=self.parent)
        clone.origin = self.origin
        clone.origin_epoch = self.origin_epoch
        with self._lock:
            clone._spans = list(self._spans)
            clone._seq = self._seq
        return clone

    def mark_process_truncated(self, process):
        """Flag every stitched span from ``process`` as truncated (the
        shard died before the full trace could be collected); the spans
        stay in the trace.  Returns the number flagged."""
        count = 0
        for span in self.spans():
            if span.process == process:
                span.attrs["truncated"] = True
                count += 1
        return count

    # -- reading ---------------------------------------------------------------

    def spans(self):
        with self._lock:
            return list(self._spans)

    def find(self, name):
        """All spans with the given name, in recording order."""
        return [span for span in self.spans() if span.name == name]

    def processes(self):
        """Sorted remote lane labels stitched into this trace."""
        return sorted({span.process for span in self.spans()
                       if span.process is not None})

    @property
    def duration(self):
        spans = self.spans()
        if not spans:
            return 0.0
        return max(span.end for span in spans) - min(span.start for span in spans)

    # -- export ----------------------------------------------------------------

    def to_dict(self):
        spans = sorted(self.spans(), key=lambda span: (span.start, span.end))
        payload = {
            "trace_id": self.trace_id,
            "origin_epoch": round(self.origin_epoch, 6),
            "duration_ms": round(self.duration * 1000.0, 3),
            "spans": [span.to_dict() for span in spans],
        }
        if self.parent is not None:
            payload["parent"] = self.parent
        return payload

    def _lanes(self, spans):
        """Deterministic process-lane assignment: local spans (coordinator
        or the single node) are pid 0, ``shard<k>`` is pid ``k+1``, and
        any other label gets the next free pid in sorted-label order."""
        lanes = {None: 0}
        others = []
        for label in sorted({span.process for span in spans
                             if span.process is not None}):
            match = _SHARD_LABEL.match(label)
            if match is not None:
                lanes[label] = int(match.group(1)) + 1
            else:
                others.append(label)
        next_pid = max(lanes.values()) + 1
        for label in others:
            lanes[label] = next_pid
            next_pid += 1
        return lanes

    def to_chrome(self):
        """Chrome ``trace_event`` complete events (microsecond units).

        One process lane per shard: pid 0 is the coordinator (or the only
        process of a single-node trace) and shard ``k`` renders as pid
        ``k+1``.  Raw ``threading.get_ident()`` values are huge and vary
        run to run; within each lane threads are remapped to small tids
        in sorted thread-name order, and ``process_name``/``thread_name``
        metadata events label every lane — two exports of the same
        workload produce identical lane numbering and diff cleanly.
        """
        spans = sorted(self.spans(), key=lambda span: (span.start, span.end))
        lanes = self._lanes(spans)
        distributed = len(lanes) > 1
        # tids: per lane, sorted by thread name (deterministic run to run).
        threads = {}
        for span in spans:
            pid = lanes[span.process]
            name = span.thread_name or "thread"
            threads.setdefault(pid, set()).add(name)
        tids = {
            pid: {name: index for index, name in enumerate(sorted(names))}
            for pid, names in threads.items()
        }
        events = []
        for label, pid in sorted(lanes.items(), key=lambda item: item[1]):
            if pid not in threads:
                continue  # a lane with no spans (local-only trace labels)
            if label is None:
                process_name = ("coordinator" if distributed
                                else "repro query %s" % self.trace_id)
            else:
                process_name = label
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            })
            for name, tid in sorted(tids[pid].items(), key=lambda item: item[1]):
                events.append({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                })
        for span in spans:
            pid = lanes[span.process]
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 1),
                "dur": round(span.duration * 1e6, 1),
                "pid": pid,
                "tid": tids[pid][span.thread_name or "thread"],
                "cat": "query",
                "args": dict(span.attrs),
            })
        return events

    def __repr__(self):
        return "Trace(%s, %d spans)" % (self.trace_id, len(self.spans()))


def maybe_span(trace, name, **attrs):
    """``trace.span(...)`` when tracing is on, else a no-op context.

    Lets hot paths write ``with maybe_span(trace, "parse"):`` without
    branching on whether the caller attached a trace.
    """
    if trace is not None:
        return trace.span(name, **attrs)
    return _NULL_CONTEXT


class _NullContext(object):
    _payload = {}

    def __enter__(self):
        # A fresh dict per entry is avoided on purpose: callers only write
        # keys when a trace is attached (the yielded dict is discarded).
        return {}

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()
