"""Query-lifecycle tracing: timed spans from submit to fetch.

Every :class:`~repro.runtime.job.QueryJob` carries a :class:`Trace`; the
scheduler and the engine append :class:`Span` records as the query moves
through submit → admit → parse → analyze → plan → execute → fetch (plus
cache probe spans).  Span timestamps are offsets from the trace's origin,
measured with ``time.monotonic()`` so durations survive wall-clock
adjustment; the origin also remembers an epoch timestamp purely for
display.

Two export formats:

- :meth:`Trace.to_dict` — structured JSON for ``GET /api/v1/query/<id>/trace``;
- :meth:`Trace.to_chrome` — Chrome ``trace_event`` "X" (complete) events,
  loadable in ``chrome://tracing`` / Perfetto for a flame view.
"""

import threading
import time
from contextlib import contextmanager


class Span(object):
    """One timed phase of a query's life.

    ``start``/``end`` are seconds since the owning trace's origin.
    ``attrs`` carries small structured annotations (cache hit flags, row
    counts, outcome states).
    """

    __slots__ = ("name", "start", "end", "thread_id", "thread_name", "attrs")

    def __init__(self, name, start, end, thread_id=0, thread_name=None,
                 attrs=None):
        self.name = name
        self.start = start
        self.end = end
        self.thread_id = thread_id
        #: The recording thread's name ("query-runtime-0", "MainThread"),
        #: carried so the Chrome export can label lanes.
        self.thread_name = thread_name
        self.attrs = attrs or {}

    @property
    def duration(self):
        return self.end - self.start

    def to_dict(self):
        payload = {
            "name": self.name,
            "start_ms": round(self.start * 1000.0, 3),
            "duration_ms": round(self.duration * 1000.0, 3),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload

    def __repr__(self):
        return "Span(%s, %.3fms)" % (self.name, self.duration * 1000.0)


class Trace(object):
    """An append-only list of spans for one query (thread-safe).

    Spans may be recorded from the submitting thread, the worker thread and
    the fetching thread; the lock only guards the append, so tracing costs
    one monotonic read per edge plus one small object per span.
    """

    __slots__ = ("trace_id", "origin", "origin_epoch", "_spans", "_lock")

    def __init__(self, trace_id):
        self.trace_id = trace_id
        #: Monotonic zero point every span offset is relative to.
        self.origin = time.monotonic()
        #: Epoch timestamp of the origin (display only, never arithmetic).
        self.origin_epoch = time.time()
        self._spans = []
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------------

    def add_span(self, name, start, end, **attrs):
        """Record a finished span from absolute monotonic timestamps."""
        span = Span(
            name,
            start - self.origin,
            end - self.origin,
            thread_id=threading.get_ident(),
            thread_name=threading.current_thread().name,
            attrs=attrs or None,
        )
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name, **attrs):
        """Context manager timing one phase; attrs may be added via the
        yielded dict (e.g. ``payload["hit"] = True``)."""
        start = time.monotonic()
        payload = dict(attrs)
        try:
            yield payload
        finally:
            span = Span(
                name,
                start - self.origin,
                time.monotonic() - self.origin,
                thread_id=threading.get_ident(),
                thread_name=threading.current_thread().name,
                attrs=payload or None,
            )
            with self._lock:
                self._spans.append(span)

    # -- reading ---------------------------------------------------------------

    def spans(self):
        with self._lock:
            return list(self._spans)

    def find(self, name):
        """All spans with the given name, in recording order."""
        return [span for span in self.spans() if span.name == name]

    @property
    def duration(self):
        spans = self.spans()
        if not spans:
            return 0.0
        return max(span.end for span in spans) - min(span.start for span in spans)

    # -- export ----------------------------------------------------------------

    def to_dict(self):
        spans = sorted(self.spans(), key=lambda span: (span.start, span.end))
        return {
            "trace_id": self.trace_id,
            "origin_epoch": round(self.origin_epoch, 6),
            "duration_ms": round(self.duration * 1000.0, 3),
            "spans": [span.to_dict() for span in spans],
        }

    def to_chrome(self):
        """Chrome ``trace_event`` complete events (microsecond units).

        Raw ``threading.get_ident()`` values are huge and vary run to run;
        they are remapped to small stable tids (0, 1, 2, ... in order of
        first span start), and ``process_name``/``thread_name`` metadata
        events are emitted so ``chrome://tracing``/Perfetto render labeled
        per-worker lanes instead of anonymous numbers.
        """
        spans = sorted(self.spans(), key=lambda span: (span.start, span.end))
        tids = {}
        names = {}
        for span in spans:
            if span.thread_id not in tids:
                tids[span.thread_id] = len(tids)
                names[tids[span.thread_id]] = (
                    span.thread_name or "thread-%d" % tids[span.thread_id])
        events = [{
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro query %s" % self.trace_id},
        }]
        for tid in sorted(names):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": names[tid]},
            })
        for span in spans:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 1),
                "dur": round(span.duration * 1e6, 1),
                "pid": 1,
                "tid": tids[span.thread_id],
                "cat": "query",
                "args": dict(span.attrs),
            })
        return events

    def __repr__(self):
        return "Trace(%s, %d spans)" % (self.trace_id, len(self.spans()))


def maybe_span(trace, name, **attrs):
    """``trace.span(...)`` when tracing is on, else a no-op context.

    Lets hot paths write ``with maybe_span(trace, "parse"):`` without
    branching on whether the caller attached a trace.
    """
    if trace is not None:
        return trace.span(name, **attrs)
    return _NULL_CONTEXT


class _NullContext(object):
    _payload = {}

    def __enter__(self):
        # A fresh dict per entry is avoided on purpose: callers only write
        # keys when a trace is attached (the yielded dict is discarded).
        return {}

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()
