"""Per-operator runtime profiling: EXPLAIN ANALYZE for the iterator engine.

The planner attaches *estimated* rows and costs to every physical operator
(:mod:`repro.engine.operators`); the paper's whole analysis pipeline runs
on those estimates.  This module records what actually happens: a
:class:`QueryProfiler` wraps each operator in a plan tree (children and
subquery plans included) so that executing the plan counts the rows each
operator actually produced and the wall time spent inside its iterator —
open (the ``execute()`` call itself, where materializing operators like
Sort do their work), per-``next()`` time, and the final exhausting call
(close).

Wrapping is strictly opt-in: an unprofiled execution touches none of this
code, which is how the overhead contract (bench_obs_overhead.py) holds.
Wrappers are installed as instance attributes and removed afterwards, so a
plan object survives profiling unchanged.

The resulting :class:`ExecutionProfile` renders an ``EXPLAIN ANALYZE``-style
side-by-side of estimated vs actual rows with per-operator **q-error**
(the standard cardinality-estimation metric: ``max(est/act, act/est)``
with a one-row floor), which :mod:`repro.analysis.estimation` aggregates
into a cost-model scorecard over whole workloads.
"""

import time


def q_error(estimated, actual):
    """Cardinality q-error: symmetric ratio with a one-row floor.

    1.0 is a perfect estimate; 10.0 means an order of magnitude off in
    either direction.  The floor keeps empty results from producing
    infinite errors (the convention in the cardinality-estimation
    literature).
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


class OperatorStats(object):
    """Actuals recorded for one physical operator instance."""

    __slots__ = (
        "node_id", "parent_id", "depth", "physical_name", "logical_name",
        "properties", "est_rows", "rows", "loops", "open_seconds",
        "next_seconds", "close_seconds", "completed", "is_subplan",
        "_children",
    )

    def __init__(self, node_id, parent_id, depth, operator, is_subplan=False):
        self.node_id = node_id
        self.parent_id = parent_id
        self.depth = depth
        self.physical_name = operator.physical_name
        self.logical_name = operator.logical
        self.properties = dict(operator.properties)
        self.est_rows = operator.est_rows
        #: Rows this operator actually yielded (cumulative over loops).
        self.rows = 0
        #: Times ``execute()`` was called (> 1 for re-executed subplans).
        self.loops = 0
        #: Seconds inside the ``execute()`` call itself.
        self.open_seconds = 0.0
        #: Seconds inside ``next()`` calls that produced a row (inclusive
        #: of children — the iterator pull model nests their work).
        self.next_seconds = 0.0
        #: Seconds inside the final, exhausting ``next()`` call.
        self.close_seconds = 0.0
        #: False when a consumer stopped early (e.g. under a Top).
        self.completed = False
        self.is_subplan = is_subplan
        self._children = []

    @property
    def inclusive_seconds(self):
        return self.open_seconds + self.next_seconds + self.close_seconds

    @property
    def self_seconds(self):
        """Inclusive time minus the children's inclusive time (clamped)."""
        nested = sum(child.inclusive_seconds for child in self._children)
        return max(0.0, self.inclusive_seconds - nested)

    @property
    def actual_rows_per_loop(self):
        if self.loops > 1:
            return self.rows / float(self.loops)
        return float(self.rows)

    @property
    def q_error(self):
        return q_error(self.est_rows, self.actual_rows_per_loop)

    def to_dict(self):
        return {
            "node_id": self.node_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "operator": self.physical_name,
            "logical": self.logical_name,
            "properties": self.properties,
            "estimated_rows": round(self.est_rows, 2),
            "actual_rows": self.rows,
            "loops": self.loops,
            "q_error": round(self.q_error, 3),
            "time_ms": round(self.inclusive_seconds * 1000.0, 3),
            "self_time_ms": round(self.self_seconds * 1000.0, 3),
            "open_ms": round(self.open_seconds * 1000.0, 3),
            "close_ms": round(self.close_seconds * 1000.0, 3),
            "completed": self.completed,
            "subplan": self.is_subplan,
        }


def _profiled_rows(iterator, stats):
    perf = time.perf_counter
    nxt = iter(iterator).__next__
    while True:
        started = perf()
        try:
            row = nxt()
        except StopIteration:
            stats.close_seconds += perf() - started
            stats.completed = True
            return
        stats.next_seconds += perf() - started
        stats.rows += 1
        yield row


def _make_wrapper(original, stats):
    perf = time.perf_counter

    def profiled_execute(ctx):
        stats.loops += 1
        started = perf()
        iterator = original(ctx)
        stats.open_seconds += perf() - started
        return _profiled_rows(iterator, stats)

    return profiled_execute


class QueryProfiler(object):
    """Wraps every operator in a plan for one profiled execution.

    Use as a context manager around the execution::

        profiler = QueryProfiler(planned.root)
        with profiler:
            rows = execute_plan(planned.root)
        profile = profiler.finish()

    ``__exit__`` always restores the original ``execute`` methods, so the
    plan can be reused (or cached) unwrapped.
    """

    def __init__(self, root):
        self.root = root
        self.stats = []  # pre-order
        self._operators = []  # parallel to stats
        self._attached = False
        self._collect(root, parent=None, depth=0, is_subplan=False)
        # Wire the child links used for self-time attribution.
        by_id = {stats.node_id: stats for stats in self.stats}
        for stats in self.stats:
            if stats.parent_id is not None:
                by_id[stats.parent_id]._children.append(stats)

    def _collect(self, operator, parent, depth, is_subplan):
        stats = OperatorStats(
            len(self.stats),
            parent.node_id if parent is not None else None,
            depth, operator, is_subplan=is_subplan,
        )
        self.stats.append(stats)
        self._operators.append(operator)
        for subplan in operator.subplans:
            self._collect(subplan, stats, depth + 1, is_subplan=True)
        for child in operator.children:
            self._collect(child, stats, depth + 1, is_subplan=is_subplan)

    # -- attach / detach ---------------------------------------------------------

    def attach(self):
        if self._attached:
            return self
        for operator, stats in zip(self._operators, self.stats):
            operator.execute = _make_wrapper(operator.execute, stats)
        self._attached = True
        return self

    def detach(self):
        if not self._attached:
            return
        for operator in self._operators:
            operator.__dict__.pop("execute", None)
        self._attached = False

    def __enter__(self):
        return self.attach()

    def __exit__(self, exc_type, exc, tb):
        self.detach()
        return False

    def finish(self, elapsed=None, plan_check=None):
        self.detach()
        return ExecutionProfile(self.stats, elapsed=elapsed,
                                plan_check=plan_check)


class ExecutionProfile(object):
    """The result of one profiled execution: per-operator actuals."""

    def __init__(self, operator_stats, elapsed=None, plan_check=None):
        self.operators = list(operator_stats)
        #: End-to-end execution seconds (the engine's measurement), when known.
        self.elapsed = elapsed
        #: Static plan-verifier findings for the executed plan
        #: (:mod:`repro.check.plancheck`): [] = verified clean, None =
        #: verifier off.  Lets q-error reports distinguish "the estimate
        #: was wrong" from "the plan was already statically suspect".
        self.plan_check = plan_check

    def q_errors(self):
        """Per-operator q-errors, pre-order (executed operators only)."""
        return [stats.q_error for stats in self.operators if stats.loops]

    def summary(self):
        errors = sorted(self.q_errors())
        payload = {
            "operators": len(self.operators),
            "executed": sum(1 for stats in self.operators if stats.loops),
            "actual_rows_root": self.operators[0].rows if self.operators else 0,
        }
        if self.elapsed is not None:
            payload["elapsed_ms"] = round(self.elapsed * 1000.0, 3)
        if errors:
            payload["median_q_error"] = round(errors[len(errors) // 2], 3)
            payload["max_q_error"] = round(errors[-1], 3)
        if self.plan_check is not None:
            payload["plan_check"] = (
                "ok" if not self.plan_check
                else sorted(set(v.code for v in self.plan_check)))
        return payload

    def to_dict(self):
        payload = {
            "summary": self.summary(),
            "operators": [stats.to_dict() for stats in self.operators],
        }
        if self.plan_check is not None:
            payload["plan_check"] = [v.to_dict() for v in self.plan_check]
        return payload


def render_explain_analyze(profile):
    """Text table: one indented row per operator, estimates beside actuals.

    The layout mirrors EXPLAIN ANALYZE conventions: tree shape by
    indentation, then estimated rows, actual rows (per loop), loop count,
    q-error and inclusive/self wall time.
    """
    rows = []
    for stats in profile.operators:
        label = "  " * stats.depth + stats.physical_name
        parent = (
            profile.operators[stats.parent_id]
            if stats.parent_id is not None else None
        )
        if stats.is_subplan and (parent is None or not parent.is_subplan):
            label += " [subplan]"
        detail = stats.properties.get("Table") or stats.properties.get("Rows")
        if detail:
            label += " (%s)" % detail
        rows.append((label, stats))
    width = max(len(label) for label, _stats in rows) if rows else 8
    width = max(width, len("Operator"))
    lines = [
        "%-*s %12s %12s %6s %8s %10s %10s"
        % (width, "Operator", "Est. Rows", "Actual Rows", "Loops",
           "Q-Error", "Time(ms)", "Self(ms)"),
        "-" * (width + 64),
    ]
    for label, stats in rows:
        if stats.loops:
            lines.append(
                "%-*s %12.1f %12.1f %6d %8.2f %10.3f %10.3f"
                % (width, label, stats.est_rows, stats.actual_rows_per_loop,
                   stats.loops, stats.q_error,
                   stats.inclusive_seconds * 1000.0,
                   stats.self_seconds * 1000.0)
            )
        else:
            lines.append(
                "%-*s %12.1f %12s %6s %8s %10s %10s"
                % (width, label, stats.est_rows, "-", "-", "-", "-", "-")
            )
    summary = profile.summary()
    if "median_q_error" in summary:
        lines.append("")
        lines.append(
            "q-error: median %.2f, max %.2f over %d operators"
            % (summary["median_q_error"], summary["max_q_error"],
               summary["executed"])
        )
    if profile.elapsed is not None:
        lines.append("execution time: %.3f ms" % (profile.elapsed * 1000.0))
    if profile.plan_check:
        # Statically suspect plan: flag it so a bad q-error row is read in
        # context.  Clean plans add no footer (the common case stays quiet).
        lines.append("plan check: %d static violation(s): %s"
                     % (len(profile.plan_check),
                        ", ".join(sorted(set(v.code
                                             for v in profile.plan_check)))))
    return "\n".join(lines)
