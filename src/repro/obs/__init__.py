"""Observability: the telemetry layer the deployed system delegated to Azure.

The paper's analysis pipeline consumes *estimated* plans; this package
records what actually happened when those plans run under the
:mod:`repro.runtime` scheduler:

- :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and histograms (with streaming quantile estimation), rendered as
  Prometheus text exposition through ``GET /api/v1/metrics``;
- :mod:`repro.obs.tracing` — per-query lifecycle traces (submit → admit →
  parse → analyze → plan → execute → fetch), exportable as structured
  JSON and as Chrome ``trace_event`` format;
- :mod:`repro.obs.profiler` — per-operator runtime profiling for
  ``EXPLAIN ANALYZE``-style estimated-vs-actual comparisons and the
  q-error scoring in :mod:`repro.analysis.estimation`.

Everything here is built to be always-cheap: registry updates are O(1),
tracing appends a handful of spans per query, and operator wrapping only
happens when profiling is explicitly requested
(``benchmarks/bench_obs_overhead.py`` enforces the overhead contract).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.profiler import (
    ExecutionProfile,
    QueryProfiler,
    q_error,
    render_explain_analyze,
)
from repro.obs.tracing import Span, Trace

__all__ = [
    "Counter",
    "ExecutionProfile",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "QueryProfiler",
    "Span",
    "Trace",
    "q_error",
    "render_explain_analyze",
]
