"""Observability: the telemetry layer the deployed system delegated to Azure.

The paper's analysis pipeline consumes *estimated* plans; this package
records what actually happened when those plans run under the
:mod:`repro.runtime` scheduler:

- :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and histograms (with streaming quantile estimation), rendered as
  Prometheus text exposition through ``GET /api/v1/metrics``;
- :mod:`repro.obs.tracing` — per-query lifecycle traces (submit → admit →
  parse → analyze → plan → execute → fetch), exportable as structured
  JSON and as Chrome ``trace_event`` format;
- :mod:`repro.obs.profiler` — per-operator runtime profiling for
  ``EXPLAIN ANALYZE``-style estimated-vs-actual comparisons and the
  q-error scoring in :mod:`repro.analysis.estimation`;
- :mod:`repro.obs.timeseries` — bounded ring-buffer history over the
  registry with windowed queries (rate/delta/mean/quantile) and a
  background sampler;
- :mod:`repro.obs.querystore` — per-fingerprint runtime baselines with
  plan-change detection and regression verdicts (SQL Server Query Store
  style);
- :mod:`repro.obs.alerts` — declarative threshold rules over the
  time-series with ok→pending→firing state machines;
- :mod:`repro.obs.monitor` — the sampler + store + alerts bundle the
  runtime owns and ``GET /api/v1/health`` reports on.

Everything here is built to be always-cheap: registry updates are O(1),
tracing appends a handful of spans per query, and operator wrapping only
happens when profiling is explicitly requested
(``benchmarks/bench_obs_overhead.py`` enforces the overhead contract).
"""

from repro.obs.alerts import AlertManager, AlertRule, default_rules
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    buckets_up_to,
)
from repro.obs.monitor import ContinuousMonitor
from repro.obs.profiler import (
    ExecutionProfile,
    QueryProfiler,
    q_error,
    render_explain_analyze,
)
from repro.obs.querystore import QueryStore, plan_fingerprint, query_fingerprint
from repro.obs.timeseries import MetricsSampler, TimeSeriesStore
from repro.obs.tracing import Span, Trace

__all__ = [
    "AlertManager",
    "AlertRule",
    "ContinuousMonitor",
    "Counter",
    "ExecutionProfile",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "NullRegistry",
    "QueryProfiler",
    "QueryStore",
    "Span",
    "TimeSeriesStore",
    "Trace",
    "buckets_up_to",
    "default_rules",
    "plan_fingerprint",
    "q_error",
    "query_fingerprint",
    "render_explain_analyze",
]
