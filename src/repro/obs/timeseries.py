"""Metrics time-series: bounded history over the live registry.

A :class:`MetricsRegistry` answers point-in-time questions — the value of
every instrument *now*.  Operating a long-running service needs history:
was the error rate climbing before the page, did the cache hit rate drop
when the new workload arrived, what was p99 over the last minute?  This
module adds that layer without touching the hot path:

- :class:`TimeSeriesStore` — one bounded ring buffer per series (a series
  is a fully-labelled sample name exactly as ``registry.snapshot()``
  renders it, e.g. ``repro_scheduler_exec_seconds_bucket{le="0.1"}``),
  with windowed queries: ``rate`` (counter increase per second), ``delta``,
  ``mean``, and ``quantile`` (Prometheus-style interpolation over
  histogram bucket deltas).  Label children of one metric form a *family*;
  family queries sum over the children.
- :class:`MetricsSampler` — a daemon thread that snapshots a registry into
  the store at a fixed interval and invokes an optional callback (the
  alert evaluator) after every sample.

Samples carry both a monotonic timestamp (all window arithmetic) and an
epoch timestamp (display/export only), following the repo-wide rule that
durations never cross a wall clock.
"""

import threading
import time
from collections import deque

#: Default ring-buffer capacity per series: at the default 5 s interval
#: this keeps 30 minutes of history in ~8 KB per series.
DEFAULT_SAMPLES = 360


def _family_of(series):
    """The metric name part of a series key (labels stripped)."""
    brace = series.find("{")
    return series if brace < 0 else series[:brace]


def _parse_le(series):
    """The ``le`` bound of a histogram bucket series, as a float."""
    marker = 'le="'
    start = series.find(marker)
    if start < 0:
        return None
    end = series.find('"', start + len(marker))
    raw = series[start + len(marker):end]
    if raw == "+Inf":
        return float("inf")
    try:
        return float(raw)
    except ValueError:
        return None


class Series(object):
    """One metric series: a bounded ring of (monotonic, epoch, value)."""

    __slots__ = ("name", "_samples",)

    def __init__(self, name, capacity=DEFAULT_SAMPLES):
        self.name = name
        self._samples = deque(maxlen=capacity)

    def append(self, mono, epoch, value):
        self._samples.append((mono, epoch, value))

    def __len__(self):
        return len(self._samples)

    def samples(self):
        return list(self._samples)

    def latest(self):
        return self._samples[-1] if self._samples else None

    def window(self, seconds, now=None):
        """Samples whose monotonic timestamp falls in the last ``seconds``."""
        if not self._samples:
            return []
        if now is None:
            now = self._samples[-1][0]
        cutoff = now - seconds
        # Ring buffers are short (<= capacity); a reverse scan beats
        # building a list for bisect on every query.
        out = []
        for sample in reversed(self._samples):
            if sample[0] < cutoff:
                break
            out.append(sample)
        out.reverse()
        return out


class TimeSeriesStore(object):
    """Bounded per-series history with windowed queries (thread-safe)."""

    def __init__(self, capacity=DEFAULT_SAMPLES, max_series=4096):
        self.capacity = capacity
        #: Hard cap on distinct series (labels are unbounded in principle;
        #: the store must not be).  Excess series are dropped, counted.
        self.max_series = max_series
        self._series = {}  # series key -> Series
        self._families = {}  # family name -> [series keys]
        self._lock = threading.Lock()
        self.samples_taken = 0
        self.series_dropped = 0
        self.last_sample_epoch = None
        self.last_sample_seconds = 0.0

    # -- recording ------------------------------------------------------------

    def record(self, snapshot, mono=None, epoch=None):
        """Append one registry snapshot (``{series: value}``) to every ring."""
        started = time.perf_counter()
        if mono is None:
            mono = time.monotonic()
        if epoch is None:
            epoch = time.time()
        with self._lock:
            for key, value in snapshot.items():
                series = self._series.get(key)
                if series is None:
                    if len(self._series) >= self.max_series:
                        self.series_dropped += 1
                        continue
                    series = self._series[key] = Series(key, self.capacity)
                    self._families.setdefault(_family_of(key), []).append(key)
                series.append(mono, epoch, float(value))
            self.samples_taken += 1
            self.last_sample_epoch = epoch
            self.last_sample_seconds = time.perf_counter() - started

    # -- lookup ---------------------------------------------------------------

    def series_names(self):
        with self._lock:
            return sorted(self._series)

    def family(self, name):
        """All series keys belonging to one metric name."""
        with self._lock:
            if name in self._series:
                return [name]
            return list(self._families.get(name, ()))

    def _get(self, key):
        with self._lock:
            return self._series.get(key)

    def latest(self, name):
        """Most recent value; family queries sum the children."""
        total = None
        for key in self.family(name):
            series = self._get(key)
            sample = series.latest() if series is not None else None
            if sample is not None:
                total = (total or 0.0) + sample[2]
        return total

    def delta(self, name, seconds, now=None):
        """Increase over the window (counter semantics: resets clamp to 0)."""
        total = None
        for key in self.family(name):
            series = self._get(key)
            if series is None:
                continue
            window = series.window(seconds, now=now)
            if len(window) < 2:
                continue
            increase = 0.0
            previous = window[0][2]
            for _mono, _epoch, value in window[1:]:
                if value >= previous:
                    increase += value - previous
                else:  # counter reset: the new value is all new increase
                    increase += value
                previous = value
            total = (total or 0.0) + increase
        return total

    def rate(self, name, seconds, now=None):
        """Per-second increase over the window (None without two samples)."""
        elapsed = None
        for key in self.family(name):
            series = self._get(key)
            if series is None:
                continue
            window = series.window(seconds, now=now)
            if len(window) >= 2:
                span = window[-1][0] - window[0][0]
                if span > 0:
                    elapsed = max(elapsed or 0.0, span)
        if not elapsed:
            return None
        increase = self.delta(name, seconds, now=now)
        return None if increase is None else increase / elapsed

    def mean(self, name, seconds, now=None):
        """Average of the sampled values over the window (gauge semantics)."""
        values = []
        for key in self.family(name):
            series = self._get(key)
            if series is None:
                continue
            values.extend(sample[2] for sample in series.window(seconds, now=now))
        if not values:
            return None
        return sum(values) / len(values)

    def quantile(self, name, q, seconds, now=None):
        """Quantile of a histogram over the window, from bucket deltas.

        ``name`` is the histogram's base name; the store looks up every
        ``<name>_bucket{le=...}`` series, takes each bucket's increase over
        the window, and linearly interpolates inside the bucket containing
        the target rank — ``histogram_quantile`` semantics.  Returns None
        when the window saw no observations.
        """
        buckets = []
        for key in self.family(name + "_bucket"):
            bound = _parse_le(key)
            if bound is None:
                continue
            increase = self.delta(key, seconds, now=now)
            if increase is not None:
                buckets.append((bound, increase))
        buckets.sort()
        if not buckets:
            return None
        # Bucket series are cumulative; deltas of cumulative counts are
        # cumulative too, so the last (+Inf) entry is the total count.
        total = buckets[-1][1]
        if total <= 0:
            return None
        rank = q * total
        previous_bound, previous_count = 0.0, 0.0
        for bound, count in buckets:
            if count >= rank:
                if bound == float("inf"):
                    return previous_bound
                span = count - previous_count
                if span <= 0:
                    return bound
                fraction = (rank - previous_count) / span
                return previous_bound + (bound - previous_bound) * fraction
            previous_bound, previous_count = bound, count
        return previous_bound

    # -- export ---------------------------------------------------------------

    def to_dict(self, prefix=None, window=None, max_points=None):
        """JSON export: every series (optionally name-prefix filtered) with
        its (epoch, value) points, newest last."""
        with self._lock:
            names = sorted(self._series)
        payload = {}
        for key in names:
            if prefix and not key.startswith(prefix):
                continue
            series = self._get(key)
            if series is None:
                continue
            samples = (series.window(window) if window is not None
                       else series.samples())
            if max_points is not None:
                samples = samples[-max_points:]
            payload[key] = [
                [round(epoch, 3), value] for _mono, epoch, value in samples
            ]
        return {
            "samples_taken": self.samples_taken,
            "series_count": len(names),
            "series_dropped": self.series_dropped,
            "last_sample_epoch": self.last_sample_epoch,
            "series": payload,
        }

    def stats(self):
        with self._lock:
            return {
                "samples_taken": self.samples_taken,
                "series_count": len(self._series),
                "series_dropped": self.series_dropped,
                "capacity": self.capacity,
                "last_sample_epoch": self.last_sample_epoch,
                "last_sample_seconds": round(self.last_sample_seconds, 6),
            }


class MetricsSampler(object):
    """Background thread snapshotting a registry into a store.

    ``on_sample`` (called after every snapshot, with the store) is where the
    alert evaluator hooks in.  The thread is a daemon and wakes on ``stop``
    immediately, so shutting a runtime down never blocks on the interval.
    """

    def __init__(self, registry, store, interval=5.0, on_sample=None):
        self.registry = registry
        self.store = store
        self.interval = interval
        self.on_sample = on_sample
        self._stop = threading.Event()
        self._thread = None

    @property
    def running(self):
        return self._thread is not None and self._thread.is_alive()

    def sample_once(self):
        """One synchronous sample + callback (the tests' manual crank)."""
        self.store.record(self.registry.snapshot())
        if self.on_sample is not None:
            try:
                self.on_sample(self.store)
            except Exception:
                pass  # monitoring must never take the service down
        return self.store.samples_taken

    def start(self):
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="metrics-sampler", daemon=True)
        self._thread.start()
        return self

    def _loop(self):
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:
                pass  # a failed sample must not kill the sampler

    def stop(self):
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=1.0)
            self._thread = None
