"""Platform state <-> JSON-safe dicts, plus the canonical state digest.

One versioned document describes a whole deployment: engine catalog (tables
with rows, views with their SQL), catalog versions, datasets, permissions,
quotas, the query log, macros and ingest reports.  The snapshot store
frames this document on disk; recovery rebuilds a live platform from it.

Two invariants the rest of the subsystem leans on:

- **Round-trip exactness**: ``restore_platform_state(p2, platform_to_state(p1))``
  makes :func:`state_digest` agree on ``p1`` and ``p2``.  The digest is the
  crash tests' notion of "byte-equivalent state".
- **Broken views restore broken**: a view whose referenced objects were
  deleted (the platform leaves dependents dangling on purpose, §3.2) is
  restored from its SQL text *without planning*, so it keeps failing at
  query time exactly as it did before the crash.
"""

import datetime as _dt
import hashlib
import json
from decimal import Decimal

FORMAT_VERSION = 1


# -- JSON envelope helpers (shared with the WAL) -------------------------------


def json_default(value):
    """``json.dumps`` default: datetimes, dates, Decimals and sets."""
    if isinstance(value, _dt.datetime):
        return {"__dt__": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"__date__": value.isoformat()}
    if isinstance(value, Decimal):
        return {"__dec__": str(value)}
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError("cannot serialize %r (%s)" % (value, type(value).__name__))


def json_object_hook(obj):
    """Inverse of :func:`json_default` for the tagged scalar types."""
    if len(obj) == 1:
        if "__dt__" in obj:
            return _dt.datetime.fromisoformat(obj["__dt__"])
        if "__date__" in obj:
            return _dt.date.fromisoformat(obj["__date__"])
        if "__dec__" in obj:
            return Decimal(obj["__dec__"])
    return obj


# -- cell values ---------------------------------------------------------------
#
# Row cells are plain scalars except dates, datetimes and decimals, which
# are tagged 2-lists (lists are never legal cell values, so the tag cannot
# collide with data).


def encode_value(value):
    if isinstance(value, _dt.datetime):
        return ["@dt", value.isoformat()]
    if isinstance(value, _dt.date):
        return ["@d", value.isoformat()]
    if isinstance(value, Decimal):
        return ["@n", str(value)]
    return value


def decode_value(value):
    if isinstance(value, list):
        tag, raw = value
        if tag == "@dt":
            return _dt.datetime.fromisoformat(raw)
        if tag == "@d":
            return _dt.date.fromisoformat(raw)
        if tag == "@n":
            return Decimal(raw)
        raise ValueError("unknown cell tag %r" % tag)
    return value


def encode_row(row):
    return [encode_value(value) for value in row]


def decode_row(row):
    return tuple(decode_value(value) for value in row)


def _encode_columns(columns):
    return [[column.name, column.sql_type.value] for column in columns]


def _decode_columns(pairs):
    from repro.engine.catalog import Column
    from repro.engine.types import SQLType

    return [Column(name, SQLType(type_name)) for name, type_name in pairs]


# -- platform -> state ---------------------------------------------------------


def platform_to_state(platform):
    """Serialize a whole deployment (call under the platform's state lock)."""
    catalog = platform.db.catalog
    state = {
        "format": FORMAT_VERSION,
        "clock": platform._clock.isoformat(),
        "table_seq": platform._table_seq,
        "engine": {
            "tables": [
                {
                    "name": table.name,
                    "columns": _encode_columns(table.columns),
                    "rows": [encode_row(row) for row in table.rows],
                }
                for table in catalog.tables()
            ],
            "views": [
                {
                    "name": view.name,
                    "sql": view.sql,
                    "columns": _encode_columns(view.columns),
                }
                for view in catalog.views()
            ],
            "versions": catalog.all_versions(),
        },
        "datasets": [_dataset_to_dict(d) for d in platform.datasets.values()],
        "permissions": platform.permissions.dump_state(),
        "quotas": platform.quotas.dump_state(),
        "querylog": platform.log.dump_state(),
        "macros": [
            {
                "name": macro.name,
                "owner": macro.owner,
                "template": macro.template,
                "description": macro.description,
                "public": macro.public,
            }
            for macro in platform.macros.all_macros()
        ],
        "ingest_reports": {
            key: _ingest_report_to_dict(report)
            for key, report in platform.ingest_reports.items()
        },
    }
    # Monitoring history rides along when present: per-fingerprint runtime
    # baselines (the Query Store) are only useful for regression detection
    # if they survive a restart.  Attached by the runtime; absent on a bare
    # platform.
    query_store = getattr(platform, "query_store", None)
    if query_store is not None:
        state["querystore"] = query_store.dump_state()
    # Batch-lane journal: admitted/finished batches must survive restart so
    # a recovered worker can re-enqueue unfinished ones (absent on
    # snapshots written before the batch lane existed).
    batch_journal = getattr(platform, "batch_journal", None)
    if batch_journal is not None and len(batch_journal):
        state["batchjournal"] = batch_journal.dump_state()
    # Harvested cardinality feedback: like the Query Store, it is runtime
    # history worth keeping — a restart should not forget the observed
    # cardinalities that corrected a regressed plan.
    feedback_store = getattr(platform, "feedback_store", None)
    if feedback_store is not None:
        dumped = feedback_store.dump_state()
        if dumped.get("entries"):
            state["feedback"] = dumped
    return state


def _dataset_to_dict(dataset):
    return {
        "name": dataset.name,
        "owner": dataset.owner,
        "sql": dataset.sql,
        "kind": dataset.kind,
        "base_table": dataset.base_table,
        "derived_from": list(dataset.derived_from),
        "created_at": (
            dataset.created_at.isoformat()
            if dataset.created_at is not None else None
        ),
        "description": dataset.metadata.description,
        "tags": sorted(dataset.metadata.tags),
        "doi": dataset.doi,
        "preview_columns": list(dataset.preview_columns),
        "preview_rows": [encode_row(row) for row in dataset.preview_rows],
    }


def _ingest_report_to_dict(report):
    fmt = report.format
    return {
        "table_name": report.table_name,
        "row_count": report.row_count,
        "column_count": report.column_count,
        "defaulted_columns": list(report.defaulted_columns),
        "reverted_columns": list(report.reverted_columns),
        "ragged": report.ragged,
        "column_types": {
            name: sql_type.value for name, sql_type in report.column_types.items()
        },
        "format": None if fmt is None else {
            "field_delimiter": fmt.field_delimiter,
            "row_delimiter": fmt.row_delimiter,
            "column_count": fmt.column_count,
            "has_header": fmt.has_header,
        },
    }


# -- state -> platform ---------------------------------------------------------


def restore_platform_state(platform, state):
    """Rebuild a freshly constructed platform from a state document.

    The caller (recovery) is responsible for replaying any WAL tail on top
    and for regenerating catalog versions afterwards.
    """
    from repro.core.dataset import Dataset
    from repro.core.macros import Macro
    from repro.engine import parser as sql_parser
    from repro.engine.catalog import Table, View
    from repro.engine.database import _strip_order_by
    from repro.engine.types import SQLType
    from repro.errors import SQLError
    from repro.ingest.delimiters import FormatGuess
    from repro.ingest.ingestor import IngestReport

    if state.get("format") != FORMAT_VERSION:
        raise ValueError(
            "unsupported snapshot format %r (expected %d)"
            % (state.get("format"), FORMAT_VERSION)
        )
    platform._clock = _dt.datetime.fromisoformat(state["clock"])
    platform._table_seq = state["table_seq"]

    catalog = platform.db.catalog
    for spec in state["engine"]["tables"]:
        table = Table(spec["name"], _decode_columns(spec["columns"]))
        for row in spec["rows"]:
            table.insert_row(decode_row(row))
        catalog.adopt_table(table)
    for spec in state["engine"]["views"]:
        # Re-parse the stored SQL; a view over since-deleted objects still
        # parses (binding is deferred to planning), and one that does not
        # is restored queryless — failing at query time, as before.
        try:
            query = _strip_order_by(sql_parser.parse(spec["sql"]))
        except SQLError:
            query = None
        catalog.adopt_view(
            View(spec["name"], spec["sql"], query, _decode_columns(spec["columns"]))
        )
    catalog.restore_versions(state["engine"]["versions"])

    for spec in state["datasets"]:
        dataset = Dataset(
            spec["name"], spec["owner"], spec["sql"], spec["kind"],
            base_table=spec["base_table"],
            derived_from=spec["derived_from"],
            created_at=(
                _dt.datetime.fromisoformat(spec["created_at"])
                if spec["created_at"] else None
            ),
            description=spec["description"],
            tags=spec["tags"],
        )
        dataset.doi = spec["doi"]
        dataset.preview_columns = list(spec["preview_columns"])
        dataset.preview_rows = [decode_row(row) for row in spec["preview_rows"]]
        platform.datasets[dataset.name.lower()] = dataset

    platform.permissions.restore_state(state["permissions"])
    platform.quotas.restore_state(state["quotas"])
    platform.log.restore_state(state["querylog"])

    for spec in state["macros"]:
        macro = Macro(spec["name"], spec["owner"], spec["template"],
                      spec["description"])
        macro.public = spec["public"]
        platform.macros.adopt(macro)

    for key, spec in state["ingest_reports"].items():
        report = IngestReport(spec["table_name"])
        report.row_count = spec["row_count"]
        report.column_count = spec["column_count"]
        report.defaulted_columns = list(spec["defaulted_columns"])
        report.reverted_columns = list(spec["reverted_columns"])
        report.ragged = spec["ragged"]
        report.column_types = {
            name: SQLType(value) for name, value in spec["column_types"].items()
        }
        if spec["format"] is not None:
            fmt = spec["format"]
            report.format = FormatGuess(
                fmt["field_delimiter"], fmt["row_delimiter"],
                fmt["column_count"], fmt["has_header"],
            )
        platform.ingest_reports[key] = report

    if state.get("querystore") is not None:
        from repro.obs.querystore import QueryStore

        store = getattr(platform, "query_store", None)
        if store is None:
            store = platform.query_store = QueryStore()
        store.restore_state(state["querystore"])

    if state.get("feedback") is not None:
        from repro.adaptive import CardinalityFeedbackStore

        feedback = getattr(platform, "feedback_store", None)
        if feedback is None:
            feedback = platform.feedback_store = CardinalityFeedbackStore()
        feedback.restore_state(state["feedback"])
        # The planner consults the store through the database handle; a
        # runtime attaching later re-points this at its own store.
        platform.db.feedback = feedback

    if state.get("batchjournal") is not None:
        platform.batch_journal.restore_state(state["batchjournal"])
    return platform


# -- digest --------------------------------------------------------------------


def state_digest(platform):
    """SHA-256 over the platform's logical state.

    Excludes what recovery deliberately does not round-trip: catalog
    versions (regenerated with an epoch bump so pre-crash cache vectors can
    never validate), per-entry ``plan_json`` (an analysis artifact the
    workload framework re-attaches), and the Query Store and cardinality
    feedback store (monitoring history is checkpoint-only — the WAL does
    not log it, so post-checkpoint executions are legitimately lost on
    crash).  Everything
    else — tables, rows, views, datasets, permissions, quotas, the query
    log — must match exactly, which is the crash harness's equality
    criterion.
    """
    with platform._state_lock:
        state = platform_to_state(platform)
    state["engine"].pop("versions")
    state.pop("querystore", None)
    state.pop("feedback", None)
    for entry in state["querylog"]["entries"]:
        entry.pop("plan_json", None)
    payload = json.dumps(state, default=json_default, sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
