"""Subprocess half of the SIGKILL crash harness.

``python -m repro.storage.crash_driver <data_dir> [--sync MODE] [--steps N]
[--checkpoint-at K]`` opens a durable platform over ``data_dir`` and runs a
deterministic mixed workload (uploads, derived views, appends, shares,
queries, quota changes, a delete, a macro).  After every committed step it
prints one flushed line::

    MILESTONE <lsn> <digest>

where ``digest`` is the canonical state digest at that instant.  The parent
test (``tests/storage/test_crash_recovery.py``) SIGKILLs this process at an
arbitrary point mid-stream, recovers the data directory with
``up_to_lsn=<lsn>`` for the last milestone it managed to read, and requires
digest equality — byte-equivalence with the last committed state.

After the final step the driver prints ``DONE`` and exits 0, so the same
entry point also serves the CI recovery-smoke job (which kills it by
timetable rather than luck).
"""

import argparse
import sys

from repro.storage.manager import StorageManager


def _workload_steps(platform):
    """Yield (description, thunk) pairs; each thunk commits >= 1 mutation."""
    rows = "id,species,count\n1,coho,14\n2,chinook,3\n3,chum,25\n"
    more = "id,species,count\n4,sockeye,9\n5,pink,40\n"
    yield "upload-a", lambda: platform.upload(
        "alice", "Salmon Counts", rows, description="field survey",
        tags=["fish", "survey"])
    yield "upload-b", lambda: platform.upload(
        "bob", "Gene List", "gene,score\nBRCA1,0.9\nTP53,0.7\n")
    yield "derive", lambda: platform.create_dataset(
        "alice", "Big Runs",
        "SELECT species, count FROM [Salmon Counts] WHERE count > 10")
    yield "share", lambda: platform.share("alice", "Big Runs", "bob")
    yield "public", lambda: platform.make_public("bob", "Gene List")
    yield "query-1", lambda: platform.run_query(
        "alice", "SELECT * FROM [Big Runs]")
    yield "append", lambda: platform.append("alice", "Salmon Counts", more)
    yield "quota", lambda: platform.quotas.set_limit("carol", 1024 * 1024)
    yield "upload-c", lambda: platform.upload(
        "carol", "Temp Upload", "x,y\n1,2\n3,4\n")
    yield "query-2", lambda: platform.run_query(
        "bob", "SELECT gene FROM [Gene List] WHERE score > 0.8")
    yield "macro", lambda: platform.macros.define(
        "alice", "top_counts", "SELECT * FROM $t WHERE count > $n")
    yield "describe", lambda: platform.set_description(
        "alice", "Big Runs", "runs over ten fish")
    yield "tags", lambda: platform.add_tags("alice", "Big Runs", ["rivers"])
    yield "materialize", lambda: platform.materialize(
        "bob", "Gene Snapshot", "Gene List")
    yield "delete", lambda: platform.delete_dataset("carol", "Temp Upload")
    yield "doi", lambda: platform.mint_doi("bob", "Gene Snapshot")
    yield "query-3", lambda: platform.run_query(
        "bob", "SELECT COUNT(*) AS n FROM [Gene Snapshot]")
    yield "unshare", lambda: platform.unshare("alice", "Big Runs", "bob")


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.storage.crash_driver")
    parser.add_argument("data_dir")
    parser.add_argument("--sync", choices=["buffered", "fsync"],
                        default="buffered")
    parser.add_argument("--steps", type=int, default=0,
                        help="stop after N steps (0 = run all)")
    parser.add_argument("--start-at", type=int, default=1,
                        help="skip steps below this number (resume a "
                             "recovered directory where they already ran)")
    parser.add_argument("--checkpoint-at", type=int, default=0,
                        help="force a checkpoint after this step number "
                             "(0 = never)")
    args = parser.parse_args(argv)

    manager = StorageManager(args.data_dir, sync=args.sync)
    if manager.has_state():
        platform, _report = manager.recover()
    else:
        from repro.core.sqlshare import SQLShare

        platform = manager.attach(SQLShare())

    for number, (name, thunk) in enumerate(_workload_steps(platform), 1):
        if number < args.start_at:
            continue
        if args.steps and number > args.steps:
            break
        thunk()
        if args.checkpoint_at and number == args.checkpoint_at:
            manager.checkpoint()
        # The milestone line itself is the commit acknowledgment the parent
        # reads; stdout must be flushed before the next step can tear.
        print("MILESTONE %d %s %s"
              % (manager.wal.last_lsn, manager.digest(), name))
        sys.stdout.flush()
    print("DONE")
    sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
