"""The durability subsystem's front door: logging, checkpoint, recovery.

A :class:`StorageManager` owns one data directory::

    data_dir/
        wal.log             append-only CRC-framed operation log
        snapshot-000001.snap  full-state checkpoints (newest wins)

**Logging.**  The platform's mutators call :meth:`log_operation` with a
logical redo record (operation name + the inputs needed to re-run it);
the query log and quota manager feed records through listeners this
manager installs at :meth:`attach` time; direct engine DDL/DML through
``Database.execute`` arrives via the engine's mutation listener.  An
operation is acknowledged to the caller only after its WAL record is
written (and, in ``fsync`` mode, durable), so a crash at any instant
loses only never-acknowledged work.

**Checkpoint.**  :meth:`checkpoint` captures the WAL position, serializes
the whole platform under the state lock (which every mutator and —
via ``Database.commit_lock`` — every direct engine mutation holds), writes
a framed snapshot atomically, then truncates the WAL keeping any records
past the captured position.  Query-log records raced past the capture
point may land in both the snapshot and the surviving WAL tail; replay
dedupes them by ``query_id``.

**Recovery.**  :meth:`recover` loads the newest snapshot that validates
(falling back across truncated/corrupt ones), replays the WAL tail —
skipping records the snapshot already covers and dropping a torn tail
with a warning — then *regenerates* every catalog version with an epoch
bump so no version vector stamped before the crash can ever validate
again: a result cache surviving in-process, or restored by any future
cache persistence, is structurally unable to serve pre-crash rows.
"""

import os
import time

from repro.storage import wal as walmod
from repro.storage.serialize import (
    platform_to_state,
    restore_platform_state,
    state_digest,
)
from repro.storage.snapshot import SnapshotStore
from repro.storage.wal import ReplaySummary, WriteAheadLog

WAL_FILENAME = "wal.log"


class RecoveryError(Exception):
    """A WAL record failed to replay under strict recovery."""


class RecoveryReport(object):
    """What one recovery pass did — surfaced in ``/api/v1/runtime/stats``."""

    def __init__(self):
        self.snapshot_path = None
        self.snapshot_lsn = 0
        self.snapshots_skipped = []
        self.records_replayed = 0
        self.records_skipped = 0
        self.records_beyond_limit = 0
        self.log_records_deduped = 0
        self.torn_records_dropped = 0
        self.torn_bytes_dropped = 0
        self.version_epoch_bumps = 0
        self.replay_errors = []
        self.elapsed_seconds = 0.0
        self.recovered_lsn = 0

    def to_dict(self):
        return {
            "snapshot": (os.path.basename(self.snapshot_path)
                         if self.snapshot_path else None),
            "snapshot_lsn": self.snapshot_lsn,
            "snapshots_skipped": [os.path.basename(p)
                                  for p in self.snapshots_skipped],
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "records_beyond_limit": self.records_beyond_limit,
            "log_records_deduped": self.log_records_deduped,
            "torn_records_dropped": self.torn_records_dropped,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "version_epoch_bumps": self.version_epoch_bumps,
            "replay_errors": list(self.replay_errors),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "recovered_lsn": self.recovered_lsn,
        }


class StorageManager(object):
    """Durability for one platform instance over one data directory."""

    def __init__(self, data_dir, sync="buffered", keep_snapshots=2,
                 auto_checkpoint_records=None, opener=open):
        self.data_dir = str(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.wal = WriteAheadLog(
            os.path.join(self.data_dir, WAL_FILENAME), sync=sync, opener=opener)
        self.snapshots = SnapshotStore(self.data_dir, keep=keep_snapshots,
                                       opener=opener)
        #: Checkpoint automatically once this many records accumulate
        #: (None disables; checkpoints are then explicit only).
        self.auto_checkpoint_records = auto_checkpoint_records
        self.platform = None
        self.replaying = False
        self.records_since_checkpoint = 0
        self.checkpoints_taken = 0
        self.last_checkpoint = None
        self.last_recovery = None
        self._in_checkpoint = False
        self._append_hist = None
        self._checkpoint_hist = None

    # -- wiring ----------------------------------------------------------------

    def attach(self, platform):
        """Install the durability hooks on a live platform."""
        self.platform = platform
        platform.storage = self
        platform.log.listener = self._on_log_record
        platform.quotas.listener = self._on_quota_limit
        platform.db.mutation_listener = self._on_engine_mutation
        # Direct engine DDL/DML commits under the platform's state lock, so
        # a checkpoint's serialization pass is a consistent cut.
        platform.db.commit_lock = platform._state_lock
        self._install_metrics(platform.metrics)
        return platform

    def adopt(self, platform):
        """Attach to a platform whose history predates this manager (e.g. a
        generated deployment) and immediately checkpoint, so the adopted
        state is durable even though no WAL records describe it."""
        self.attach(platform)
        self.checkpoint()
        return platform

    def _install_metrics(self, registry):
        if registry is None:
            return
        self._append_hist = registry.histogram(
            "repro_wal_append_seconds",
            "Seconds per WAL append (includes flush/fsync).")
        self._checkpoint_hist = registry.histogram(
            "repro_checkpoint_seconds",
            "Seconds per snapshot checkpoint.")
        registry.counter_callback(
            "repro_wal_appends_total",
            "Records appended to the write-ahead log.",
            lambda: self.wal.appends)
        registry.counter_callback(
            "repro_wal_bytes_total",
            "Bytes written to the write-ahead log.",
            lambda: self.wal.bytes_written)
        registry.gauge_callback(
            "repro_wal_size_bytes",
            "Current on-disk size of the write-ahead log.",
            self.wal.size_bytes)
        registry.gauge_callback(
            "repro_wal_records_since_checkpoint",
            "WAL records accumulated since the last checkpoint.",
            lambda: self.records_since_checkpoint)
        registry.counter_callback(
            "repro_checkpoints_total",
            "Snapshot checkpoints taken.",
            lambda: self.checkpoints_taken)
        registry.gauge_callback(
            "repro_checkpoint_bytes",
            "Size of the most recent snapshot.",
            lambda: (self.last_checkpoint or {}).get("bytes", 0))
        registry.gauge_callback(
            "repro_recovery_seconds",
            "Duration of the most recent recovery (0 when never recovered).",
            lambda: (self.last_recovery.elapsed_seconds
                     if self.last_recovery else 0.0))
        registry.counter_callback(
            "repro_wal_torn_records_total",
            "Torn WAL tail records dropped during recovery.",
            lambda: (self.last_recovery.torn_records_dropped
                     if self.last_recovery else 0))

    # -- logging ---------------------------------------------------------------

    def log_operation(self, op, data):
        """Append one logical redo record; returns its LSN (None while
        replaying — replayed operations must not re-log themselves)."""
        if self.replaying:
            return None
        started = time.perf_counter()
        lsn = self.wal.append({"op": op, "data": data})
        if self._append_hist is not None:
            self._append_hist.observe(time.perf_counter() - started)
        self.records_since_checkpoint += 1
        if (self.auto_checkpoint_records
                and self.records_since_checkpoint >= self.auto_checkpoint_records
                and not self._in_checkpoint):
            self.checkpoint()
        return lsn

    def _on_log_record(self, entry):
        self.log_operation("log", entry.to_record())

    def _on_quota_limit(self, user, limit):
        self.log_operation("quota_limit", {"user": user, "limit": limit})

    def _on_engine_mutation(self, sql, statement_kind):
        # Platform mutators never route DDL/DML through Database.execute
        # (they use the python-level catalog APIs), so anything arriving
        # here is a direct engine-level commit: log it as replayable SQL.
        self.log_operation("engine_sql", {"sql": sql, "kind": statement_kind})

    # -- checkpoint ------------------------------------------------------------

    def checkpoint(self):
        """Serialize the platform, write a snapshot, truncate the WAL.

        Returns a stats dict.  Safe to call from any thread; mutators are
        excluded for the duration via the platform's state lock.
        """
        platform = self.platform
        if platform is None:
            raise RuntimeError("no platform attached")
        started = time.perf_counter()
        self._in_checkpoint = True
        try:
            with platform._state_lock:
                # Capture the WAL position BEFORE serializing: any record
                # appended during serialization has a higher LSN, survives
                # the truncation below, and is replayed on top of the
                # snapshot at recovery (idempotently / deduped).
                last_lsn = self.wal.last_lsn
                state = platform_to_state(platform)
                state["last_lsn"] = last_lsn
                path, nbytes = self.snapshots.write(state)
                self.wal.truncate(keep_after_lsn=last_lsn)
        finally:
            self._in_checkpoint = False
        elapsed = time.perf_counter() - started
        if self._checkpoint_hist is not None:
            self._checkpoint_hist.observe(elapsed)
        self.records_since_checkpoint = 0
        self.checkpoints_taken += 1
        stats = {
            "snapshot": os.path.basename(path),
            "bytes": nbytes,
            "last_lsn": last_lsn,
            "seconds": round(elapsed, 6),
        }
        self.last_checkpoint = stats
        return stats

    # -- recovery --------------------------------------------------------------

    def has_state(self):
        """True when the data directory holds anything to recover."""
        if self.snapshots.snapshot_files():
            return True
        return self.wal.size_bytes() > len(walmod.MAGIC)

    def recover(self, platform_factory=None, up_to_lsn=None, strict=True):
        """Rebuild a platform from the data directory.

        Returns ``(platform, RecoveryReport)``.  ``up_to_lsn`` stops the
        replay early (the crash harness uses it to compare digests at a
        known point).  ``strict=False`` records replay failures in the
        report instead of raising.
        """
        started = time.perf_counter()
        report = RecoveryReport()
        if platform_factory is None:
            from repro.core.sqlshare import SQLShare

            platform_factory = SQLShare
        platform = platform_factory()
        state, snapshot_path, skipped = self.snapshots.load_latest()
        report.snapshot_path = snapshot_path
        report.snapshots_skipped = skipped
        snapshot_lsn = 0
        self.replaying = True
        try:
            if state is not None:
                snapshot_lsn = state.get("last_lsn", 0)
                restore_platform_state(platform, state)
            report.snapshot_lsn = snapshot_lsn
            max_restored_log_id = platform.log.max_id()
            summary = ReplaySummary()
            for record in walmod.replay(self.wal.path, summary):
                lsn = record.get("lsn", 0)
                if lsn <= snapshot_lsn:
                    report.records_skipped += 1
                    continue
                if up_to_lsn is not None and lsn > up_to_lsn:
                    report.records_beyond_limit += 1
                    continue
                if (record["op"] == "log"
                        and record["data"].get("query_id", 0) <= max_restored_log_id):
                    report.log_records_deduped += 1
                    continue
                try:
                    self._apply(platform, record["op"], record["data"])
                except Exception as error:
                    if strict:
                        raise RecoveryError(
                            "replay of lsn %d (%s) failed: %s"
                            % (lsn, record["op"], error)) from error
                    report.replay_errors.append(
                        {"lsn": lsn, "op": record["op"], "error": str(error)})
                else:
                    report.records_replayed += 1
            report.torn_records_dropped = (summary.torn_records
                                           + self.wal.torn_records_trimmed)
            report.torn_bytes_dropped = (summary.torn_bytes
                                         + self.wal.torn_bytes_trimmed)
            report.recovered_lsn = max(snapshot_lsn, summary.last_lsn)
        finally:
            self.replaying = False
        platform.log.finalize_restore()
        # Regenerate — never naively reload — version vectors: one epoch
        # bump per known object makes every pre-crash vector unservable.
        report.version_epoch_bumps = platform.db.catalog.bump_all_versions()
        if platform.result_cache is not None:
            platform.result_cache.clear()
        self.wal.set_lsn_floor(report.recovered_lsn)
        self.attach(platform)
        report.elapsed_seconds = time.perf_counter() - started
        self.last_recovery = report
        return platform, report

    def _apply(self, platform, op, data):
        """Re-run one logical redo record against the recovering platform."""
        if op == "upload":
            platform.upload(data["owner"], data["name"], data["text"],
                            description=data["description"], tags=data["tags"],
                            timestamp=data["timestamp"])
        elif op == "create_dataset":
            platform.create_dataset(data["owner"], data["name"], data["sql"],
                                    description=data["description"],
                                    tags=data["tags"],
                                    timestamp=data["timestamp"])
        elif op == "append":
            platform.append(data["owner"], data["name"], data["text"],
                            timestamp=data["timestamp"])
        elif op == "materialize":
            platform.materialize(data["owner"], data["name"], data["source"],
                                 timestamp=data["timestamp"])
        elif op == "materialize_inplace":
            platform.materialize_in_place(data["owner"], data["name"],
                                          timestamp=data["timestamp"])
        elif op == "recluster":
            platform.recluster_dataset(data["owner"], data["name"],
                                       data["column"])
        elif op == "delete_dataset":
            platform.delete_dataset(data["owner"], data["name"])
        elif op == "make_public":
            platform.make_public(data["owner"], data["name"])
        elif op == "make_private":
            platform.make_private(data["owner"], data["name"])
        elif op == "share":
            platform.share(data["owner"], data["name"], data["user"])
        elif op == "unshare":
            platform.unshare(data["owner"], data["name"], data["user"])
        elif op == "set_description":
            platform.set_description(data["owner"], data["name"],
                                     data["description"])
        elif op == "add_tags":
            platform.add_tags(data["owner"], data["name"], data["tags"])
        elif op == "mint_doi":
            platform.mint_doi(data["owner"], data["name"])
        elif op == "quota_limit":
            platform.quotas.set_limit(data["user"], data["limit"])
        elif op == "macro_define":
            platform.macros.define(data["owner"], data["name"],
                                   data["template"], data["description"])
        elif op == "macro_public":
            platform.macros.make_public(data["owner"], data["name"])
        elif op == "engine_sql":
            platform.db.execute(data["sql"])
        elif op == "batch_submit":
            platform.batch_journal.submit(
                data["user"], data["sql"], data["name"],
                timestamp=data["timestamp"], batch_id=data["batch_id"])
        elif op == "batch_done":
            platform.batch_journal.finish(
                data["batch_id"], data["state"], error=data.get("error"),
                result_dataset=data.get("result_dataset"))
        elif op == "result_table":
            from repro.engine.types import SQLType

            platform.save_result_table(
                data["owner"], data["name"],
                [(col_name, SQLType(type_name))
                 for col_name, type_name in data["columns"]],
                [tuple(row) for row in data["rows"]],
                timestamp=data["timestamp"])
        elif op == "log":
            entry = platform.log.restore_entry(data)
            with platform._state_lock:
                if entry.timestamp is not None:
                    platform._clock = max(platform._clock, entry.timestamp)
        else:
            raise RecoveryError("unknown WAL operation %r" % op)

    # -- introspection ---------------------------------------------------------

    def digest(self):
        """Canonical digest of the attached platform's logical state."""
        return state_digest(self.platform)

    def stats(self):
        payload = {
            "data_dir": self.data_dir,
            "wal": {
                "sync": self.wal.sync,
                "last_lsn": self.wal.last_lsn,
                "appends": self.wal.appends,
                "bytes_written": self.wal.bytes_written,
                "size_bytes": self.wal.size_bytes(),
                "records_since_checkpoint": self.records_since_checkpoint,
            },
            "auto_checkpoint_records": self.auto_checkpoint_records,
            "checkpoints": {
                "count": self.checkpoints_taken,
                "last": self.last_checkpoint,
            },
            "recovery": (self.last_recovery.to_dict()
                         if self.last_recovery else None),
        }
        return payload

    def close(self):
        self.wal.close()


def open_storage(data_dir, sync="buffered", keep_snapshots=2,
                 auto_checkpoint_records=None, platform_factory=None):
    """Open a data directory: recover if it holds state, else start fresh.

    Returns ``(platform, manager, report)`` where ``report`` is None for a
    fresh directory.
    """
    manager = StorageManager(data_dir, sync=sync, keep_snapshots=keep_snapshots,
                             auto_checkpoint_records=auto_checkpoint_records)
    if manager.has_state():
        platform, report = manager.recover(platform_factory=platform_factory)
        return platform, manager, report
    if platform_factory is None:
        from repro.core.sqlshare import SQLShare

        platform_factory = SQLShare
    platform = platform_factory()
    manager.attach(platform)
    return platform, manager, None
