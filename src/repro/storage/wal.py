"""The append-only, CRC-framed write-ahead log.

Every committed platform mutation (and every query-log record) is framed
and appended here before the operation is acknowledged to the caller, so a
crash at any instant loses at most work that was never acknowledged.  The
format is deliberately boring:

``file  := magic record*``
``magic := b"RPWAL001"``  (8 bytes)
``record := length:u32 crc:u32 payload``  (little-endian header)

``payload`` is UTF-8 JSON carrying a monotonically increasing ``lsn`` plus
an operation envelope (see :mod:`repro.storage.manager`).  ``crc`` is the
CRC-32 of the payload bytes; ``length`` is its byte count.  A torn or
truncated tail — short header, short payload, or CRC mismatch — marks the
end of the recoverable log: replay drops the tail with a warning instead of
failing, which is exactly the contract a kill -9 mid-``write`` requires.

Two durability modes:

- ``"buffered"`` — ``write`` + ``flush``: bytes reach the OS page cache,
  so they survive the *process* dying (SIGKILL) but not the machine;
- ``"fsync"`` — additionally ``os.fsync`` per append: survives power loss
  at a large per-commit latency cost (measured by
  ``benchmarks/bench_wal_overhead.py``).
"""

import json
import logging
import os
import struct
import threading
import zlib

from repro.storage.serialize import json_default, json_object_hook

logger = logging.getLogger("repro.storage")

MAGIC = b"RPWAL001"
_HEADER = struct.Struct("<II")

#: Accepted values for :class:`WriteAheadLog`'s ``sync`` argument.
SYNC_MODES = ("buffered", "fsync")


class WalCorruptionError(Exception):
    """The log is unusable beyond tail-tearing (bad magic)."""


class ReplaySummary(object):
    """What a :func:`replay` pass observed."""

    __slots__ = ("records", "torn_records", "torn_bytes", "last_lsn",
                 "valid_bytes")

    def __init__(self):
        self.records = 0
        #: Tail records dropped for short/corrupt framing (0 or 1 for a
        #: single torn write; more only if the medium scrambled the tail).
        self.torn_records = 0
        self.torn_bytes = 0
        self.last_lsn = 0
        #: File offset just past the last valid record — where an appender
        #: must resume after trimming a torn tail.
        self.valid_bytes = 0

    def to_dict(self):
        return {
            "records": self.records,
            "torn_records": self.torn_records,
            "torn_bytes": self.torn_bytes,
            "last_lsn": self.last_lsn,
        }


def frame(payload_bytes):
    """Header + payload for one record."""
    return _HEADER.pack(len(payload_bytes), zlib.crc32(payload_bytes)) + payload_bytes


def replay(path, summary=None):
    """Yield decoded record dicts from a WAL file, tolerant of torn tails.

    Anything after the first bad frame is dropped (counted on ``summary``):
    a torn write tears the *tail*, so no valid record can follow it.  A
    missing file replays as empty.
    """
    summary = summary if summary is not None else ReplaySummary()
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return
    with handle:
        magic = handle.read(len(MAGIC))
        if not magic:
            return
        if magic != MAGIC:
            raise WalCorruptionError("%s: bad WAL magic %r" % (path, magic))
        summary.valid_bytes = len(MAGIC)
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                summary.torn_records += 1
                summary.torn_bytes += len(header) + _remaining(handle)
                logger.warning("%s: dropping torn WAL tail (short header)", path)
                return
            length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
            trailing = _remaining(handle) if len(payload) < length else 0
            if len(payload) < length or zlib.crc32(payload) != crc:
                summary.torn_records += 1
                summary.torn_bytes += _HEADER.size + len(payload) + trailing
                logger.warning(
                    "%s: dropping torn WAL tail (%s)", path,
                    "short payload" if len(payload) < length else "CRC mismatch")
                return
            try:
                record = json.loads(payload.decode("utf-8"),
                                    object_hook=json_object_hook)
            except ValueError:
                summary.torn_records += 1
                summary.torn_bytes += _HEADER.size + len(payload)
                logger.warning("%s: dropping undecodable WAL tail", path)
                return
            summary.records += 1
            summary.last_lsn = max(summary.last_lsn, record.get("lsn", 0))
            summary.valid_bytes = handle.tell()
            yield record


def _remaining(handle):
    position = handle.tell()
    handle.seek(0, os.SEEK_END)
    end = handle.tell()
    handle.seek(position)
    return end - position


class WriteAheadLog(object):
    """Append-only log writer with per-record CRC framing.

    Thread-safe: appends from the platform's mutators and the runtime's
    query-log listener serialize on an internal lock, so record order on
    disk matches commit order.  ``opener`` is an injection point for the
    fault harness (:mod:`repro.storage.faults`).
    """

    def __init__(self, path, sync="buffered", opener=open):
        if sync not in SYNC_MODES:
            raise ValueError("sync must be one of %s, not %r" % (SYNC_MODES, sync))
        self.path = str(path)
        self.sync = sync
        self._opener = opener
        self._lock = threading.Lock()
        self._handle = None
        self.appends = 0
        self.bytes_written = 0
        # Resume the LSN sequence past whatever the file already holds,
        # and trim any torn tail so new appends extend the valid prefix
        # (a record appended after garbage would be unreachable to replay).
        summary = ReplaySummary()
        for _record in replay(self.path, summary):
            pass
        self._lsn = summary.last_lsn
        #: Torn-tail damage found (and trimmed) when this writer opened the
        #: file — recovery folds these into its report.
        self.torn_records_trimmed = summary.torn_records
        self.torn_bytes_trimmed = summary.torn_bytes
        if summary.torn_records:
            logger.warning("%s: trimming %d torn byte(s) off the WAL tail",
                           self.path, summary.torn_bytes)
            os.truncate(self.path, summary.valid_bytes)

    @property
    def last_lsn(self):
        return self._lsn

    def set_lsn_floor(self, lsn):
        """Never assign an LSN at or below ``lsn`` (used after recovery so
        post-recovery records sort after everything already replayed)."""
        with self._lock:
            self._lsn = max(self._lsn, lsn)

    def append(self, record):
        """Frame, write and (per the sync mode) flush one record dict.

        Assigns and returns the record's LSN.  The record is mutated to
        carry it (``record["lsn"]``).
        """
        with self._lock:
            self._lsn += 1
            record["lsn"] = self._lsn
            payload = json.dumps(
                record, default=json_default, sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
            framed = frame(payload)
            handle = self._ensure_open_locked()
            handle.write(framed)
            handle.flush()
            if self.sync == "fsync":
                # Intentional fsync-under-lock: on-disk record order must
                # match commit order, so the sync serializes with the write.
                os.fsync(handle.fileno())  # selfcheck: ok[SELFCHECK003]
            self.appends += 1
            self.bytes_written += len(framed)
            return self._lsn

    def _ensure_open_locked(self):
        if self._handle is None:
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._handle = self._opener(self.path, "ab")
            if fresh:
                self._handle.write(MAGIC)
                self._handle.flush()
                if self.sync == "fsync":
                    # Intentional: the magic must be durable before any
                    # record that follows it.
                    os.fsync(self._handle.fileno())  # selfcheck: ok[SELFCHECK003]
        return self._handle

    def truncate(self, keep_after_lsn=None):
        """Compact the log after a successful checkpoint.

        Records with LSN at or below ``keep_after_lsn`` are dropped (the
        snapshot covers them); later ones — appended concurrently while the
        checkpoint serialized — are rewritten into the fresh log.  With
        ``keep_after_lsn=None`` everything goes.  The rewrite lands in a
        temp file first and is renamed into place, so a crash mid-truncate
        leaves either the old log (whose covered prefix recovery skips by
        LSN) or the compacted one — never a torn log.

        The LSN sequence keeps counting either way — records written after
        a checkpoint still sort after the checkpoint's ``last_lsn``.
        """
        with self._lock:
            survivors = []
            if keep_after_lsn is not None:
                survivors = [record for record in replay(self.path)
                             if record.get("lsn", 0) > keep_after_lsn]
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            tmp_path = self.path + ".tmp"
            with self._opener(tmp_path, "wb") as handle:
                handle.write(MAGIC)
                for record in survivors:
                    payload = json.dumps(
                        record, default=json_default, sort_keys=True,
                        separators=(",", ":"),
                    ).encode("utf-8")
                    handle.write(frame(payload))
                handle.flush()
                if self.sync == "fsync":
                    # Intentional: the compacted file must be durable
                    # before it replaces the live log.
                    os.fsync(handle.fileno())  # selfcheck: ok[SELFCHECK003]
            os.replace(tmp_path, self.path)

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def size_bytes(self):
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
