"""Durable storage: write-ahead log, snapshot checkpoints, crash recovery.

See DESIGN.md's "Durability" section for the record format, the checkpoint
protocol and the recovery invariants.  The short version:

- every committed mutation is framed into ``wal.log`` before the caller is
  acknowledged (:mod:`repro.storage.wal`);
- a checkpoint serializes the whole platform into a ``snapshot-*.snap``
  file and compacts the WAL (:mod:`repro.storage.snapshot`,
  :mod:`repro.storage.serialize`);
- recovery = newest valid snapshot + WAL-tail replay, tolerant of torn
  tails and truncated snapshots, followed by a catalog version epoch bump
  so pre-crash cache entries can never validate
  (:mod:`repro.storage.manager`).
"""

from repro.storage.faults import (
    FaultyFile,
    FaultyOpener,
    InjectedCrash,
    SlowFile,
    SlowOpener,
    corrupt_tail,
    flip_byte,
)
from repro.storage.manager import (
    RecoveryError,
    RecoveryReport,
    StorageManager,
    open_storage,
)
from repro.storage.serialize import (
    FORMAT_VERSION,
    platform_to_state,
    restore_platform_state,
    state_digest,
)
from repro.storage.snapshot import SnapshotError, SnapshotStore
from repro.storage.wal import (
    ReplaySummary,
    SYNC_MODES,
    WalCorruptionError,
    WriteAheadLog,
    replay,
)

__all__ = [
    "FORMAT_VERSION",
    "FaultyFile",
    "FaultyOpener",
    "InjectedCrash",
    "RecoveryError",
    "RecoveryReport",
    "ReplaySummary",
    "SYNC_MODES",
    "SlowFile",
    "SlowOpener",
    "SnapshotError",
    "SnapshotStore",
    "StorageManager",
    "WalCorruptionError",
    "WriteAheadLog",
    "corrupt_tail",
    "flip_byte",
    "open_storage",
    "platform_to_state",
    "replay",
    "restore_platform_state",
    "state_digest",
]
