"""Fault injection for the durability tests.

:class:`FaultyFile` wraps a real file object and kills the process-visible
write stream after a byte budget: the first ``write`` that would exceed the
budget writes only the bytes that fit, then raises :class:`InjectedCrash`.
That reproduces exactly what ``kill -9`` mid-``write`` leaves on disk — a
torn tail — without needing a subprocess.  :class:`FaultyOpener` is the
matching ``open`` substitute the WAL and snapshot store accept.

``corrupt_tail``/``flip_byte`` model media-level damage (a snapshot whose
tail was lost after rename, a flipped bit) for the fallback paths.

:class:`SlowFile`/:class:`SlowOpener` are the *timing* hooks: every write
sleeps, modelling a saturated or degraded disk.  The WAL append sits on
the query execution path (run_query logs before returning), so a slowed
WAL inflates observed query latency — which is how the monitoring smoke
test drives the p99 latency alert to firing without touching the engine.
"""

import os
import time


class InjectedCrash(Exception):
    """The injected fault fired; everything after this write is lost."""


class FaultyFile(object):
    """File wrapper that dies after ``fail_after_bytes`` written bytes.

    ``fail_on_fsync=True`` instead lets every write through and raises at
    the first fsync — the crash-after-write-before-durable window.
    """

    def __init__(self, handle, fail_after_bytes=None, fail_on_fsync=False):
        self._handle = handle
        self.remaining = fail_after_bytes
        self.fail_on_fsync = fail_on_fsync
        self.crashed = False

    def write(self, data):
        if self.crashed:
            raise InjectedCrash("write after injected crash")
        if self.remaining is not None and len(data) > self.remaining:
            torn = data[:self.remaining]
            if torn:
                self._handle.write(torn)
            self._handle.flush()
            self.remaining = 0
            self.crashed = True
            raise InjectedCrash(
                "injected crash after %d torn byte(s)" % len(torn))
        if self.remaining is not None:
            self.remaining -= len(data)
        return self._handle.write(data)

    def flush(self):
        return self._handle.flush()

    def fileno(self):
        if self.fail_on_fsync:
            # os.fsync goes through fileno(); failing here models the
            # crash in the write-acknowledged-but-not-durable window.
            self.crashed = True
            raise InjectedCrash("injected crash at fsync")
        return self._handle.fileno()

    def close(self):
        return self._handle.close()

    def tell(self):
        return self._handle.tell()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class FaultyOpener(object):
    """Drop-in ``open`` that wraps the Nth opened file in a FaultyFile.

    ``fail_after_bytes`` budgets that file's writes; earlier and later
    opens pass through untouched, so a test can, say, let the WAL work and
    kill only the snapshot's temp file.
    """

    def __init__(self, fail_after_bytes, nth_open=1, fail_on_fsync=False):
        self.fail_after_bytes = fail_after_bytes
        self.nth_open = nth_open
        self.fail_on_fsync = fail_on_fsync
        self.opens = 0
        self.armed = True

    def __call__(self, path, mode="r", **kwargs):
        handle = open(path, mode, **kwargs)
        if not self.armed or "r" in mode:
            return handle
        self.opens += 1
        if self.opens != self.nth_open:
            return handle
        return FaultyFile(handle, fail_after_bytes=self.fail_after_bytes,
                          fail_on_fsync=self.fail_on_fsync)


class SlowFile(object):
    """File wrapper that sleeps before every write (a degraded disk).

    Unlike :class:`FaultyFile` nothing is ever lost or torn — only late.
    ``delay_writes`` bounds how many writes pay the penalty (None = all),
    so a test can inject a bounded spike and then let the service recover.

    ``gate`` (a callable returning the delay to apply *right now*, 0 for
    none) overrides the fixed delay; it is re-read on every write, which
    is what lets :class:`SlowOpener` arm/disarm live file handles.
    """

    def __init__(self, handle, delay_seconds=0.05, delay_writes=None,
                 gate=None):
        self._handle = handle
        self.delay_seconds = delay_seconds
        self.remaining_delays = delay_writes
        self.gate = gate
        self.delayed_writes = 0

    def write(self, data):
        if self.gate is not None:
            delay = self.gate()
        elif self.remaining_delays is None or self.remaining_delays > 0:
            delay = self.delay_seconds
            if self.remaining_delays is not None:
                self.remaining_delays -= 1
        else:
            delay = 0
        if delay:
            time.sleep(delay)
            self.delayed_writes += 1
        return self._handle.write(data)

    def flush(self):
        return self._handle.flush()

    def fileno(self):
        return self._handle.fileno()

    def close(self):
        return self._handle.close()

    def tell(self):
        return self._handle.tell()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class SlowOpener(object):
    """Drop-in ``open`` that wraps writable files in :class:`SlowFile`.

    ``armed`` can be flipped at runtime: the monitoring smoke test arms it
    mid-workload to create a latency spike, then disarms it and watches
    the alert recover.  The armed flag is consulted per write (via the
    :class:`SlowFile` gate), so disarming takes effect immediately even
    for the long-lived WAL handle.
    """

    def __init__(self, delay_seconds=0.05):
        self.delay_seconds = delay_seconds
        self.armed = False
        self.wrapped = 0

    def _gate(self):
        return self.delay_seconds if self.armed else 0

    def __call__(self, path, mode="r", **kwargs):
        handle = open(path, mode, **kwargs)
        if "r" in mode and "+" not in mode:
            return handle
        self.wrapped += 1
        return SlowFile(handle, gate=self._gate)


def corrupt_tail(path, byte_count):
    """Drop the last ``byte_count`` bytes of a file (post-rename media loss)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - byte_count))


def flip_byte(path, offset):
    """XOR one byte at ``offset`` (negative offsets count from the end)."""
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        position = offset if offset >= 0 else size + offset
        handle.seek(position)
        value = handle.read(1)
        handle.seek(position)
        handle.write(bytes([value[0] ^ 0xFF]))
