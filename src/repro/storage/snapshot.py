"""Snapshot checkpoints: the full platform state as one framed file.

A checkpoint writes ``snapshot-NNNNNN.snap`` into the data directory:

``file := magic length:u32 crc:u32 payload``

where ``payload`` is the JSON state document from
:mod:`repro.storage.serialize` plus the WAL position it covers
(``last_lsn``).  The write is crash-safe by construction: payload goes to
a ``.tmp`` file, is fsynced, and only then renamed into place (with a
directory fsync), so a crash mid-checkpoint leaves at most a stray ``.tmp``
that recovery ignores.

Recovery scans snapshots newest-first and loads the first one whose frame
validates; a truncated or bit-flipped snapshot (bad length or CRC) is
skipped with a warning and the previous checkpoint is used instead — the
WAL was only truncated *after* that newer snapshot succeeded, so falling
back never loses committed state.
"""

import json
import logging
import os
import re
import struct
import zlib

from repro.storage.serialize import json_default, json_object_hook

logger = logging.getLogger("repro.storage")

MAGIC = b"RPSNAP01"
_HEADER = struct.Struct("<II")
_NAME_RE = re.compile(r"^snapshot-(\d{6})\.snap$")


class SnapshotError(Exception):
    """No usable snapshot could be loaded (when one was required)."""


class SnapshotStore(object):
    """Reads and writes the data directory's checkpoint files.

    ``opener`` is the fault-injection point: the test harness substitutes
    a :class:`repro.storage.faults.FaultyOpener` to kill writes mid-file.
    """

    def __init__(self, directory, keep=2, opener=open):
        self.directory = str(directory)
        self.keep = keep
        self._opener = opener

    # -- enumeration -----------------------------------------------------------

    def snapshot_files(self):
        """(sequence, path) pairs, newest first."""
        found = []
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        for name in names:
            match = _NAME_RE.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        found.sort(reverse=True)
        return found

    def next_sequence(self):
        files = self.snapshot_files()
        return (files[0][0] + 1) if files else 1

    # -- writing ---------------------------------------------------------------

    def write(self, state):
        """Persist one state document; returns (path, bytes_written).

        The caller stamps ``state["last_lsn"]`` before calling.  Old
        snapshots beyond the retention count are pruned *after* the new one
        is durable.
        """
        os.makedirs(self.directory, exist_ok=True)
        payload = json.dumps(state, default=json_default, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        framed = MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        sequence = self.next_sequence()
        final_path = os.path.join(self.directory, "snapshot-%06d.snap" % sequence)
        tmp_path = final_path + ".tmp"
        handle = self._opener(tmp_path, "wb")
        try:
            handle.write(framed)
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            handle.close()
        os.rename(tmp_path, final_path)
        self._fsync_directory()
        self._prune()
        return final_path, len(framed)

    def _fsync_directory(self):
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _prune(self):
        for _sequence, path in self.snapshot_files()[self.keep:]:
            try:
                os.remove(path)
            except OSError:
                pass
        # Stray .tmp files are failed checkpoints; clear them too.
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return
        for name in names:
            if name.endswith(".snap.tmp"):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:
                    pass

    # -- loading ---------------------------------------------------------------

    def load_latest(self):
        """(state, path, skipped) for the newest valid snapshot.

        ``skipped`` lists paths that failed validation (truncated tail,
        CRC mismatch, bad magic) and were passed over.  Returns
        ``(None, None, skipped)`` when no snapshot validates — recovery
        then replays the WAL from genesis.
        """
        skipped = []
        for _sequence, path in self.snapshot_files():
            state = self._load_one(path)
            if state is not None:
                return state, path, skipped
            skipped.append(path)
        return None, None, skipped

    def _load_one(self, path):
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as error:
            logger.warning("%s: unreadable snapshot (%s)", path, error)
            return None
        prefix = len(MAGIC) + _HEADER.size
        if len(blob) < prefix or blob[:len(MAGIC)] != MAGIC:
            logger.warning("%s: bad snapshot magic/header; skipping", path)
            return None
        length, crc = _HEADER.unpack(blob[len(MAGIC):prefix])
        payload = blob[prefix:prefix + length]
        if len(payload) < length:
            logger.warning("%s: truncated snapshot (%d of %d payload bytes); "
                           "falling back", path, len(payload), length)
            return None
        if zlib.crc32(payload) != crc:
            logger.warning("%s: snapshot CRC mismatch; falling back", path)
            return None
        try:
            return json.loads(payload.decode("utf-8"),
                              object_hook=json_object_hook)
        except ValueError:
            logger.warning("%s: snapshot payload is not valid JSON; "
                           "falling back", path)
            return None
