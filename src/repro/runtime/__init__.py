"""The query runtime service (scheduler + cancellation + result cache).

``repro.runtime`` owns the lifecycle of every query: jobs move through a
validated state machine (QUEUED -> RUNNING -> SUCCEEDED/FAILED/CANCELLED/
TIMED_OUT), a bounded worker pool dispatches them fairly across users with
per-user admission control, cooperative cancellation stops work mid-scan,
and a versioned result cache serves repeated queries without execution.
See DESIGN.md's "Query runtime" section for the full picture.
"""

from repro.runtime.batch import BatchLane, mydb_dataset_name
from repro.runtime.cache import CacheStats, ResultCache, normalize_sql
from repro.runtime.cancellation import CancellationToken
from repro.runtime.job import (
    CANCELLED,
    FAILED,
    InvalidTransition,
    QUEUED,
    QueryJob,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    TIMED_OUT,
)
from repro.runtime.scheduler import QueryRuntime, RuntimeConfig

__all__ = [
    "BatchLane",
    "mydb_dataset_name",
    "CacheStats",
    "CancellationToken",
    "InvalidTransition",
    "QueryJob",
    "QueryRuntime",
    "ResultCache",
    "RuntimeConfig",
    "normalize_sql",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "TIMED_OUT",
    "TERMINAL_STATES",
]
