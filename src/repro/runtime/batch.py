"""The CasJobs-style batch lane: a second, slower queue beside the
interactive scheduler.

CasJobs' core observation ("Batch is back") is that a multi-tenant SQL
service needs **two lanes**: a fast interactive lane with tight timeouts,
and a batch lane where long-running queries queue FIFO, execute one at a
time, and land their results in the submitting user's personal scratch
space ("MyDB") instead of streaming them back.  This module is that second
lane for one platform/shard:

- :meth:`BatchLane.submit` admits a query, journals it durably
  (``batch_submit`` in the WAL via :class:`repro.core.batchlog.BatchJournal`)
  and returns a batch id immediately;
- clients poll :meth:`BatchLane.status` for queue **position** and an
  **ETA** extrapolated from recent batch runtimes;
- execution runs the query *without* the interactive statement timeout,
  then persists the rows as a ``mydb_<user>_<label>`` scratch dataset
  (``platform.save_result_table`` — itself WAL-logged, so the result
  survives a crash after completion);
- on construction the lane re-enqueues every journal entry that never
  reached a terminal state, which is how a worker restarted from
  snapshot+WAL picks up batches the crash interrupted.
"""

import threading
import time
from collections import deque

from repro.core import batchlog
from repro.core.sqlshare import _safe
from repro.errors import DatasetError
from repro.obs import events


def mydb_dataset_name(user, label):
    """The scratch-dataset name one batch lands in: stable per
    (user, label), so re-running a labelled batch overwrites it."""
    return "mydb_%s_%s" % (_safe(user).lower(), _safe(label).lower())


class BatchLane(object):
    """FIFO batch queue for one platform (one per shard)."""

    def __init__(self, platform, runtime=None, workers=1):
        self.platform = platform
        self.runtime = runtime
        #: 1 = one daemon batch worker (the CasJobs shape: batches are
        #: serialized per shard so they cannot starve the interactive
        #: pool).  0 = never spawn a thread; submissions either run inline
        #: (the synchronous test/server mode) or wait for :meth:`step`.
        self.workers = workers
        self._cond = threading.Condition()
        self._queue = deque()  # batch ids, FIFO
        self._running = None  # batch id currently executing, if any
        self._thread = None
        self._shutdown = False
        #: Recent batch execution times (seconds) feeding the ETA estimate.
        self._exec_times = deque(maxlen=32)
        metrics = platform.metrics
        self._submitted_total = metrics.counter(
            "repro_batch_submitted_total",
            "Batches admitted to the batch lane.")
        self._finished_total = metrics.counter(
            "repro_batch_finished_total",
            "Batches reaching a terminal state, labelled by outcome.")
        metrics.gauge_callback(
            "repro_batch_queue_depth",
            "Batches waiting in the batch lane (excluding the running one).",
            lambda: len(self._queue))
        # Resume: anything the journal admitted but never finished is work
        # a previous incarnation of this worker lost to a crash.
        resumed = [record["batch_id"]
                   for record in platform.batch_journal.pending()]
        self._queue.extend(resumed)
        if resumed:
            self._ensure_worker()

    # -- submission -----------------------------------------------------------

    def submit(self, user, sql, label=None, inline=None, timestamp=None):
        """Admit one batch; returns its status dict immediately.

        ``label`` names the scratch dataset (default: the batch id, so
        every unlabelled batch gets its own table).  ``inline=True`` runs
        the batch to completion in the calling thread — the default when
        the lane has no worker thread (``workers=0``), which is what the
        synchronous REST mode uses.
        """
        if inline is None:
            inline = self.workers <= 0
        if label is not None and not label.strip():
            raise DatasetError("batch label must be non-empty when given")
        with self.platform._state_lock:
            if self._shutdown:
                raise DatasetError("batch lane is shut down")
            moment = self.platform._now(timestamp)
            record = self.platform.batch_journal.submit(
                user, sql, None, timestamp=moment)
            # The id-derived default name needs the minted id; the record
            # is not yet published anywhere, so this fix-up cannot race.
            record["name"] = mydb_dataset_name(user, label or record["batch_id"])
            self.platform._durable(
                "batch_submit", user=user, sql=sql, name=record["name"],
                batch_id=record["batch_id"], timestamp=moment)
        self._submitted_total.inc()
        batch_id = record["batch_id"]
        events.emit("batch", user=user, fingerprint=events.fingerprint(sql),
                    batch_id=batch_id, state=batchlog.QUEUED,
                    result_dataset=record["name"])
        if inline:
            self._execute(batch_id)
        else:
            with self._cond:
                self._queue.append(batch_id)
                self._cond.notify()
            self._ensure_worker()
        return self.status(batch_id)

    # -- polling --------------------------------------------------------------

    def status(self, batch_id):
        """One batch's poll payload: state, queue position, ETA, result.

        Position counts batches ahead of this one (1 = next to run, the
        running batch included); ETA multiplies it by the rolling mean of
        recent batch runtimes.  Returns None for unknown ids.
        """
        record = self.platform.batch_journal.get(batch_id)
        if record is None:
            return None
        payload = {
            "batch_id": batch_id,
            "user": record["user"],
            "sql": record["sql"],
            "state": record["state"],
            "result_dataset": record["result_dataset"],
            "error": record["error"],
            "position": None,
            "eta_seconds": None,
        }
        if record["state"] not in batchlog.TERMINAL:
            with self._cond:
                running = self._running == batch_id
                try:
                    ahead = self._queue.index(batch_id)
                except ValueError:
                    ahead = None
                mean = (sum(self._exec_times) / len(self._exec_times)
                        if self._exec_times else None)
            if running:
                payload["state"] = "RUNNING"
                payload["position"] = 0
            elif ahead is not None:
                payload["position"] = ahead + 1
                if mean is not None:
                    payload["eta_seconds"] = round(mean * (ahead + 1), 6)
        return payload

    def stats(self):
        with self._cond:
            queued = len(self._queue)
            running = self._running
            mean = (sum(self._exec_times) / len(self._exec_times)
                    if self._exec_times else None)
        counts = {"SUCCEEDED": 0, "FAILED": 0, "QUEUED": 0}
        journal_state = self.platform.batch_journal.dump_state()
        for record in journal_state["entries"]:
            counts[record["state"]] = counts.get(record["state"], 0) + 1
        return {
            "queued": queued,
            "running": running,
            "finished": {state: count for state, count in counts.items()
                         if state in batchlog.TERMINAL},
            "total": len(self.platform.batch_journal),
            "mean_exec_seconds": None if mean is None else round(mean, 6),
            "workers": self.workers,
        }

    # -- execution ------------------------------------------------------------

    def step(self):
        """Run the next queued batch in the calling thread (the manual
        crank tests and the workerless mode use); returns its id or None."""
        with self._cond:
            if not self._queue or self._running is not None:
                return None
            batch_id = self._queue.popleft()
            self._running = batch_id
        try:
            self._execute(batch_id, claimed=True)
        finally:
            with self._cond:
                self._running = None
        return batch_id

    def _ensure_worker(self):
        if self.workers <= 0:
            return
        with self._cond:
            if self._shutdown or self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._worker_loop, name="batch-lane", daemon=True)
            self._thread.start()

    def _worker_loop(self):
        while True:
            with self._cond:
                while not self._queue:
                    if self._shutdown:
                        return
                    self._cond.wait(0.1)
                batch_id = self._queue.popleft()
                self._running = batch_id
            try:
                self._execute(batch_id, claimed=True)
            finally:
                with self._cond:
                    self._running = None

    def _execute(self, batch_id, claimed=False):
        """Run one batch to a terminal state (never raises).

        Deliberately bypasses the interactive statement timeout — the
        batch lane exists precisely for queries too slow for it.  The
        query-log record still flows through ``run_query`` with
        ``source="batch"`` so the workload analyses can separate lanes.
        """
        record = self.platform.batch_journal.get(batch_id)
        if record is None or record["state"] in batchlog.TERMINAL:
            return
        if not claimed:
            with self._cond:
                self._running = batch_id
        events.emit("batch", user=record["user"],
                    fingerprint=events.fingerprint(record["sql"]),
                    batch_id=batch_id, state="RUNNING")
        started = time.monotonic()
        try:
            result = self.platform.run_query(
                record["user"], record["sql"], source="batch",
                log_extra={"outcome": "SUCCEEDED"})
            schema = self.platform.db.query_schema(record["sql"])
            self.platform.save_result_table(
                record["user"], record["name"], schema, result.rows)
        except Exception as exc:
            with self.platform._state_lock:
                self.platform.batch_journal.finish(
                    batch_id, batchlog.FAILED, error=str(exc))
                self.platform._durable(
                    "batch_done", batch_id=batch_id, state=batchlog.FAILED,
                    error=str(exc), result_dataset=None)
            self._finished_total.labels(outcome=batchlog.FAILED).inc()
            events.emit("batch", user=record["user"],
                        fingerprint=events.fingerprint(record["sql"]),
                        batch_id=batch_id, state=batchlog.FAILED,
                        error=str(exc))
        else:
            with self.platform._state_lock:
                self.platform.batch_journal.finish(
                    batch_id, batchlog.SUCCEEDED,
                    result_dataset=record["name"])
                self.platform._durable(
                    "batch_done", batch_id=batch_id,
                    state=batchlog.SUCCEEDED, error=None,
                    result_dataset=record["name"])
            self._finished_total.labels(outcome=batchlog.SUCCEEDED).inc()
            events.emit("batch", user=record["user"],
                        fingerprint=events.fingerprint(record["sql"]),
                        batch_id=batch_id, state=batchlog.SUCCEEDED,
                        result_dataset=record["name"])
        finally:
            self._exec_times.append(time.monotonic() - started)
            if not claimed:
                with self._cond:
                    if self._running == batch_id:
                        self._running = None

    # -- shutdown -------------------------------------------------------------

    def shutdown(self):
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=1.0)
