"""The versioned result cache (§6.3 made real).

The paper's reuse analysis estimates that most workload cost is recoverable
by caching derived results; this module realizes that in the runtime.  An
entry is keyed by the *normalized* SQL text (canonical rendering of the
parsed statement, so whitespace/keyword-case variants unify) and stamped
with the **version vector** of every table and view the plan reaches —
``((name, version), ...)`` sorted, with versions maintained by the catalog.

Correctness does not depend on eager invalidation: a lookup only hits when
the stored vector exactly equals the *current* vector, so any upload,
append, INSERT, ALTER, view redefinition or drop that bumped a referenced
object's version makes the entry unservable (it is evicted as *stale* on
the next probe).  Eager invalidation through the view DAG
(:meth:`ResultCache.invalidate`) exists on top of that to release memory
promptly when a dataset and its dependents change.
"""

import threading
from collections import OrderedDict


def normalize_sql(sql, statement=None):
    """Canonical cache-key text for a statement.

    Preferably the parser round-trip rendering (unifies whitespace, keyword
    case and identifier quoting); falls back to whitespace-collapsed
    lower-casing when the AST cannot be rendered.
    """
    if statement is not None:
        try:
            from repro.engine.sql_format import render_statement

            return render_statement(statement)
        except Exception:
            pass
    return " ".join(sql.split()).lower()


class CacheStats(object):
    """Counters exposed through ``/api/v1/runtime/stats`` and the bench."""

    __slots__ = ("hits", "misses", "stale_evictions", "capacity_evictions",
                 "invalidations", "stores", "oversize_skips")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        #: Entries evicted because their version vector no longer matched
        #: the catalog at probe time (never served — zero stale results).
        self.stale_evictions = 0
        self.capacity_evictions = 0
        self.invalidations = 0
        self.stores = 0
        self.oversize_skips = 0

    @property
    def hit_rate(self):
        probes = self.hits + self.misses
        return self.hits / float(probes) if probes else 0.0

    def to_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "stale_evictions": self.stale_evictions,
            "capacity_evictions": self.capacity_evictions,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "oversize_skips": self.oversize_skips,
        }


class _Entry(object):
    __slots__ = ("vector", "columns", "rows", "plan", "info")

    def __init__(self, vector, columns, rows, plan=None, info=None):
        self.vector = vector
        self.columns = columns
        self.rows = rows
        #: The planned root + PlanInfo from the original execution, so a
        #: hit skips analysis and planning entirely while still returning
        #: a QueryResult with full plan metadata.  Safe to reuse while the
        #: vector validates: a version match means no referenced object
        #: was dropped, recreated, altered or written since.
        self.plan = plan
        self.info = info


class ResultCache(object):
    """Bounded LRU result cache keyed by normalized SQL + version vector."""

    def __init__(self, capacity=256, max_rows_per_entry=50000):
        self.capacity = capacity
        self.max_rows_per_entry = max_rows_per_entry
        self._entries = OrderedDict()  # normalized sql -> _Entry
        #: raw sql text -> normalized key.  Normalization is deterministic,
        #: so this memo lets a repeat submission skip parsing entirely: the
        #: engine probes :meth:`memoized_key` before touching the parser.
        self._key_memo = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def memoized_key(self, sql):
        """The normalized key for raw text seen before, else None."""
        with self._lock:
            key = self._key_memo.get(sql)
            if key is not None:
                self._key_memo.move_to_end(sql)
            return key

    def key_for(self, sql, statement=None):
        with self._lock:
            key = self._key_memo.get(sql)
        if key is None:
            key = normalize_sql(sql, statement)
            with self._lock:
                self._key_memo[sql] = key
                while len(self._key_memo) > 4 * self.capacity:
                    self._key_memo.popitem(last=False)
        return key

    def lookup(self, key, version_of):
        """Return the entry on a valid hit, else None.

        ``version_of(name)`` maps a referenced object to its *current*
        catalog version; the entry is valid only when every ``(name,
        version)`` pair stamped at store time still matches.  A stored
        entry that no longer validates is *stale*: it is evicted, counted,
        and never served.  Validating against the live catalog (rather
        than a caller-computed vector) is what lets hits skip planning —
        the entry itself remembers which objects its plan reached.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if any(version_of(name) != version
                   for name, version in entry.vector):
                del self._entries[key]
                self.stats.stale_evictions += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def store(self, key, vector, columns, rows, plan=None, info=None):
        """Admit a result (LRU-evicting over capacity; oversize skipped)."""
        if len(rows) > self.max_rows_per_entry:
            with self._lock:
                self.stats.oversize_skips += 1
            return
        with self._lock:
            self._entries[key] = _Entry(vector, list(columns), rows,
                                        plan=plan, info=info)
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.capacity_evictions += 1

    def invalidate(self, names):
        """Eagerly drop every entry whose vector mentions any of ``names``.

        Callers pass the changed dataset *plus its transitive dependents*
        (the view DAG walk lives in the platform, which knows the graph);
        because vectors also contain every base table and intermediate view
        the plan reached, a bare name is usually enough — the DAG walk is
        belt-and-braces for entries whose plan predated a redefinition.
        """
        lowered = {name.lower() for name in names}
        dropped = 0
        with self._lock:
            for key in [
                key for key, entry in self._entries.items()
                if any(name in lowered for name, _version in entry.vector)
            ]:
                del self._entries[key]
                dropped += 1
            self.stats.invalidations += dropped
        return dropped

    def forget(self, key):
        """Drop one normalized key's entry (counted as an invalidation).

        The adaptive controller uses this to force a fingerprint's next
        identical submission to re-plan instead of hitting the cache."""
        with self._lock:
            dropped = self._entries.pop(key, None) is not None
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def forget_sql(self, sql):
        """`forget` addressed by raw statement text."""
        with self._lock:
            key = self._key_memo.get(sql)
        if key is None:
            key = normalize_sql(sql)
        return self.forget(key)

    def audit(self, version_of):
        """Count cached entries whose vector is out of date.

        ``version_of(name)`` returns the current catalog version.  Used by
        the throughput bench to prove the zero-stale-results property: stale
        entries may *sit* in the cache (they are lazily evicted) but a probe
        never serves one.
        """
        with self._lock:
            return sum(
                1
                for entry in self._entries.values()
                if any(version_of(name) != version
                       for name, version in entry.vector)
            )

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)
