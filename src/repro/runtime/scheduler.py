"""The query runtime service: worker pool, admission control, fairness.

This is the layer the paper's deployed system delegated to its job queue
(§3.3: submit returns an identifier immediately; clients poll) and that
CasJobs/workload-management systems show a multi-tenant SQL service needs:

- a **bounded worker pool** (no more thread-per-query);
- **per-user admission control**: at most ``per_user_queue_depth`` queued
  jobs per user, at most ``per_user_max_concurrent`` running;
- **fair round-robin dispatch** across users, so one user's burst cannot
  starve everyone else's interactive queries;
- a configurable **statement timeout** enforced through the cooperative
  :class:`~repro.runtime.cancellation.CancellationToken` the engine polls
  mid-scan, so TIMED_OUT/CANCELLED jobs actually release their worker;
- the **versioned result cache** shared with the platform, so repeated
  queries are served without execution (and never stale — see cache.py).
"""

import itertools
import threading
import time
from collections import OrderedDict, deque

from repro.errors import AdmissionError, QueryCancelled, QueryTimeout, classify_error
from repro.obs import events
from repro.obs.metrics import MetricsRegistry, NullRegistry, buckets_up_to
from repro.obs.monitor import ContinuousMonitor
from repro.obs.querystore import QueryStore
from repro.runtime import job as jobmod
from repro.runtime.cache import ResultCache
from repro.runtime.job import QueryJob


class RuntimeConfig(object):
    """Tunables for one :class:`QueryRuntime` instance."""

    def __init__(self, max_workers=4, per_user_max_concurrent=2,
                 per_user_queue_depth=16, statement_timeout=30.0,
                 cache_enabled=True, cache_entries=256,
                 cache_max_rows=50000, lint_submissions=True,
                 completed_jobs_retained=10000, tracing_enabled=True,
                 metrics_enabled=True, querystore_enabled=True,
                 querystore_entries=512, monitor_enabled=False,
                 monitor_interval=5.0, histogram_max_seconds=None,
                 batch_workers=1, events_enabled=None,
                 adaptive_enabled=True, adaptive_q_error_bound=4.0,
                 adaptive_max_replans=3):
        #: Worker threads.  0 means no threads are ever spawned: submissions
        #: run inline in the caller (the tests' synchronous mode) or wait in
        #: the queue for explicit :meth:`QueryRuntime.step` calls.
        self.max_workers = max_workers
        self.per_user_max_concurrent = per_user_max_concurrent
        self.per_user_queue_depth = per_user_queue_depth
        #: Seconds before a running statement times out (0/None disables).
        self.statement_timeout = statement_timeout
        self.cache_enabled = cache_enabled
        self.cache_entries = cache_entries
        self.cache_max_rows = cache_max_rows
        #: Run the lint/semantic checker on every submission and attach the
        #: diagnostics to the job record.
        self.lint_submissions = lint_submissions
        #: Terminal jobs kept for status polling before being forgotten.
        self.completed_jobs_retained = completed_jobs_retained
        #: Record per-job lifecycle spans (queued / run / engine phases).
        self.tracing_enabled = tracing_enabled
        #: Register scheduler/cache/engine instruments on the platform's
        #: metrics registry.  Disabling swaps in a NullRegistry — the
        #: uninstrumented baseline the overhead benchmark compares against.
        self.metrics_enabled = metrics_enabled
        #: Record per-fingerprint runtime history (Query Store) from job
        #: completions.  Follows metrics_enabled: the uninstrumented
        #: baseline must not pay for it either.
        self.querystore_enabled = querystore_enabled
        self.querystore_entries = querystore_entries
        #: Run the continuous monitor (metrics sampler + alert rules).
        #: Off by default for library use; ``repro serve`` turns it on.
        self.monitor_enabled = monitor_enabled
        self.monitor_interval = monitor_interval
        #: Extend histogram buckets up to this bound (seconds).  None keeps
        #: DEFAULT_BUCKETS (tops out at 10 s — under-resolves statement-
        #: timeout-bound queries when the timeout is raised).
        self.histogram_max_seconds = histogram_max_seconds
        #: Emit structured lifecycle events (submit / cache hit-miss /
        #: finish) into the process event log (repro.obs.events).  None
        #: follows metrics_enabled, so the uninstrumented benchmark
        #: baseline pays for neither.
        self.events_enabled = (metrics_enabled if events_enabled is None
                               else events_enabled)
        #: Batch-lane worker threads (CasJobs lane; see runtime/batch.py).
        #: Effectively capped at 1 — batches serialize per shard.  When the
        #: interactive pool is workerless (max_workers=0) the lane is
        #: workerless too, and batch submissions run inline.
        self.batch_workers = batch_workers
        #: Close the observation -> planning loop (repro.adaptive): harvest
        #: observed cardinalities from profiled runs, schedule probes when
        #: the root q-error exceeds the bound or the Query Store issues a
        #: regression verdict, and re-plan with feedback.  Off for replay
        #: experiments that must show the *uncorrected* behavior (e.g.
        #: analysis/regressions.py plants a regression on purpose).
        self.adaptive_enabled = adaptive_enabled
        self.adaptive_q_error_bound = adaptive_q_error_bound
        self.adaptive_max_replans = adaptive_max_replans

    def to_dict(self):
        return dict(self.__dict__)


class QueryRuntime(object):
    """Owns the lifecycle of every query executed against a platform."""

    def __init__(self, platform, config=None):
        self.platform = platform
        self.config = config or RuntimeConfig()
        if self.config.cache_enabled:
            # Share one cache with the platform so the web-UI path
            # (platform.run_query) and the scheduler path hit the same
            # entries and the platform's mutators can invalidate eagerly.
            if getattr(platform, "result_cache", None) is None:
                platform.result_cache = ResultCache(
                    capacity=self.config.cache_entries,
                    max_rows_per_entry=self.config.cache_max_rows,
                )
            self.cache = platform.result_cache
        else:
            self.cache = None
        self._jobs = OrderedDict()  # job_id -> QueryJob (bounded retention)
        self._ids = itertools.count(1)
        self._queues = {}  # user -> deque of QUEUED jobs
        self._rr = deque()  # round-robin rotation of users with queued jobs
        self._queued = {}  # user -> queued count
        self._running = {}  # user -> running count
        self._finished = {}  # terminal state -> count
        self._cond = threading.Condition()
        self._workers = []
        self._shutdown = False
        # -- observability wiring.  The registry lives on the platform so
        # the engine's phase histograms and run_query's failure taxonomy
        # share it; a runtime configured with metrics_enabled=False swaps
        # in a NullRegistry (every instrument call a no-op) and detaches
        # the engine's histograms, giving the benchmark a true
        # uninstrumented baseline.
        if self.config.metrics_enabled:
            registry = getattr(platform, "metrics", None)
            if registry is None or isinstance(registry, NullRegistry):
                registry = MetricsRegistry()
            if self.config.histogram_max_seconds:
                registry.default_buckets = buckets_up_to(
                    self.config.histogram_max_seconds)
            platform.metrics = registry
            platform.db.metrics = registry
            self.metrics = registry
        else:
            self.metrics = NullRegistry()
            platform.metrics = self.metrics
            platform.db.metrics = None
        self._install_instruments()
        # -- continuous monitoring.  The Query Store lives on the platform
        # (like the result cache) so checkpoints can persist it and a
        # successor runtime inherits the accumulated baselines; the monitor
        # (sampler + alerts) belongs to this runtime and follows its
        # lifecycle.  Both follow metrics_enabled so the uninstrumented
        # benchmark baseline pays for neither.
        if self.config.querystore_enabled and self.config.metrics_enabled:
            store = getattr(platform, "query_store", None)
            if store is None:
                store = QueryStore(capacity=self.config.querystore_entries)
                platform.query_store = store
            self.query_store = store
        else:
            self.query_store = None
        # -- adaptive optimization (repro.adaptive).  The feedback store
        # lives on the platform (like the Query Store) so checkpoints can
        # persist it and a successor runtime inherits what was learned; it
        # is also attached to the engine as the duck-typed ``db.feedback``
        # hook the planner consults.  The controller belongs to this
        # runtime — it needs this runtime's cache and counters.
        if self.config.adaptive_enabled:
            from repro.adaptive import AdaptiveController, CardinalityFeedbackStore

            feedback = getattr(platform, "feedback_store", None)
            if feedback is None:
                feedback = CardinalityFeedbackStore()
                platform.feedback_store = feedback
            platform.db.feedback = feedback
            self.feedback_store = feedback
            self.adaptive = AdaptiveController(
                feedback, cache=self.cache, query_store=self.query_store,
                metrics=self.metrics,
                q_error_bound=self.config.adaptive_q_error_bound,
                max_replans=self.config.adaptive_max_replans,
                events_enabled=self.config.events_enabled)
        else:
            self.feedback_store = None
            self.adaptive = None
            platform.db.feedback = None
        if self.config.monitor_enabled and self.config.metrics_enabled:
            self.monitor = ContinuousMonitor(
                self.metrics, interval=self.config.monitor_interval)
            if self.config.max_workers > 0:
                self.monitor.start()
        else:
            self.monitor = None
        #: sql text -> lint diagnostics.  Linting parses the statement, so
        #: repeat submissions (the workload's dominant pattern, §6.3) would
        #: otherwise pay a full parse before even reaching the result
        #: cache's no-parse fast path.  Diagnostics are advisory, so a memo
        #: keyed on text alone is acceptable.  Guarded by its own lock —
        #: never by ``_cond`` — so a memo miss's full parse+analyze cannot
        #: stall dispatch (selfcheck SELFCHECK003 found exactly that).
        self._lint_memo = {}
        self._lint_lock = threading.Lock()
        # -- the batch lane (CasJobs-style second queue).  Constructed last
        # so it can resume journalled-but-unfinished batches from a
        # recovered platform through the fully wired runtime.
        from repro.runtime.batch import BatchLane

        self.batch = BatchLane(
            platform, runtime=self,
            workers=(self.config.batch_workers
                     if self.config.max_workers > 0 else 0))

    def _install_instruments(self):
        """Register the scheduler's named instruments.

        Counters/histograms are get-or-create (shared with a previous
        runtime on the same platform); callback-backed instruments read
        live state at scrape time and are re-pointed at this runtime.
        """
        metrics = self.metrics
        self._jobs_submitted = metrics.counter(
            "repro_scheduler_jobs_submitted_total",
            "Queries admitted to the runtime (queued or inline).")
        self._admission_rejections = metrics.counter(
            "repro_scheduler_admission_rejections_total",
            "Submissions refused by per-user admission control.")
        self._jobs_finished = metrics.counter(
            "repro_scheduler_jobs_finished_total",
            "Jobs reaching a terminal state, labelled by outcome.")
        self._worker_busy = metrics.counter(
            "repro_scheduler_worker_busy_seconds_total",
            "Total seconds workers spent executing jobs.")
        self._queue_hist = metrics.histogram(
            "repro_scheduler_queue_seconds",
            "Time from submission to dispatch.")
        self._exec_hist = metrics.histogram(
            "repro_scheduler_exec_seconds",
            "Time from dispatch to terminal state.")
        # Registering the plan verifier's counter up front (get-or-create
        # shares it with the engine's increments) puts it in every registry
        # snapshot at 0, so the monitor's sampler has the series from the
        # first tick instead of from the first violation.
        metrics.counter(
            "check_plan_violations_total",
            "Plans rejected or flagged by the static plan verifier.")
        metrics.gauge_callback(
            "repro_scheduler_queue_depth",
            "Jobs currently waiting in per-user queues.",
            lambda: sum(self._queued.values()))
        metrics.gauge_callback(
            "repro_scheduler_running",
            "Jobs currently executing on workers.",
            lambda: sum(self._running.values()))
        metrics.gauge_callback(
            "repro_scheduler_workers",
            "Worker threads started.",
            lambda: len(self._workers))
        metrics.gauge_callback(
            "repro_scheduler_worker_utilization",
            "Fraction of the worker pool currently busy.",
            lambda: (sum(self._running.values())
                     / float(max(len(self._workers), 1))))
        if self.cache is not None:
            stats = self.cache.stats
            metrics.counter_callback(
                "repro_cache_hits_total",
                "Result-cache probes served without execution.",
                lambda: stats.hits)
            metrics.counter_callback(
                "repro_cache_misses_total",
                "Result-cache probes that fell through to execution.",
                lambda: stats.misses)
            # hits + misses as one series, so the hit-rate alert rule can be
            # a single division over family sums.
            metrics.counter_callback(
                "repro_cache_probes_total",
                "Result-cache probes (hits + misses).",
                lambda: stats.hits + stats.misses)
            metrics.counter_callback(
                "repro_cache_stale_evictions_total",
                "Entries evicted at probe time on version-vector mismatch.",
                lambda: stats.stale_evictions)
            metrics.counter_callback(
                "repro_cache_invalidations_total",
                "Entries dropped eagerly by catalog mutations.",
                lambda: stats.invalidations)
            metrics.counter_callback(
                "repro_cache_stores_total",
                "Results admitted into the cache after execution.",
                lambda: stats.stores)
            metrics.gauge_callback(
                "repro_cache_entries",
                "Live entries in the result cache.",
                lambda: len(self.cache))

    # -- submission -----------------------------------------------------------

    def submit(self, user, sql, source="rest", timeout=None, inline=None,
               profile=False, cross_shard=False, trace_context=None):
        """Admit a query; returns its :class:`QueryJob` immediately.

        ``inline=True`` executes synchronously in the caller's thread
        (bypassing the queue but not the timeout/cache machinery); the
        default is inline when the pool has no workers.  ``profile=True``
        records per-operator actuals into ``job.profile_data`` (the
        execution bypasses the result cache so actuals are real).
        ``cross_shard=True`` marks the job as having been routed through
        the cluster's fetch-and-local-join fallback; the marker lands in
        the job payload and its query-log outcome record.
        ``trace_context`` is a propagated
        :class:`~repro.obs.tracing.TraceContext`: the job's trace adopts
        the cluster-wide trace id (and remote parent span), so its spans
        stitch into the coordinator's distributed trace.  Raises
        :class:`AdmissionError` when the user's queue is full.
        """
        if inline is None:
            inline = self.config.max_workers <= 0
        # Lint BEFORE taking the scheduler lock: a memo miss runs a full
        # parse + semantic pass, and holding _cond across it would stall
        # every worker wake-up and dispatch for the duration.  Diagnostics
        # are advisory, so computing them pre-admission is harmless even if
        # the submission is then refused.
        diagnostics = None
        lint_span = None
        if self.config.lint_submissions:
            lint_started = time.monotonic()
            diagnostics = self._lint(sql)
            lint_span = (lint_started, time.monotonic())
        # Adaptive probe upgrade: when the controller wants fresh actuals
        # for this fingerprint, run this submission profiled (profiled runs
        # bypass the result cache, so harvested cardinalities are real).
        if (not profile and self.adaptive is not None
                and self.adaptive.wants_probe(sql)):
            profile = True
        with self._cond:
            if self._shutdown:
                raise AdmissionError("runtime is shut down")
            if not inline and self._queued.get(user, 0) >= self.config.per_user_queue_depth:
                self._admission_rejections.inc()
                raise AdmissionError(
                    "user %r already has %d queries queued (limit %d)"
                    % (user, self._queued[user], self.config.per_user_queue_depth)
                )
            job = QueryJob("q%06d" % next(self._ids), user, sql,
                           source=source, timeout=timeout, profile=profile,
                           tracing=self.config.tracing_enabled,
                           cross_shard=cross_shard,
                           trace_context=trace_context)
            self._jobs_submitted.inc()
            if diagnostics is not None:
                job.diagnostics = diagnostics
                if job.trace is not None:
                    job.trace.add_span("lint", lint_span[0], lint_span[1],
                                       findings=len(diagnostics))
            self._jobs[job.job_id] = job
            self._prune_terminal_locked()
            if not inline:
                queue = self._queues.get(user)
                if queue is None:
                    queue = self._queues[user] = deque()
                    self._rr.append(user)
                queue.append(job)
                self._queued[user] = self._queued.get(user, 0) + 1
                self._cond.notify()
        # Outside the scheduler lock: the event write may touch a file.
        if self.config.events_enabled:
            events.emit(
                "submit",
                trace_id=job.trace.trace_id if job.trace is not None else None,
                user=user, fingerprint=events.fingerprint(sql),
                job_id=job.job_id, source=source,
                cross_shard=cross_shard or None)
        if inline:
            self._start_job(job)
        else:
            self._ensure_workers()
        return job

    def _lint(self, sql):
        with self._lint_lock:
            diagnostics = self._lint_memo.get(sql)
        if diagnostics is None:
            # The expensive part (full parse + analyze) runs unlocked;
            # concurrent misses on the same text do duplicate work at
            # worst, never block each other.
            try:
                diagnostics = [
                    d.to_dict() for d in self.platform.db.check(sql, lint=True)
                ]
            except Exception:
                diagnostics = []  # advisory; never block submission
            with self._lint_lock:
                if len(self._lint_memo) > 4096:
                    self._lint_memo.clear()
                self._lint_memo[sql] = diagnostics
        return diagnostics

    # -- lookup / cancellation ------------------------------------------------

    def get(self, job_id):
        with self._cond:
            return self._jobs.get(job_id)

    def cancel(self, job_id, reason="cancelled by client"):
        """Cancel a job: dequeue it if still QUEUED, or flag its token so
        the executing worker stops at the next cooperative check.  Returns
        the job (None if unknown); terminal jobs are left untouched.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == jobmod.QUEUED:
                queue = self._queues.get(job.user)
                if queue is not None and job in queue:
                    queue.remove(job)
                    self._queued[job.user] -= 1
                    if not queue:
                        del self._queues[job.user]
                        self._rr.remove(job.user)
                job.token.cancel(reason)
                job.error_class = "cancelled"
                job.transition(jobmod.CANCELLED, error=reason,
                               before_notify=self._log_outcome)
                self._finished[job.state] = self._finished.get(job.state, 0) + 1
                # Queue cancellations never reach run_query, so count the
                # terminal outcome (and taxonomy class) here.
                self._jobs_finished.labels(outcome=job.state).inc()
                self.metrics.counter(
                    "repro_queries_failed_total",
                    "Failed queries by error taxonomy class.",
                ).labels(error_class="cancelled").inc()
                self._record_querystore(job)
            elif job.state == jobmod.RUNNING:
                job.token.cancel(reason)
            return job

    # -- execution ------------------------------------------------------------

    def _ensure_workers(self):
        with self._cond:
            if self._shutdown:
                return
            while len(self._workers) < self.config.max_workers:
                worker = threading.Thread(
                    target=self._worker_loop,
                    name="query-runtime-%d" % len(self._workers),
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()

    def _worker_loop(self):
        while True:
            with self._cond:
                job = self._next_job_locked()
                while job is None:
                    if self._shutdown:
                        return
                    self._cond.wait(0.1)
                    job = self._next_job_locked()
                job.transition(jobmod.RUNNING)
                self._running[job.user] = self._running.get(job.user, 0) + 1
            self._run_job(job)

    def step(self):
        """Dispatch and run one queued job in the calling thread.

        Returns the job, or None when nothing is dispatchable.  This is the
        scheduler's manual crank: tests use it to observe dispatch order
        deterministically and the serial replay mode drains through it.
        """
        with self._cond:
            job = self._next_job_locked()
            if job is None:
                return None
            job.transition(jobmod.RUNNING)
            self._running[job.user] = self._running.get(job.user, 0) + 1
        self._run_job(job)
        return job

    def _start_job(self, job):
        with self._cond:
            job.transition(jobmod.RUNNING)
            self._running[job.user] = self._running.get(job.user, 0) + 1
        self._run_job(job)

    def _next_job_locked(self):
        """Fair dispatch: rotate through users, skipping any at their
        concurrency limit; within a user, FIFO."""
        for _ in range(len(self._rr)):
            user = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(user)
            if not queue:
                self._rr.remove(user)
                self._queues.pop(user, None)
                continue
            if self._running.get(user, 0) >= self.config.per_user_max_concurrent:
                continue
            job = queue.popleft()
            self._queued[user] -= 1
            if not queue:
                del self._queues[user]
                self._rr.remove(user)
            return job
        return None

    def _run_job(self, job):
        timeout = job.timeout if job.timeout is not None else self.config.statement_timeout
        if timeout:
            job.token.set_deadline(timeout)
        log_extra = {
            "outcome": jobmod.SUCCEEDED,
            "queue_seconds": round(job.queue_seconds, 6),
        }
        if job.cross_shard:
            log_extra["cross_shard"] = True
        try:
            result = self.platform.run_query(
                job.user, job.sql, source=job.source,
                cancellation=job.token,
                log_extra=log_extra,
                trace=job.trace, profile=job.profile,
            )
        except QueryTimeout as exc:
            job.error_class = classify_error(exc)
            job.transition(jobmod.TIMED_OUT, error=str(exc),
                           before_notify=self._log_outcome)
        except QueryCancelled as exc:
            job.error_class = classify_error(exc)
            job.transition(jobmod.CANCELLED, error=str(exc),
                           before_notify=self._log_outcome)
        except Exception as exc:
            job.error_class = classify_error(exc)
            job.transition(jobmod.FAILED, error=str(exc),
                           before_notify=self._log_outcome)
        else:
            job.result = result
            job.cache_hit = result.cache_hit
            job.profile_data = result.profile
            job.transition(jobmod.SUCCEEDED)
        finally:
            # Failure/cancel outcomes are logged by the ``before_notify``
            # hook inside the terminal transition, so waiters released by
            # ``job.wait()`` always observe the query-log record.
            self._queue_hist.observe(job.queue_seconds)
            self._exec_hist.observe(job.exec_seconds)
            self._worker_busy.inc(job.exec_seconds)
            self._jobs_finished.labels(outcome=job.state).inc()
            fingerprint = self._record_querystore(job)
            if self.adaptive is not None:
                self.adaptive.after_job(job, fingerprint=fingerprint)
            if self.config.events_enabled:
                trace_id = (job.trace.trace_id
                            if job.trace is not None else None)
                if job.state == jobmod.SUCCEEDED and self.cache is not None:
                    events.emit(
                        "cache_hit" if job.cache_hit else "cache_miss",
                        trace_id=trace_id, user=job.user,
                        fingerprint=events.fingerprint(job.sql),
                        job_id=job.job_id)
                events.emit(
                    "finish", trace_id=trace_id, user=job.user,
                    fingerprint=events.fingerprint(job.sql),
                    job_id=job.job_id, outcome=job.state,
                    exec_ms=round(job.exec_seconds * 1000.0, 3),
                    cross_shard=job.cross_shard or None)
            with self._cond:
                self._running[job.user] = self._running.get(job.user, 1) - 1
                self._finished[job.state] = self._finished.get(job.state, 0) + 1
                self._cond.notify_all()

    def _record_querystore(self, job):
        """Fold one terminal job into the per-fingerprint Query Store.

        Returns the entry's fingerprint (None when the store is off or the
        record failed) — the adaptive controller uses it for regression-
        verdict lookups without re-normalizing the text."""
        store = self.query_store
        if store is None:
            return None
        try:
            normalized = None
            if self.cache is not None:
                # Reuse the cache's memoized parser-rendered key so repeat
                # submissions never re-normalize on the completion path.
                normalized = self.cache.memoized_key(job.sql)
            result = job.result
            return store.record(
                job.sql,
                plan=result.plan if result is not None else None,
                seconds=job.exec_seconds,
                rows=len(result.rows) if result is not None else 0,
                error=job.state != jobmod.SUCCEEDED,
                cache_hit=bool(job.cache_hit),
                normalized=normalized,
            )
        except Exception:
            return None  # history is advisory; never take the scheduler down

    def _log_outcome(self, job):
        """Append the structured failure/cancel record to the query log
        (successes are recorded by ``run_query`` itself)."""
        try:
            self.platform.log.record(
                job.user, job.sql, error=job.error or job.state,
                source=job.source, **job.timing_record()
            )
        except Exception:
            pass  # the log must never take the scheduler down

    # -- waiting / shutdown ---------------------------------------------------

    def drain(self, jobs=None, timeout=None):
        """Block until the given jobs (default: all known) are terminal."""
        if jobs is None:
            with self._cond:
                jobs = list(self._jobs.values())
        for job in jobs:
            job.wait(timeout)
        return jobs

    def shutdown(self):
        if self.monitor is not None:
            self.monitor.stop()
        self.batch.shutdown()
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=1.0)

    def _prune_terminal_locked(self):
        keep = self.config.completed_jobs_retained
        excess = len(self._jobs) - keep
        if excess <= 0:
            return
        # Drop the oldest terminal jobs.  Only the front of the (insertion-
        # ordered) dict is examined — a bounded window, so each submission
        # pays O(1) amortized rather than rescanning all retained jobs.
        for job_id in list(itertools.islice(self._jobs, 2 * excess)):
            if excess <= 0:
                break
            if self._jobs[job_id].done:
                del self._jobs[job_id]
                excess -= 1

    # -- introspection --------------------------------------------------------

    def stats(self):
        # One consistent snapshot: queue/running/finished counts and the
        # cache's counters are all read under the scheduler lock, so a
        # concurrent job finishing cannot skew e.g. "running" against
        # "finished" within a single payload.
        with self._cond:
            per_user = {}
            for user, count in self._queued.items():
                if count:
                    per_user.setdefault(user, {})["queued"] = count
            for user, count in self._running.items():
                if count:
                    per_user.setdefault(user, {})["running"] = count
            payload = {
                "workers": len(self._workers),
                "queued": sum(self._queued.values()),
                "running": sum(self._running.values()),
                "finished": dict(self._finished),
                "per_user": per_user,
                "config": self.config.to_dict(),
            }
            if self.cache is not None:
                cache_stats = self.cache.stats.to_dict()
                cache_stats["entries"] = len(self.cache)
                payload["cache"] = cache_stats
            else:
                payload["cache"] = None
        if self.config.metrics_enabled:
            latency = {}
            for key, hist in (("queue_seconds", self._queue_hist),
                              ("exec_seconds", self._exec_hist)):
                summary = hist.to_dict()
                latency[key] = {
                    "count": summary["count"],
                    "p50": summary["p50"],
                    "p90": summary["p90"],
                    "p99": summary["p99"],
                }
            payload["latency"] = latency
        storage = getattr(self.platform, "storage", None)
        payload["storage"] = storage.stats() if storage is not None else None
        payload["querystore"] = (self.query_store.summary()
                                 if self.query_store is not None else None)
        if self.adaptive is not None:
            adaptive = self.adaptive.summary()
            adaptive["feedback"] = self.feedback_store.summary()
            payload["adaptive"] = adaptive
        else:
            payload["adaptive"] = None
        payload["monitor"] = (self.monitor.stats()
                              if self.monitor is not None else None)
        payload["batch"] = self.batch.stats()
        return payload
