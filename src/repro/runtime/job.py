"""The query-job state machine.

Every query submitted to the runtime becomes a :class:`QueryJob` moving
through::

    QUEUED --> RUNNING --> SUCCEEDED | FAILED | CANCELLED | TIMED_OUT
       \\---------------------------------> CANCELLED   (cancelled in queue)

Transitions are validated and terminal states are final; waiters blocked in
:meth:`QueryJob.wait` are released on any terminal transition.  The job also
carries the structured timing/outcome record the scheduler appends to the
platform's query log.
"""

import threading
import time

from repro.errors import ReproError
from repro.obs.tracing import Trace
from repro.runtime.cancellation import CancellationToken

QUEUED = "QUEUED"
RUNNING = "RUNNING"
SUCCEEDED = "SUCCEEDED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"
TIMED_OUT = "TIMED_OUT"

TERMINAL_STATES = frozenset((SUCCEEDED, FAILED, CANCELLED, TIMED_OUT))

_ALLOWED = {
    QUEUED: frozenset((RUNNING, CANCELLED)),
    RUNNING: frozenset((SUCCEEDED, FAILED, CANCELLED, TIMED_OUT)),
    SUCCEEDED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
    TIMED_OUT: frozenset(),
}

#: Job state -> REST protocol status string (§3.3 polling vocabulary).
PROTOCOL_STATUS = {
    QUEUED: "pending",
    RUNNING: "running",
    SUCCEEDED: "complete",
    FAILED: "error",
    CANCELLED: "cancelled",
    TIMED_OUT: "timeout",
}


class InvalidTransition(ReproError):
    """A job was asked to make a state transition the machine forbids."""


class QueryJob(object):
    """One query's lifecycle through the scheduler."""

    def __init__(self, job_id, user, sql, source="rest", timeout=None,
                 profile=False, tracing=True, cross_shard=False,
                 trace_context=None):
        self.job_id = job_id
        self.user = user
        self.sql = sql
        self.source = source
        #: Statement timeout in seconds (None = scheduler default).
        self.timeout = timeout
        self.token = CancellationToken()
        self.state = QUEUED
        #: Static-analysis findings attached at submission (list of dicts).
        self.diagnostics = []
        #: QueryResult on success; error string otherwise.
        self.result = None
        self.error = None
        #: Taxonomy class of the failure (repro.errors.ERROR_CLASSES).
        self.error_class = None
        self.cache_hit = False
        #: When True, execution wraps every operator for per-operator
        #: actuals; the ExecutionProfile lands in :attr:`profile_data`.
        self.profile = profile
        self.profile_data = None
        #: True when the cluster routed this query through the
        #: fetch-and-local-join fallback (it touched remote-shard data).
        self.cross_shard = cross_shard
        #: Lifecycle trace (None when the runtime disables tracing or a
        #: propagated context asked not to sample this request).  With a
        #: remote context the trace takes the *cluster-wide* trace id and
        #: remembers the parent span, so this job's spans stitch into the
        #: coordinator's trace as children of the submitting hop.
        if tracing and (trace_context is None or trace_context.sampled):
            self.trace = Trace(
                trace_context.trace_id if trace_context is not None
                else job_id,
                parent=(trace_context.parent
                        if trace_context is not None else None))
        else:
            self.trace = None
        #: Durations (queue/exec) are monotonic-clock deltas, immune to
        #: wall-clock adjustment; only log records carry epoch timestamps.
        self.submitted_at = time.monotonic()
        self.started_at = None
        self.finished_at = None
        self._cond = threading.Condition()

    # -- state machine --------------------------------------------------------

    def transition(self, new_state, error=None, before_notify=None):
        """Move to ``new_state`` (validated); wakes any waiters on terminal.

        ``before_notify`` (called with the job, inside the state lock, after
        the terminal fields are set but before waiters wake) lets the
        scheduler publish side effects — the query-log outcome record —
        that must be visible to anyone returning from :meth:`wait`.

        Returns the job for chaining.  Raises :class:`InvalidTransition` on
        a forbidden move (e.g. resurrecting a terminal job).
        """
        with self._cond:
            if new_state not in _ALLOWED[self.state]:
                raise InvalidTransition(
                    "job %s: cannot move %s -> %s"
                    % (self.job_id, self.state, new_state)
                )
            self.state = new_state
            now = time.monotonic()
            if new_state == RUNNING:
                self.started_at = now
                if self.trace is not None:
                    self.trace.add_span("queued", self.submitted_at, now)
            elif new_state in TERMINAL_STATES:
                self.finished_at = now
                if self.started_at is None:
                    # Cancelled straight out of the queue.
                    self.started_at = now
                    if self.trace is not None:
                        self.trace.add_span("queued", self.submitted_at, now,
                                            state=new_state)
                elif self.trace is not None:
                    self.trace.add_span("run", self.started_at, now,
                                        state=new_state)
            if error is not None:
                self.error = error
            if new_state in TERMINAL_STATES:
                if before_notify is not None:
                    before_notify(self)
                self._cond.notify_all()
        return self

    @property
    def done(self):
        return self.state in TERMINAL_STATES

    def wait(self, timeout=None):
        """Block until the job reaches a terminal state; returns it."""
        with self._cond:
            if self.state not in TERMINAL_STATES:
                self._cond.wait(timeout)
            return self.state

    # -- timing ---------------------------------------------------------------

    @property
    def queue_seconds(self):
        if self.started_at is None:
            return time.monotonic() - self.submitted_at
        return self.started_at - self.submitted_at

    @property
    def exec_seconds(self):
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.monotonic()
        return end - self.started_at

    # -- presentation ---------------------------------------------------------

    @property
    def protocol_status(self):
        return PROTOCOL_STATUS[self.state]

    def timing_record(self):
        """The structured outcome/timing fields logged with this job."""
        record = {
            "outcome": self.state,
            "queue_seconds": round(self.queue_seconds, 6),
            "exec_seconds": round(self.exec_seconds, 6),
            "cache_hit": self.cache_hit,
        }
        if self.cross_shard:
            record["cross_shard"] = True
        if self.error_class is not None:
            record["error_class"] = self.error_class
        return record

    def to_dict(self):
        payload = {
            "id": self.job_id,
            "status": self.protocol_status,
            "state": self.state,
            "queue_seconds": round(self.queue_seconds, 6),
            "exec_seconds": round(self.exec_seconds, 6),
            "cache_hit": self.cache_hit,
            "diagnostics": self.diagnostics,
            "profiled": self.profile,
        }
        if self.cross_shard:
            payload["cross_shard"] = True
        if self.trace is not None:
            payload["trace_id"] = self.trace.trace_id
        if self.result is not None:
            payload["row_count"] = len(self.result.rows)
        if self.error is not None:
            payload["error"] = self.error
        if self.error_class is not None:
            payload["error_class"] = self.error_class
        return payload

    def __repr__(self):
        return "QueryJob(%s, %r, %s)" % (self.job_id, self.user, self.state)
