"""Cooperative cancellation: the token the executor polls mid-scan.

A :class:`CancellationToken` is attached to every query job.  The engine's
pull-based iterators call ``ExecutionContext.tick()`` per row, which polls
the token every ``CANCEL_CHECK_ROWS`` rows — so an explicit cancel or an
elapsed statement timeout stops work inside a scan or join, not just
between result rows.
"""

import threading
import time

from repro.errors import QueryCancelled, QueryTimeout


class CancellationToken(object):
    """Thread-safe cancel/deadline flag shared by a job and its worker.

    ``cancel()`` may be called from any thread; the executing thread polls
    :meth:`raise_if_cancelled` (via ``ExecutionContext.tick``), which raises
    :class:`QueryTimeout` when the monotonic deadline has passed and
    :class:`QueryCancelled` when an explicit cancel was requested.
    """

    __slots__ = ("_event", "_deadline", "_reason")

    def __init__(self, timeout=None):
        self._event = threading.Event()
        self._deadline = None
        self._reason = None
        if timeout is not None:
            self.set_deadline(timeout)

    def cancel(self, reason="cancelled"):
        """Request cooperative cancellation (idempotent)."""
        self._reason = self._reason or reason
        self._event.set()

    def set_deadline(self, seconds):
        """Start the statement timeout clock: ``seconds`` from now."""
        self._deadline = time.monotonic() + seconds

    def clear_deadline(self):
        self._deadline = None

    @property
    def cancelled(self):
        return self._event.is_set()

    @property
    def expired(self):
        return self._deadline is not None and time.monotonic() > self._deadline

    def raise_if_cancelled(self):
        """Raise QueryCancelled/QueryTimeout if cancel or timeout is due."""
        if self._event.is_set():
            raise QueryCancelled("query cancelled: %s" % (self._reason or "cancelled"))
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise QueryTimeout("query exceeded its statement timeout")
