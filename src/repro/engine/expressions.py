"""Binding and evaluation of scalar expressions.

The binder turns AST expressions into bound expression trees that carry a
result type, can be evaluated against a row, and can describe themselves in
the plan's predicate syntax (``income GT 500000`` as in Listing 1 of the
paper).  Correlated subqueries are supported via an outer-scope chain and an
execution context that stacks outer rows.
"""

import datetime as _dt
from decimal import Decimal

from repro.engine import ast_nodes as ast
from repro.engine import functions
from repro.engine.types import (
    SQLType,
    cast_value,
    infer_literal_type,
    is_numeric,
    resolve_type_name,
    unify_types,
)
from repro.errors import BindError, ExecutionError, TypeCheckError

#: Predicate-description operator names used in extracted plans.
_OP_NAMES = {"=": "EQ", "<>": "NE", "<": "LT", ">": "GT", "<=": "LE", ">=": "GE"}


class OutputColumn(object):
    """One column of an operator's output schema.

    ``qualifier`` is the visible range-variable name (alias or table name);
    ``source_table``/``source_column`` track provenance back to a base table
    for the workload analysis (referenced tables/columns per query).
    """

    __slots__ = ("qualifier", "name", "sql_type", "source_table", "source_column")

    def __init__(self, name, sql_type, qualifier=None, source_table=None, source_column=None):
        self.qualifier = qualifier
        self.name = name
        self.sql_type = sql_type
        self.source_table = source_table
        self.source_column = source_column

    def renamed(self, name=None, qualifier=None):
        return OutputColumn(
            name if name is not None else self.name,
            self.sql_type,
            qualifier=qualifier if qualifier is not None else self.qualifier,
            source_table=self.source_table,
            source_column=self.source_column,
        )

    def __repr__(self):
        prefix = "%s." % self.qualifier if self.qualifier else ""
        return "OutputColumn(%s%s: %s)" % (prefix, self.name, self.sql_type.value)


class Scope(object):
    """Name-resolution scope: a list of output columns plus an outer chain."""

    def __init__(self, columns, parent=None):
        self.columns = list(columns)
        self.parent = parent

    def resolve(self, name, table=None):
        """Resolve a (possibly qualified) column name.

        Returns ``(levels_up, slot, column)``: 0 levels for the local scope.
        Raises :class:`BindError` on unknown or ambiguous names.
        """
        scope, levels = self, 0
        while scope is not None:
            matches = [
                (slot, column)
                for slot, column in enumerate(scope.columns)
                if column.name.lower() == name.lower()
                and (table is None or (column.qualifier or "").lower() == table.lower())
            ]
            if len(matches) == 1:
                slot, column = matches[0]
                return levels, slot, column
            if len(matches) > 1:
                raise BindError("ambiguous column reference %r" % name)
            scope, levels = scope.parent, levels + 1
        if table:
            raise BindError("unknown column %s.%s" % (table, name))
        raise BindError("unknown column %r" % name)


#: Rows between cooperative cancellation checks (see ``ExecutionContext.tick``).
CANCEL_CHECK_ROWS = 1024


class ExecutionContext(object):
    """Per-execution state: outer-row stack, subplan runner/cache and the
    (optional) cancellation token the operators poll while iterating."""

    def __init__(self, run_plan=None, cancellation=None):
        self.outer_rows = []
        self._run_plan = run_plan
        #: CancellationToken (or None): operators call :meth:`tick` per row
        #: processed; every ``CANCEL_CHECK_ROWS`` ticks the token is polled
        #: so a cancel/timeout stops work mid-scan rather than at row
        #: boundaries of the final result.
        self.cancellation = cancellation
        self._ticks = 0
        self._next_check = CANCEL_CHECK_ROWS
        self._uncorrelated_cache = {}

    def tick(self):
        """Account one row of work; poll the cancellation token every N rows."""
        self._ticks = ticks = self._ticks + 1
        if ticks >= self._next_check:
            self._next_check = ticks + CANCEL_CHECK_ROWS
            if self.cancellation is not None:
                self.cancellation.raise_if_cancelled()

    def run_subplan(self, plan, correlated):
        """Materialize a subplan's rows, caching uncorrelated results."""
        if self._run_plan is None:
            raise ExecutionError("subquery execution is not available here")
        if not correlated:
            key = id(plan)
            if key not in self._uncorrelated_cache:
                self._uncorrelated_cache[key] = list(self._run_plan(plan, self))
            return self._uncorrelated_cache[key]
        return list(self._run_plan(plan, self))


# --------------------------------------------------------------------------
# Bound expression node classes
# --------------------------------------------------------------------------


class BoundExpr(object):
    """Base class: result type plus evaluation and description."""

    __slots__ = ("sql_type",)

    def __init__(self, sql_type):
        self.sql_type = sql_type

    def eval(self, row, ctx):
        raise NotImplementedError

    def describe(self):
        return type(self).__name__

    def children(self):
        return []

    def walk(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())


class BoundLiteral(BoundExpr):
    __slots__ = ("value",)

    def __init__(self, value):
        super(BoundLiteral, self).__init__(infer_literal_type(value))
        self.value = value

    def eval(self, row, ctx):
        return self.value

    def describe(self):
        if isinstance(self.value, str):
            return "'%s'" % self.value
        return str(self.value)


class BoundColumn(BoundExpr):
    __slots__ = ("slot", "name")

    def __init__(self, slot, sql_type, name):
        super(BoundColumn, self).__init__(sql_type)
        self.slot = slot
        self.name = name

    def eval(self, row, ctx):
        return row[self.slot]

    def describe(self):
        return self.name


class BoundOuterColumn(BoundExpr):
    __slots__ = ("levels", "slot", "name")

    def __init__(self, levels, slot, sql_type, name):
        super(BoundOuterColumn, self).__init__(sql_type)
        self.levels = levels
        self.slot = slot
        self.name = name

    def eval(self, row, ctx):
        return ctx.outer_rows[-self.levels][self.slot]

    def describe(self):
        return self.name


class BoundUnary(BoundExpr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        result = SQLType.BIT if op == "not" else operand.sql_type
        super(BoundUnary, self).__init__(result)
        self.op = op
        self.operand = operand

    def eval(self, row, ctx):
        value = self.operand.eval(row, ctx)
        if self.op == "not":
            return None if value is None else not _truthy(value)
        if value is None:
            return None
        if self.op == "-":
            return -value
        return value

    def describe(self):
        return "%s(%s)" % (self.op.upper(), self.operand.describe())

    def children(self):
        return [self.operand]


class BoundBinary(BoundExpr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, sql_type):
        super(BoundBinary, self).__init__(sql_type)
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row, ctx):
        op = self.op
        if op == "and":
            left = self.left.eval(row, ctx)
            if left is not None and not _truthy(left):
                return False
            right = self.right.eval(row, ctx)
            if right is not None and not _truthy(right):
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            left = self.left.eval(row, ctx)
            if left is not None and _truthy(left):
                return True
            right = self.right.eval(row, ctx)
            if right is not None and _truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        left = self.left.eval(row, ctx)
        right = self.right.eval(row, ctx)
        if left is None or right is None:
            return None
        if op in _OP_NAMES:
            result = compare_values(left, right)
            if result is None:
                return None
            if op == "=":
                return result == 0
            if op == "<>":
                return result != 0
            if op == "<":
                return result < 0
            if op == ">":
                return result > 0
            if op == "<=":
                return result <= 0
            return result >= 0
        return _arithmetic(op, left, right)

    def describe(self):
        name = _OP_NAMES.get(self.op, self.op.upper())
        if self.op == "+":
            name = "ADD"
        elif self.op == "-":
            name = "SUB"
        elif self.op == "*":
            name = "MULT"
        elif self.op == "/":
            name = "DIV"
        elif self.op == "%":
            name = "MOD"
        elif self.op == "||":
            name = "CONCAT"
        elif self.op == "&":
            name = "BIT_AND"
        elif self.op == "|":
            name = "BIT_OR"
        elif self.op == "^":
            name = "BIT_XOR"
        return "%s %s %s" % (self.left.describe(), name, self.right.describe())

    def children(self):
        return [self.left, self.right]


class BoundIsNull(BoundExpr):
    __slots__ = ("operand", "negated")

    def __init__(self, operand, negated):
        super(BoundIsNull, self).__init__(SQLType.BIT)
        self.operand = operand
        self.negated = negated

    def eval(self, row, ctx):
        is_null = self.operand.eval(row, ctx) is None
        return not is_null if self.negated else is_null

    def describe(self):
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return "%s %s" % (self.operand.describe(), suffix)

    def children(self):
        return [self.operand]


class BoundLike(BoundExpr):
    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand, pattern, negated):
        super(BoundLike, self).__init__(SQLType.BIT)
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def eval(self, row, ctx):
        value = self.operand.eval(row, ctx)
        pattern = self.pattern.eval(row, ctx)
        result = functions.like_match(value, pattern)
        if result is None:
            return None
        return not result if self.negated else result

    def describe(self):
        word = "NOT LIKE" if self.negated else "LIKE"
        return "%s %s %s" % (self.operand.describe(), word, self.pattern.describe())

    def children(self):
        return [self.operand, self.pattern]


class BoundBetween(BoundExpr):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand, low, high, negated):
        super(BoundBetween, self).__init__(SQLType.BIT)
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def eval(self, row, ctx):
        value = self.operand.eval(row, ctx)
        low = self.low.eval(row, ctx)
        high = self.high.eval(row, ctx)
        if value is None or low is None or high is None:
            return None
        low_cmp = compare_values(value, low)
        high_cmp = compare_values(value, high)
        if low_cmp is None or high_cmp is None:
            return None
        inside = low_cmp >= 0 and high_cmp <= 0
        return not inside if self.negated else inside

    def describe(self):
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return "%s %s %s AND %s" % (
            self.operand.describe(),
            word,
            self.low.describe(),
            self.high.describe(),
        )

    def children(self):
        return [self.operand, self.low, self.high]


class BoundInList(BoundExpr):
    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand, items, negated):
        super(BoundInList, self).__init__(SQLType.BIT)
        self.operand = operand
        self.items = items
        self.negated = negated

    def eval(self, row, ctx):
        value = self.operand.eval(row, ctx)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.eval(row, ctx)
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return False if self.negated else True
        if saw_null:
            return None
        return True if self.negated else False

    def describe(self):
        word = "NOT IN" if self.negated else "IN"
        items = ", ".join(item.describe() for item in self.items)
        return "%s %s (%s)" % (self.operand.describe(), word, items)

    def children(self):
        return [self.operand] + list(self.items)


class BoundCase(BoundExpr):
    __slots__ = ("whens", "else_result")

    def __init__(self, whens, else_result, sql_type):
        super(BoundCase, self).__init__(sql_type)
        self.whens = whens  # list of (bound condition, bound result)
        self.else_result = else_result

    def eval(self, row, ctx):
        for condition, result in self.whens:
            flag = condition.eval(row, ctx)
            if flag is not None and _truthy(flag):
                return result.eval(row, ctx)
        if self.else_result is not None:
            return self.else_result.eval(row, ctx)
        return None

    def describe(self):
        return "CASE(%d branches)" % len(self.whens)

    def children(self):
        out = []
        for condition, result in self.whens:
            out.append(condition)
            out.append(result)
        if self.else_result is not None:
            out.append(self.else_result)
        return out


class BoundCast(BoundExpr):
    __slots__ = ("operand", "target", "try_cast")

    def __init__(self, operand, target, try_cast):
        super(BoundCast, self).__init__(target)
        self.operand = operand
        self.target = target
        self.try_cast = try_cast

    def eval(self, row, ctx):
        return cast_value(self.operand.eval(row, ctx), self.target, strict=not self.try_cast)

    def describe(self):
        return "CAST(%s AS %s)" % (self.operand.describe(), self.target.value)

    def children(self):
        return [self.operand]


class BoundFunc(BoundExpr):
    __slots__ = ("func", "args")

    def __init__(self, func, args):
        super(BoundFunc, self).__init__(func.type_of([a.sql_type for a in args]))
        self.func = func
        self.args = args

    def eval(self, row, ctx):
        return self.func(*[arg.eval(row, ctx) for arg in self.args])

    def describe(self):
        return "%s(%s)" % (self.func.name, ", ".join(a.describe() for a in self.args))

    def children(self):
        return list(self.args)


class BoundScalarSubquery(BoundExpr):
    __slots__ = ("plan", "correlated")

    def __init__(self, plan, sql_type, correlated):
        super(BoundScalarSubquery, self).__init__(sql_type)
        self.plan = plan
        self.correlated = correlated

    def eval(self, row, ctx):
        ctx.outer_rows.append(row)
        try:
            rows = ctx.run_subplan(self.plan, self.correlated)
        finally:
            ctx.outer_rows.pop()
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        return rows[0][0]

    def describe(self):
        return "SCALAR_SUBQUERY"


class BoundExists(BoundExpr):
    __slots__ = ("plan", "correlated", "negated")

    def __init__(self, plan, correlated, negated):
        super(BoundExists, self).__init__(SQLType.BIT)
        self.plan = plan
        self.correlated = correlated
        self.negated = negated

    def eval(self, row, ctx):
        ctx.outer_rows.append(row)
        try:
            rows = ctx.run_subplan(self.plan, self.correlated)
        finally:
            ctx.outer_rows.pop()
        found = bool(rows)
        return not found if self.negated else found

    def describe(self):
        return "NOT EXISTS" if self.negated else "EXISTS"


class BoundInSubquery(BoundExpr):
    __slots__ = ("operand", "plan", "correlated", "negated")

    def __init__(self, operand, plan, correlated, negated):
        super(BoundInSubquery, self).__init__(SQLType.BIT)
        self.operand = operand
        self.plan = plan
        self.correlated = correlated
        self.negated = negated

    def eval(self, row, ctx):
        value = self.operand.eval(row, ctx)
        if value is None:
            return None
        ctx.outer_rows.append(row)
        try:
            rows = ctx.run_subplan(self.plan, self.correlated)
        finally:
            ctx.outer_rows.pop()
        saw_null = False
        for sub_row in rows:
            candidate = sub_row[0]
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return False if self.negated else True
        if saw_null:
            return None
        return True if self.negated else False

    def describe(self):
        word = "NOT IN" if self.negated else "IN"
        return "%s %s SUBQUERY" % (self.operand.describe(), word)

    def children(self):
        return [self.operand]


# --------------------------------------------------------------------------
# Value semantics helpers
# --------------------------------------------------------------------------


def _truthy(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, Decimal)):
        return value != 0
    return bool(value)


def compare_values(left, right):
    """Three-way compare with T-SQL-ish coercion; None if incomparable NULL.

    Numbers compare numerically (strings coerce to numbers when the other
    side is numeric); dates accept ISO strings; strings compare ordinally.
    Raises :class:`ExecutionError` when coercion fails, mirroring the
    conversion errors users see on dirty data.
    """
    left = _normalize(left)
    right = _normalize(right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, _dt.datetime) or isinstance(right, _dt.datetime):
        left = _coerce_datetime(left)
        right = _coerce_datetime(right)
        return (left > right) - (left < right)
    if isinstance(left, _dt.date) or isinstance(right, _dt.date):
        left = _coerce_date(left)
        right = _coerce_date(right)
        return (left > right) - (left < right)
    left_num = _coerce_number(left)
    right_num = _coerce_number(right)
    return (left_num > right_num) - (left_num < right_num)


def _normalize(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, Decimal):
        return float(value)
    return value


def _coerce_number(value):
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise ExecutionError("conversion failed comparing %r to a number" % value)
    raise ExecutionError("cannot compare %r numerically" % (value,))


def _coerce_datetime(value):
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime.combine(value, _dt.time())
    if isinstance(value, str):
        return cast_value(value, SQLType.DATETIME)
    raise ExecutionError("cannot compare %r to a datetime" % (value,))


def _coerce_date(value):
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        return cast_value(value, SQLType.DATE)
    raise ExecutionError("cannot compare %r to a date" % (value,))


def _arithmetic(op, left, right):
    # T-SQL '+' concatenates when either side is a string.
    if op == "+" and (isinstance(left, str) or isinstance(right, str)):
        from repro.engine.types import format_value

        return ("" if left is None else format_value(left)) + (
            "" if right is None else format_value(right)
        )
    if op == "||":
        from repro.engine.types import format_value

        return format_value(left) + format_value(right)
    left = _normalize(left)
    right = _normalize(right)
    left_num = _coerce_number(left)
    right_num = _coerce_number(right)
    if op == "+":
        return left_num + right_num
    if op == "-":
        return left_num - right_num
    if op == "*":
        return left_num * right_num
    if op == "/":
        if right_num == 0:
            raise ExecutionError("division by zero")
        if isinstance(left_num, int) and isinstance(right_num, int):
            # T-SQL integer division truncates toward zero.
            quotient = abs(left_num) // abs(right_num)
            return quotient if (left_num >= 0) == (right_num >= 0) else -quotient
        return left_num / right_num
    if op in ("&", "|", "^"):
        left_int = int(left_num)
        right_int = int(right_num)
        if op == "&":
            return left_int & right_int
        if op == "|":
            return left_int | right_int
        return left_int ^ right_int
    if op == "%":
        if right_num == 0:
            raise ExecutionError("modulo by zero")
        # T-SQL modulo takes the sign of the dividend (C-style fmod).
        result = abs(left_num) % abs(right_num)
        if left_num < 0:
            result = -result
        if isinstance(left_num, int) and isinstance(right_num, int):
            return int(result)
        return result
    raise ExecutionError("unsupported operator %r" % op)


def _binary_result_type(op, left, right):
    if op in ("and", "or") or op in _OP_NAMES:
        return SQLType.BIT
    if op == "||":
        return SQLType.VARCHAR
    if op == "+" and SQLType.VARCHAR in (left.sql_type, right.sql_type):
        return SQLType.VARCHAR
    if op == "/":
        if left.sql_type in (SQLType.INT, SQLType.BIGINT, SQLType.BIT) and right.sql_type in (
            SQLType.INT,
            SQLType.BIGINT,
            SQLType.BIT,
        ):
            return unify_types(left.sql_type, right.sql_type)
        return SQLType.FLOAT
    if op == "%":
        return SQLType.INT
    if op in ("&", "|", "^"):
        return SQLType.INT
    return unify_types(left.sql_type, right.sql_type)


# --------------------------------------------------------------------------
# Bound-expression surgery (used by the planner's predicate pushdown)
# --------------------------------------------------------------------------

_SUBQUERY_TYPES = (BoundScalarSubquery, BoundExists, BoundInSubquery)


def contains_subquery(expr):
    return any(isinstance(node, _SUBQUERY_TYPES) for node in expr.walk())


def referenced_slots(expr):
    """Local row slots a bound expression reads."""
    return {node.slot for node in expr.walk() if isinstance(node, BoundColumn)}


def rebase_expr(expr, substitute):
    """Clone ``expr`` replacing each BoundColumn via ``substitute(slot)``.

    ``substitute`` returns a replacement BoundExpr or None when the slot
    cannot be mapped.  Returns None when the expression cannot be relocated
    (unmappable slot, subquery inside it, or a substitution that itself
    contains a subquery).
    """
    if isinstance(expr, _SUBQUERY_TYPES):
        return None
    if isinstance(expr, BoundColumn):
        replacement = substitute(expr.slot)
        if replacement is None or contains_subquery(replacement):
            return None
        return replacement
    if isinstance(expr, (BoundLiteral, BoundOuterColumn)):
        return expr
    if isinstance(expr, BoundUnary):
        operand = rebase_expr(expr.operand, substitute)
        return None if operand is None else BoundUnary(expr.op, operand)
    if isinstance(expr, BoundBinary):
        left = rebase_expr(expr.left, substitute)
        right = rebase_expr(expr.right, substitute)
        if left is None or right is None:
            return None
        return BoundBinary(expr.op, left, right, expr.sql_type)
    if isinstance(expr, BoundIsNull):
        operand = rebase_expr(expr.operand, substitute)
        return None if operand is None else BoundIsNull(operand, expr.negated)
    if isinstance(expr, BoundLike):
        operand = rebase_expr(expr.operand, substitute)
        pattern = rebase_expr(expr.pattern, substitute)
        if operand is None or pattern is None:
            return None
        return BoundLike(operand, pattern, expr.negated)
    if isinstance(expr, BoundBetween):
        parts = [
            rebase_expr(expr.operand, substitute),
            rebase_expr(expr.low, substitute),
            rebase_expr(expr.high, substitute),
        ]
        if any(part is None for part in parts):
            return None
        return BoundBetween(parts[0], parts[1], parts[2], expr.negated)
    if isinstance(expr, BoundInList):
        operand = rebase_expr(expr.operand, substitute)
        items = [rebase_expr(item, substitute) for item in expr.items]
        if operand is None or any(item is None for item in items):
            return None
        return BoundInList(operand, items, expr.negated)
    if isinstance(expr, BoundCase):
        whens = []
        for condition, result in expr.whens:
            new_condition = rebase_expr(condition, substitute)
            new_result = rebase_expr(result, substitute)
            if new_condition is None or new_result is None:
                return None
            whens.append((new_condition, new_result))
        else_result = None
        if expr.else_result is not None:
            else_result = rebase_expr(expr.else_result, substitute)
            if else_result is None:
                return None
        return BoundCase(whens, else_result, expr.sql_type)
    if isinstance(expr, BoundCast):
        operand = rebase_expr(expr.operand, substitute)
        return None if operand is None else BoundCast(operand, expr.target, expr.try_cast)
    if isinstance(expr, BoundFunc):
        args = [rebase_expr(arg, substitute) for arg in expr.args]
        if any(arg is None for arg in args):
            return None
        return BoundFunc(expr.func, args)
    return None


# --------------------------------------------------------------------------
# The binder
# --------------------------------------------------------------------------


class Binder(object):
    """Binds AST expressions against a scope.

    ``replacements`` maps AST nodes (by structural equality) to pre-computed
    slots in the input row; the planner uses this to route aggregate results
    and window-function outputs through Compute Scalar expressions.

    ``plan_subquery`` is a callback ``(query_ast, scope) -> (plan, schema,
    correlated)`` supplied by the planner; it is required only when the
    expression actually contains subqueries.

    ``references`` accumulates ``(source_table, source_column)`` pairs for
    every base-table column the expression touches — the raw material for
    Phase 2 of the workload analysis.
    """

    def __init__(self, scope, plan_subquery=None, replacements=None, references=None,
                 expression_ops=None):
        self.scope = scope
        self.plan_subquery = plan_subquery
        self.replacements = replacements or {}
        self.references = references if references is not None else set()
        #: Names of expression operators used (for Table 4-style analysis).
        self.expression_ops = expression_ops if expression_ops is not None else []
        #: Physical plans of subqueries bound inside this expression.
        self.subplans = []

    def bind(self, node):
        handler = getattr(self, "_bind_%s" % type(node).__name__.lower(), None)
        if handler is None:
            raise BindError("cannot bind %s here" % type(node).__name__)
        if self.replacements:
            slot_info = self.replacements.get(node)
            if slot_info is not None:
                slot, sql_type, name = slot_info
                return BoundColumn(slot, sql_type, name)
        try:
            return handler(node)
        except (BindError, TypeCheckError) as error:
            if error.span is None:
                error.span = getattr(node, "span", None)
            raise

    # -- leaf nodes -----------------------------------------------------------

    def _bind_literal(self, node):
        return BoundLiteral(node.value)

    def _bind_columnref(self, node):
        levels, slot, column = self.scope.resolve(node.name, node.table)
        if column.source_table is not None:
            self.references.add((column.source_table, column.source_column or column.name))
        if levels == 0:
            return BoundColumn(slot, column.sql_type, column.name)
        return BoundOuterColumn(levels, slot, column.sql_type, column.name)

    # -- composite nodes --------------------------------------------------------

    def _bind_unaryop(self, node):
        return BoundUnary(node.op, self.bind(node.operand))

    def _bind_binaryop(self, node):
        left = self.bind(node.left)
        right = self.bind(node.right)
        if node.op in ("+", "-", "*", "/", "%", "||", "&", "|", "^"):
            self.expression_ops.append(
                {"+": "ADD", "-": "SUB", "*": "MULT", "/": "DIV", "%": "MOD",
                 "||": "CONCAT", "&": "BIT_AND", "|": "BIT_OR",
                 "^": "BIT_XOR"}[node.op]
            )
        return BoundBinary(node.op, left, right, _binary_result_type(node.op, left, right))

    def _bind_isnull(self, node):
        return BoundIsNull(self.bind(node.operand), node.negated)

    def _bind_like(self, node):
        self.expression_ops.append("like")
        return BoundLike(self.bind(node.operand), self.bind(node.pattern), node.negated)

    def _bind_between(self, node):
        operand = self.bind(node.operand)
        low = self.bind(node.low)
        high = self.bind(node.high)
        # Sargable BETWEEN turns into a dynamic index range in SQL Server,
        # surfacing the GetRange* intrinsics that dominate the SDSS
        # workload's expression distribution (Table 4b of the paper).
        if isinstance(operand, (BoundColumn, BoundOuterColumn)):
            self.expression_ops.append("GetRangeThroughConvert")
            if operand.sql_type != low.sql_type or operand.sql_type != high.sql_type:
                self.expression_ops.append("GetRangeWithMismatchedTypes")
        return BoundBetween(operand, low, high, node.negated)

    def _bind_inlist(self, node):
        return BoundInList(
            self.bind(node.operand), [self.bind(item) for item in node.items], node.negated
        )

    def _bind_case(self, node):
        whens = []
        result_type = SQLType.UNKNOWN
        for condition, result in node.whens:
            if node.operand is not None:
                condition = ast.BinaryOp("=", node.operand, condition)
            bound_condition = self.bind(condition)
            bound_result = self.bind(result)
            result_type = unify_types(result_type, bound_result.sql_type)
            whens.append((bound_condition, bound_result))
        else_result = None
        if node.else_result is not None:
            else_result = self.bind(node.else_result)
            result_type = unify_types(result_type, else_result.sql_type)
        self.expression_ops.append("CASE")
        return BoundCase(whens, else_result, result_type)

    def _bind_cast(self, node):
        target = resolve_type_name(node.type_name)
        self.expression_ops.append("CAST")
        return BoundCast(self.bind(node.operand), target, node.try_cast)

    def _bind_funccall(self, node):
        func = functions.lookup(node.name, len(node.args))
        self.expression_ops.append(func.name)
        return BoundFunc(func, [self.bind(arg) for arg in node.args])

    def _bind_windowfunction(self, node):
        raise BindError(
            "window function %s used outside a select list" % node.func.name.upper()
        )

    def _bind_star(self, node):
        raise BindError("'*' is only allowed in a select list or COUNT(*)")

    # -- subqueries ---------------------------------------------------------------

    def _require_subplanner(self):
        if self.plan_subquery is None:
            raise BindError("subqueries are not allowed in this context")

    def _bind_scalarsubquery(self, node):
        self._require_subplanner()
        plan, schema, correlated = self.plan_subquery(node.subquery, self.scope)
        if len(schema) != 1:
            raise BindError("scalar subquery must return exactly one column")
        self.subplans.append(plan)
        return BoundScalarSubquery(plan, schema[0].sql_type, correlated)

    def _bind_exists(self, node):
        self._require_subplanner()
        plan, _schema, correlated = self.plan_subquery(node.subquery, self.scope)
        self.subplans.append(plan)
        return BoundExists(plan, correlated, node.negated)

    def _bind_insubquery(self, node):
        self._require_subplanner()
        plan, schema, correlated = self.plan_subquery(node.subquery, self.scope)
        if len(schema) != 1:
            raise BindError("IN subquery must return exactly one column")
        self.subplans.append(plan)
        return BoundInSubquery(self.bind(node.operand), plan, correlated, node.negated)
