"""A from-scratch relational engine standing in for the Azure SQL backend.

The engine exists to make the paper's workload-analysis pipeline real: every
query in the (synthetic) SQLShare and SDSS workloads is parsed, planned with a
SQL-Server-flavoured cost model, and optionally executed, and its plan is
exported in a ``SHOWPLAN_XML``-style document that Phase 1 of the analysis
framework consumes.

Public entry point: :class:`repro.engine.database.Database`.
"""

from repro.engine.database import Database
from repro.engine.types import SQLType

__all__ = ["Database", "SQLType"]
