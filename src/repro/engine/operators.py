"""Physical operators: pull-based iterators with SQL-Server plan names.

Each operator owns its estimates (rows, row size, io, cpu) which the planner
fills at construction time, and a cumulative ``total_cost`` including its
children and any attached subplans.  The plan vocabulary matches what the
paper's Figures 9/10 report: Clustered Index Scan/Seek, Table Scan, Filter,
Compute Scalar, Nested Loops, Merge Join, Hash Match, Sort, Stream
Aggregate, Concatenation, Top, Segment and Sequence Project.
"""

import bisect
import functools

from repro.engine import aggregates as agg
from repro.engine import cost as costmodel
from repro.engine.expressions import compare_values
from repro.errors import ExecutionError


def _null_first_cmp(left, right):
    """SQL-Server ordering: NULLs sort first ascending."""
    if left is None and right is None:
        return 0
    if left is None:
        return -1
    if right is None:
        return 1
    result = compare_values(left, right)
    return 0 if result is None else result


def sort_rows(rows, key_exprs, descendings, ctx):
    """Stable multi-key sort honouring NULLS FIRST and DESC flags."""

    def compare(row_a, row_b):
        for expr, descending in zip(key_exprs, descendings):
            result = _null_first_cmp(expr.eval(row_a, ctx), expr.eval(row_b, ctx))
            if result:
                return -result if descending else result
        return 0

    return sorted(rows, key=functools.cmp_to_key(compare))


def group_key(values):
    """Hashable grouping key; numbers unify (1 == 1.0), NULL groups as one."""
    key = []
    for value in values:
        if isinstance(value, bool):
            key.append(("n", float(value)))
        elif isinstance(value, (int, float)):
            key.append(("n", float(value)))
        elif value is None:
            key.append(("null", None))
        else:
            key.append((type(value).__name__, value))
    return tuple(key)


class Operator(object):
    """Base physical operator."""

    physical_name = "Operator"
    logical_name = None

    def __init__(self, children, schema):
        self.children = list(children)
        self.schema = list(schema)
        #: Subquery plans evaluated inside this operator's expressions.
        self.subplans = []
        #: Predicate descriptions (Listing 1 "filters" entries).
        self.filters = []
        #: Extra properties exposed in the plan XML.
        self.properties = {}
        self.est_rows = 0.0
        self.row_size = 8.0
        self.io_cost = 0.0
        self.cpu_cost = 0.0

    @property
    def logical(self):
        return self.logical_name or self.physical_name

    @property
    def total_cost(self):
        total = self.io_cost + self.cpu_cost
        for child in self.children:
            total += child.total_cost
        for plan in self.subplans:
            total += plan.total_cost
        return total

    def set_estimates(self, rows, row_size, io_cost, cpu_cost):
        self.est_rows = float(max(0.0, rows))
        self.row_size = float(max(1.0, row_size))
        self.io_cost = float(max(0.0, io_cost))
        self.cpu_cost = float(max(0.0, cpu_cost))

    def execute(self, ctx):
        raise NotImplementedError

    def walk(self):
        """Yield this operator and all descendants (not subplans)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def __repr__(self):
        return "%s(rows=%.1f)" % (self.physical_name.replace(" ", ""), self.est_rows)


class ClusteredIndexScan(Operator):
    """Full scan of a base table via its (mandatory) clustered index.

    Pushed-down residual predicates (SQL Server shows them as the scan's
    Predicate rather than a separate Filter operator) live in
    ``residual_predicates``.
    """

    physical_name = "Clustered Index Scan"

    def __init__(self, table, schema):
        super(ClusteredIndexScan, self).__init__([], schema)
        self.table = table
        self.residual_predicates = []
        self.properties["Index"] = "%s.cix" % table.name
        self.properties["Table"] = table.name

    def add_residual(self, predicate, description):
        self.residual_predicates.append(predicate)
        self.filters.append(description)

    def execute(self, ctx):
        if not self.residual_predicates and ctx.cancellation is None:
            return iter(self.table.rows)
        return self._filtered(ctx)

    def _filtered(self, ctx):
        predicates = self.residual_predicates
        tick = ctx.tick
        for row in self.table.rows:
            tick()
            for predicate in predicates:
                flag = predicate.eval(row, ctx)
                if flag is None or not flag:
                    break
            else:
                yield row


class ClusteredIndexSeek(Operator):
    """Scan restricted by a sargable predicate on the clustered index.

    When the table has been :meth:`~repro.engine.catalog.Table.recluster`-ed
    and the planner recorded a ``seek_range`` (a single ``column op literal``
    conjunct on the sorted column), execution bisects the sorted key column
    to the candidate row range instead of scanning every row.  The full seek
    predicate (and residuals) still run over the narrowed range, so the fast
    path is a pure superset-pruning optimisation — any type surprise falls
    back to the linear scan.
    """

    physical_name = "Clustered Index Seek"

    def __init__(self, table, schema, predicate, descriptions):
        super(ClusteredIndexSeek, self).__init__([], schema)
        self.table = table
        self.predicate = predicate
        self.residual_predicates = []
        if isinstance(descriptions, str):
            descriptions = [descriptions]
        self.filters.extend(descriptions)
        self.properties["Index"] = "%s.cix" % table.name
        self.properties["Table"] = table.name
        self.properties["SeekPredicate"] = " AND ".join(descriptions)
        #: ``(row slot, op, literal)`` bisect hint, planner-set only when the
        #: seek column is the table's advisor-sorted clustered column.
        self.seek_range = None

    def add_residual(self, predicate, description):
        self.residual_predicates.append(predicate)
        self.filters.append(description)

    def execute(self, ctx):
        bounds = self._bisect_bounds()
        if bounds is not None:
            start, stop = bounds
            return self._scan_rows(ctx, self.table.rows[start:stop])
        return self._scan_rows(ctx, self.table.rows)

    def _bisect_bounds(self):
        """Candidate ``(start, stop)`` row range, or None for a linear scan."""
        if self.seek_range is None:
            return None
        table = self.table
        keys = table._cluster_keys
        if not table._cluster_sorted or keys is None:
            return None
        slot, op, literal = self.seek_range
        # The sorted order may have moved to another column since planning.
        if table.column_index(table.clustered_prefix) != slot:
            return None
        lo, hi = table._cluster_lo, len(keys)
        try:
            if op == "=":
                return (bisect.bisect_left(keys, literal, lo, hi),
                        bisect.bisect_right(keys, literal, lo, hi))
            if op == "<":
                return (lo, bisect.bisect_left(keys, literal, lo, hi))
            if op == "<=":
                return (lo, bisect.bisect_right(keys, literal, lo, hi))
            if op == ">":
                return (bisect.bisect_right(keys, literal, lo, hi), hi)
            if op == ">=":
                return (bisect.bisect_left(keys, literal, lo, hi), hi)
        except TypeError:
            return None  # literal does not order against the keys
        return None

    def _scan_rows(self, ctx, rows):
        predicate = self.predicate
        residuals = self.residual_predicates
        tick = ctx.tick
        for row in rows:
            tick()
            flag = predicate.eval(row, ctx)
            if flag is None or not flag:
                continue
            passed = True
            for residual in residuals:
                flag = residual.eval(row, ctx)
                if flag is None or not flag:
                    passed = False
                    break
            if passed:
                yield row


class TableScan(Operator):
    """Scan of an unindexed rowset (only used for engine-internal rowsets)."""

    physical_name = "Table Scan"

    def __init__(self, rows, schema):
        super(TableScan, self).__init__([], schema)
        self.rows = rows

    def execute(self, ctx):
        if ctx.cancellation is None:
            return iter(self.rows)
        return self._ticked(ctx)

    def _ticked(self, ctx):
        tick = ctx.tick
        for row in self.rows:
            tick()
            yield row


class ConstantScan(Operator):
    """Produces literal rows (SELECT without FROM, VALUES)."""

    physical_name = "Constant Scan"

    def __init__(self, exprs_rows, schema):
        super(ConstantScan, self).__init__([], schema)
        self.exprs_rows = exprs_rows

    def execute(self, ctx):
        for exprs in self.exprs_rows:
            yield tuple(expr.eval((), ctx) for expr in exprs)


class Filter(Operator):
    physical_name = "Filter"

    def __init__(self, child, predicate, descriptions):
        super(Filter, self).__init__([child], child.schema)
        self.predicate = predicate
        self.filters.extend(descriptions)

    def execute(self, ctx):
        predicate = self.predicate
        for row in self.children[0].execute(ctx):
            flag = predicate.eval(row, ctx)
            if flag is not None and flag:
                yield row


class ComputeScalar(Operator):
    """Projection: evaluates one expression per output column."""

    physical_name = "Compute Scalar"

    def __init__(self, child, exprs, schema):
        super(ComputeScalar, self).__init__([child], schema)
        self.exprs = exprs

    def execute(self, ctx):
        exprs = self.exprs
        for row in self.children[0].execute(ctx):
            yield tuple(expr.eval(row, ctx) for expr in exprs)


class NestedLoops(Operator):
    """Inner/left/cross join; inner input is materialized once."""

    physical_name = "Nested Loops"

    def __init__(self, kind, left, right, predicate, schema, descriptions):
        super(NestedLoops, self).__init__([left, right], schema)
        self.kind = kind
        self.predicate = predicate
        self.filters.extend(descriptions)
        self.logical_name = "%s Join" % kind.capitalize()

    def execute(self, ctx):
        inner = list(self.children[1].execute(ctx))
        pad = (None,) * len(self.children[1].schema)
        tick = ctx.tick
        for outer_row in self.children[0].execute(ctx):
            matched = False
            for inner_row in inner:
                tick()
                row = outer_row + inner_row
                if self.predicate is None:
                    matched = True
                    yield row
                    continue
                flag = self.predicate.eval(row, ctx)
                if flag is not None and flag:
                    matched = True
                    yield row
            if self.kind == "left" and not matched:
                yield outer_row + pad


class HashMatch(Operator):
    """Equi-join via hashing; supports inner/left/right/full and semi joins."""

    physical_name = "Hash Match"

    def __init__(self, kind, left, right, left_keys, right_keys, residual, schema,
                 descriptions):
        super(HashMatch, self).__init__([left, right], schema)
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.filters.extend(descriptions)
        self.logical_name = {
            "inner": "Inner Join",
            "left": "Left Outer Join",
            "right": "Right Outer Join",
            "full": "Full Outer Join",
            "semi": "Left Semi Join",
            "anti": "Left Anti Semi Join",
        }[kind]

    def execute(self, ctx):
        build_rows = list(self.children[1].execute(ctx))
        table = {}
        for index, row in enumerate(build_rows):
            values = [expr.eval(row, ctx) for expr in self.right_keys]
            if any(value is None for value in values):
                continue  # NULL keys never join
            table.setdefault(group_key(values), []).append((index, row))
        matched_right = set()
        left_pad = (None,) * len(self.children[0].schema)
        right_pad = (None,) * len(self.children[1].schema)
        tick = ctx.tick
        for left_row in self.children[0].execute(ctx):
            tick()
            values = [expr.eval(left_row, ctx) for expr in self.left_keys]
            candidates = []
            if not any(value is None for value in values):
                candidates = table.get(group_key(values), [])
            matched = False
            for index, right_row in candidates:
                row = left_row + right_row
                if self.residual is not None:
                    flag = self.residual.eval(row, ctx)
                    if flag is None or not flag:
                        continue
                matched = True
                matched_right.add(index)
                if self.kind == "semi":
                    break
                if self.kind != "anti":
                    yield row
            if self.kind == "semi" and matched:
                yield left_row
            elif self.kind == "anti" and not matched:
                yield left_row
            elif self.kind in ("left", "full") and not matched:
                yield left_row + right_pad
        if self.kind in ("right", "full"):
            for index, right_row in enumerate(build_rows):
                if index not in matched_right:
                    yield left_pad + right_row


class MergeJoin(Operator):
    """Equi-join over two sorted inputs (planner guarantees the Sort)."""

    physical_name = "Merge Join"

    def __init__(self, kind, left, right, left_keys, right_keys, schema, descriptions):
        super(MergeJoin, self).__init__([left, right], schema)
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.filters.extend(descriptions)
        self.logical_name = "%s Join" % kind.capitalize()

    def execute(self, ctx):
        left_rows = list(self.children[0].execute(ctx))
        right_rows = list(self.children[1].execute(ctx))
        # Defensive: merge join requires sorted inputs; we sort here rather
        # than trust upstream, which keeps execution correct under plan edits.
        left_rows = sort_rows(left_rows, self.left_keys, [False] * len(self.left_keys), ctx)
        right_rows = sort_rows(right_rows, self.right_keys, [False] * len(self.right_keys), ctx)
        pad = (None,) * len(self.children[1].schema)
        i = j = 0
        tick = ctx.tick
        while i < len(left_rows):
            tick()
            left_key = [expr.eval(left_rows[i], ctx) for expr in self.left_keys]
            if any(value is None for value in left_key):
                if self.kind == "left":
                    yield left_rows[i] + pad
                i += 1
                continue
            while j < len(right_rows):
                right_key = [expr.eval(right_rows[j], ctx) for expr in self.right_keys]
                if any(value is None for value in right_key) or _key_cmp(right_key, left_key) < 0:
                    j += 1
                else:
                    break
            k = j
            matched = False
            while k < len(right_rows):
                right_key = [expr.eval(right_rows[k], ctx) for expr in self.right_keys]
                if _key_cmp(right_key, left_key) == 0:
                    matched = True
                    yield left_rows[i] + right_rows[k]
                    k += 1
                else:
                    break
            if self.kind == "left" and not matched:
                yield left_rows[i] + pad
            i += 1


def _key_cmp(key_a, key_b):
    for a, b in zip(key_a, key_b):
        result = _null_first_cmp(a, b)
        if result:
            return result
    return 0


class Sort(Operator):
    """Sort, optionally deduplicating (logical Distinct Sort)."""

    physical_name = "Sort"

    def __init__(self, child, key_exprs, descendings, distinct=False, output_width=None):
        super(Sort, self).__init__([child], child.schema)
        self.key_exprs = key_exprs
        self.descendings = descendings
        self.distinct = distinct
        #: When set, rows are trimmed to this many columns after sorting —
        #: hidden ORDER BY expressions are sorted on but not returned.
        self.output_width = output_width
        if distinct:
            self.logical_name = "Distinct Sort"

    def execute(self, ctx):
        rows = list(self.children[0].execute(ctx))
        rows = sort_rows(rows, self.key_exprs, self.descendings, ctx)
        if self.output_width is not None:
            width = self.output_width
            rows = [row[:width] for row in rows]
        if not self.distinct:
            return iter(rows)
        return self._dedup(rows)

    @staticmethod
    def _dedup(rows):
        seen = set()
        for row in rows:
            key = group_key(row)
            if key not in seen:
                seen.add(key)
                yield row


class Top(Operator):
    physical_name = "Top"

    def __init__(self, child, count, percent=False):
        super(Top, self).__init__([child], child.schema)
        self.count = count
        self.percent = percent
        self.properties["Rows"] = str(count) + ("%" if percent else "")

    def execute(self, ctx):
        if self.percent:
            rows = list(self.children[0].execute(ctx))
            keep = int(round(len(rows) * self.count / 100.0 + 0.4999)) if rows else 0
            return iter(rows[: max(0, keep)])
        return self._limit(ctx)

    def _limit(self, ctx):
        remaining = self.count
        if remaining <= 0:
            return
        for row in self.children[0].execute(ctx):
            yield row
            remaining -= 1
            if remaining == 0:
                return


class StreamAggregate(Operator):
    """Grouped aggregation.

    ``key_exprs`` evaluate the grouping key on input rows; ``agg_specs`` is a
    list of ``(name, arg_expr_or_None, distinct)``; output rows are
    ``key values + aggregate results``.  Scalar aggregation (no GROUP BY over
    a possibly-empty input) yields exactly one row, per the standard.
    """

    physical_name = "Stream Aggregate"
    logical_name = "Aggregate"

    def __init__(self, child, key_exprs, agg_specs, schema, scalar=False):
        super(StreamAggregate, self).__init__([child], schema)
        self.key_exprs = key_exprs
        self.agg_specs = agg_specs
        self.scalar = scalar

    def _new_accumulators(self):
        return [
            agg.make_accumulator(name, distinct=distinct, star=arg_expr is None)
            for name, arg_expr, distinct in self.agg_specs
        ]

    def execute(self, ctx):
        groups = {}
        order = []
        for row in self.children[0].execute(ctx):
            key_values = tuple(expr.eval(row, ctx) for expr in self.key_exprs)
            key = group_key(key_values)
            state = groups.get(key)
            if state is None:
                state = (key_values, self._new_accumulators())
                groups[key] = state
                order.append(key)
            for (name, arg_expr, distinct), accumulator in zip(self.agg_specs, state[1]):
                accumulator.add(1 if arg_expr is None else arg_expr.eval(row, ctx))
        if not groups and self.scalar and not self.key_exprs:
            accumulators = self._new_accumulators()
            yield tuple(acc.result() for acc in accumulators)
            return
        for key in order:
            key_values, accumulators = groups[key]
            yield key_values + tuple(acc.result() for acc in accumulators)


class Concatenation(Operator):
    """UNION ALL of N children with identical arity."""

    physical_name = "Concatenation"

    def __init__(self, children, schema):
        super(Concatenation, self).__init__(children, schema)

    def execute(self, ctx):
        for child in self.children:
            for row in child.execute(ctx):
                yield row


class Segment(Operator):
    """Marks partition boundaries for window computation (pass-through)."""

    physical_name = "Segment"

    def __init__(self, child):
        super(Segment, self).__init__([child], child.schema)

    def execute(self, ctx):
        return self.children[0].execute(ctx)


class SequenceProject(Operator):
    """Computes window functions, appending one column per function.

    ``window_specs``: list of ``WindowSpec`` (see window module).  Rows are
    materialized, partitioned and ordered per spec; output preserves the
    input ordering of rows (stable), with window values appended in spec
    order.
    """

    physical_name = "Sequence Project"
    logical_name = "Compute Scalar"

    def __init__(self, child, window_specs, schema):
        super(SequenceProject, self).__init__([child], schema)
        self.window_specs = window_specs

    def execute(self, ctx):
        from repro.engine.window import compute_windows

        rows = list(self.children[0].execute(ctx))
        extra_columns = compute_windows(rows, self.window_specs, ctx)
        for row, extras in zip(rows, extra_columns):
            yield row + tuple(extras)
