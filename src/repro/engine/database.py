"""Engine facade: the object the platform talks to.

Plays the role of the Azure SQL database in Figure 3 of the paper: executes
SQL, explains queries (SHOWPLAN-style XML), runs DDL (the platform — never
users — issues CREATE/DROP/ALTER), and exposes the catalog.
"""

import logging
import time

from repro.check.plancheck import verify_plan
from repro.engine import ast_nodes as ast
from repro.engine import parser
from repro.engine import semantic
from repro.engine.catalog import Catalog, Column
from repro.engine.executor import execute_plan
from repro.engine.expressions import OutputColumn
from repro.engine.plan_xml import plan_to_xml
from repro.engine.planner import Planner
from repro.engine.types import SQLType, cast_value, format_value, resolve_type_name
from repro.errors import (
    CatalogError,
    Diagnostic,
    ExecutionError,
    LexError,
    ParseError,
    PlanCheckError,
    SQLError,
)

logger = logging.getLogger("repro.engine")


class QueryResult(object):
    """Result of an executed statement."""

    def __init__(self, columns, rows, plan=None, info=None, elapsed=0.0,
                 cache_hit=False, profile=None):
        #: Output column names, in order.
        self.columns = columns
        #: Rows as tuples.
        self.rows = rows
        #: Root physical operator (None for DDL/DML).
        self.plan = plan
        #: PlanInfo with referenced tables/columns/views (None for DDL/DML).
        self.info = info
        #: Wall-clock execution time in seconds.
        self.elapsed = elapsed
        #: True when the rows came from the runtime's result cache.
        self.cache_hit = cache_hit
        #: :class:`repro.obs.profiler.ExecutionProfile` when the statement
        #: was executed with ``profile=True`` (per-operator actuals).
        self.profile = profile

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dicts(self):
        """Rows as a list of column-name dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class ExplainedQuery(object):
    """Result of explaining a statement without executing it."""

    def __init__(self, plan, schema, info, xml, plan_check=None):
        self.plan = plan
        self.schema = schema
        self.info = info
        self.xml = xml
        #: Plan-verifier findings (:class:`repro.check.plancheck.PlanViolation`,
        #: empty list = statically clean; None = verifier disabled).
        self.plan_check = plan_check

    @property
    def total_cost(self):
        return self.plan.total_cost

    @property
    def estimated_rows(self):
        return self.plan.est_rows


class Database(object):
    """An in-memory relational database with a T-SQL-flavoured dialect."""

    def __init__(self, name="sqlshare"):
        self.name = name
        self.catalog = Catalog()
        self.planner = Planner(self.catalog)
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`.  When set,
        #: per-phase timings (parse/analyze/plan/execute) are recorded as
        #: histograms; when None the engine pays only a handful of clock
        #: reads per statement.
        self.metrics = None
        self._phase_histograms = None
        #: Durability hook: called as ``listener(sql, kind)`` after a DDL or
        #: DML statement submitted through :meth:`execute` commits.  The
        #: platform's own mutators never route DDL through ``execute`` (they
        #: use the python-level catalog APIs), so everything arriving here
        #: is a direct engine-level commit that the WAL must replay as SQL.
        self.mutation_listener = None
        #: Lock held across a DDL/DML statement's mutation + listener call
        #: (the storage manager points this at the platform's state lock so
        #: a checkpoint's serialization pass is a consistent cut).
        self.commit_lock = None
        #: Plan-verifier posture for :meth:`execute`:
        #: ``"strict"`` (default — a violating plan raises
        #: :class:`repro.errors.PlanCheckError` before execution, the
        #: fail-closed setting tests and CI run under), ``"warn"`` (serve
        #: mode — log + bump ``check_plan_violations_total`` and run the
        #: plan anyway) or ``"off"``.  Cache hits never re-plan and are
        #: therefore never re-verified, whatever the mode.
        self.plan_check_mode = "strict"
        self._plan_violation_counter = None
        #: Optional cardinality-feedback store
        #: (:class:`repro.adaptive.feedback.CardinalityFeedbackStore`,
        #: duck-typed — the engine only calls ``view_for(sql)``).  When set,
        #: planning consults observed per-operator cardinalities for
        #: fingerprints that have been probed.
        self.feedback = None

    def _phase_histogram(self, phase):
        """The ``repro_engine_<phase>_seconds`` histogram (cached)."""
        if self._phase_histograms is None:
            self._phase_histograms = {}
        histogram = self._phase_histograms.get(phase)
        if histogram is None:
            histogram = self.metrics.histogram(
                "repro_engine_%s_seconds" % phase,
                "Seconds spent in the engine's %s phase." % phase,
            )
            self._phase_histograms[phase] = histogram
        return histogram

    # -- querying ---------------------------------------------------------------

    def execute(self, sql, cancellation=None, cache=None, trace=None,
                profile=False):
        """Parse, analyze, plan and run one statement; returns a QueryResult.

        The semantic analyzer runs between parsing and planning, so name and
        type errors surface with source positions and the full list of
        problems (``.diagnostics`` on the raised error) instead of only the
        first one the planner happens to hit.

        ``cancellation`` is an optional token the executor polls while
        iterating (cooperative cancel/timeout).  ``cache`` is an optional
        :class:`repro.runtime.cache.ResultCache`: queries are looked up by
        normalized SQL, valid only while the catalog version of every
        table/view the original plan reached is unchanged, and stored on
        success.  A hit skips analysis, planning and execution — the entry
        carries the original plan and PlanInfo, which a version match
        guarantees are still accurate — so the caller's permission checks
        and log metadata behave identically at a fraction of the cost.

        ``trace`` is an optional :class:`repro.obs.tracing.Trace`; the
        engine appends one span per phase (cache probe, parse, analyze,
        plan, execute).  ``profile=True`` wraps every physical operator to
        record actual rows and per-operator wall time
        (``QueryResult.profile``); profiled executions bypass the result
        cache so the actuals reflect a real execution.
        """
        metrics = self.metrics
        key = None
        probed = False
        if cache is not None and not profile:
            # Fast path: raw text seen before -> normalized key known ->
            # probe without parsing.  Only select-like statements are ever
            # memoized, so a DDL string can't slip through here.
            key = cache.memoized_key(sql)
            if key is not None:
                probed = True
                entry = self._probe(cache, key, trace)
                if entry is not None:
                    return QueryResult(
                        entry.columns, list(entry.rows),
                        plan=entry.plan, info=entry.info, elapsed=0.0,
                        cache_hit=True,
                    )
        started = time.monotonic()
        statement = parser.parse(sql)
        ended = time.monotonic()
        if metrics is not None:
            self._phase_histogram("parse").observe(ended - started)
        if trace is not None:
            trace.add_span("parse", started, ended)
        if isinstance(statement, (ast.Select, ast.SetOperation, ast.WithQuery)):
            if cache is not None and not profile:
                if key is None:
                    key = cache.key_for(sql, statement)
                if not probed:
                    entry = self._probe(cache, key, trace)
                    if entry is not None:
                        return QueryResult(
                            entry.columns, list(entry.rows),
                            plan=entry.plan, info=entry.info, elapsed=0.0,
                            cache_hit=True,
                        )
            started = time.monotonic()
            analysis = semantic.analyze(statement, self.catalog, source=sql)
            ended = time.monotonic()
            if metrics is not None:
                self._phase_histogram("analyze").observe(ended - started)
            if trace is not None:
                trace.add_span("analyze", started, ended,
                               diagnostics=len(analysis.diagnostics))
            if not analysis.ok:
                raise semantic.error_from_diagnostics(analysis.diagnostics, sql)
            started = time.monotonic()
            feedback = self.feedback
            planned = self.planner.plan(
                statement,
                feedback=(feedback.view_for(sql)
                          if feedback is not None else None),
            )
            ended = time.monotonic()
            if metrics is not None:
                self._phase_histogram("plan").observe(ended - started)
            if trace is not None:
                trace.add_span("plan", started, ended)
            violations = self._verify_planned(planned, sql, metrics, trace)
            info = planned.info
            columns = [column.name for column in planned.schema]
            # Stamp the vector BEFORE executing: if a concurrent writer
            # bumps a referenced object mid-execution, the stored entry
            # carries the pre-write versions and fails validation later,
            # instead of blessing possibly-stale rows with new versions.
            vector = None
            if cache is not None and not profile:
                vector = self.catalog.version_vector(
                    set(info.tables) | set(info.views))
            profiler = None
            if profile:
                from repro.obs.profiler import QueryProfiler

                profiler = QueryProfiler(planned.root)
                profiler.attach()
            started = time.monotonic()
            try:
                rows = execute_plan(planned.root, cancellation=cancellation)
            finally:
                ended = time.monotonic()
                if profiler is not None:
                    profiler.detach()
            elapsed = ended - started
            if metrics is not None:
                self._phase_histogram("execute").observe(elapsed)
            if trace is not None:
                trace.add_span("execute", started, ended, rows=len(rows))
            if cache is not None and not profile:
                cache.store(key, vector, columns, rows,
                            plan=planned.root, info=info)
            return QueryResult(
                columns,
                rows,
                plan=planned.root,
                info=info,
                elapsed=elapsed,
                profile=(
                    profiler.finish(elapsed=elapsed, plan_check=violations)
                    if profiler is not None else None
                ),
            )
        started = time.monotonic()
        analysis = semantic.analyze(statement, self.catalog, source=sql)
        ended = time.monotonic()
        if metrics is not None:
            self._phase_histogram("analyze").observe(ended - started)
        if trace is not None:
            trace.add_span("analyze", started, ended,
                           diagnostics=len(analysis.diagnostics))
        if not analysis.ok:
            raise semantic.error_from_diagnostics(analysis.diagnostics, sql)
        return self._execute_statement(statement, sql)

    def _verify_planned(self, planned, sql, metrics, trace):
        """Run the static plan verifier per :attr:`plan_check_mode`.

        Returns the violation list (None when the verifier is off).
        Strict mode raises on any violation — a plan that fails its own
        type check must not reach the executor; warn mode logs, counts
        (``check_plan_violations_total``) and lets the plan run, which is
        the right posture for a long-lived service.
        """
        if self.plan_check_mode == "off":
            return None
        started = time.monotonic()
        violations = verify_plan(planned.root, planned.schema)
        ended = time.monotonic()
        if metrics is not None:
            self._phase_histogram("check").observe(ended - started)
        if trace is not None:
            trace.add_span("check", started, ended,
                           violations=len(violations))
        if violations:
            if metrics is not None:
                counter = self._plan_violation_counter
                if counter is None:
                    counter = metrics.counter(
                        "check_plan_violations_total",
                        "Plans rejected or flagged by the static plan "
                        "verifier.",
                    )
                    self._plan_violation_counter = counter
                counter.inc(len(violations))
            summary = "; ".join(
                "%s %s" % (violation.code, violation.message)
                for violation in violations[:3])
            if self.plan_check_mode == "strict":
                raise PlanCheckError(
                    "plan verification failed (%d violation(s)): %s"
                    % (len(violations), summary),
                    violations=violations,
                )
            logger.warning("plan verification flagged %d violation(s) for "
                           "%.80r: %s", len(violations), sql, summary)
        return violations

    def check_plan(self, sql):
        """Statically verify the plan a query would get, without running it.

        Returns the list of :class:`repro.check.plancheck.PlanViolation`
        (empty = the plan honours every checked invariant), or None when
        the statement is not a plannable, semantically valid query — the
        REST ``/check`` endpoint and ``repro lint --explain`` surface that
        as the absence of a verdict rather than an error.
        """
        try:
            statement = parser.parse(sql)
            if not isinstance(statement,
                              (ast.Select, ast.SetOperation, ast.WithQuery)):
                return None
            analysis = semantic.analyze(statement, self.catalog, source=sql)
            if not analysis.ok:
                return None
            planned = self.planner.plan(statement)
        except SQLError:
            return None
        return verify_plan(planned.root, planned.schema)

    def _probe(self, cache, key, trace):
        """One result-cache probe (validation included), traced when asked."""
        if trace is None:
            return cache.lookup(key, self.catalog.version_of)
        started = time.monotonic()
        entry = cache.lookup(key, self.catalog.version_of)
        trace.add_span("cache.probe", started, time.monotonic(),
                       hit=entry is not None)
        return entry

    def check(self, sql, lint=True):
        """Statically analyze one statement; nothing is planned or executed.

        Returns the full list of :class:`Diagnostic` findings — syntax
        errors, semantic errors and (unless ``lint`` is False) query-smell
        warnings — instead of raising.  An empty list means the statement is
        clean.
        """
        try:
            statement = parser.parse(sql)
        except (LexError, ParseError) as error:
            return [Diagnostic.from_error(error, sql)]
        if lint:
            from repro.lint import lint_statement

            _result, diagnostics = lint_statement(
                statement, self.catalog, source=sql)
            return diagnostics
        result = semantic.analyze(statement, self.catalog, source=sql)
        return result.sorted_diagnostics()

    def explain(self, sql):
        """Plan a query and return its SHOWPLAN-style XML without running it.

        This is the engine's ``SHOWPLAN_XML`` switch, the entry point for
        Phase 1 of the paper's analysis methodology.
        """
        statement = parser.parse(sql)
        if not isinstance(statement, (ast.Select, ast.SetOperation, ast.WithQuery)):
            raise SQLError("only queries can be explained")
        feedback = self.feedback
        planned = self.planner.plan(
            statement,
            feedback=(feedback.view_for(sql)
                      if feedback is not None else None),
        )
        plan_check = (verify_plan(planned.root, planned.schema)
                      if self.plan_check_mode != "off" else None)
        xml = plan_to_xml(
            planned.root, statement_text=sql,
            expression_ops=planned.info.expression_ops,
            referenced_columns=planned.info.columns,
            plan_check=plan_check,
        )
        return ExplainedQuery(planned.root, planned.schema, planned.info, xml,
                              plan_check=plan_check)

    def query_schema(self, sql):
        """Output columns (name, SQLType) a query would produce."""
        statement = parser.parse(sql)
        if not isinstance(statement, (ast.Select, ast.SetOperation, ast.WithQuery)):
            raise SQLError("not a query")
        planned = self.planner.plan(statement)
        return [(column.name, column.sql_type) for column in planned.schema]

    # -- DDL / DML ----------------------------------------------------------------

    def _execute_statement(self, statement, sql):
        lock = self.commit_lock
        if lock is not None:
            with lock:
                return self._execute_statement_locked(statement, sql)
        return self._execute_statement_locked(statement, sql)

    def _execute_statement_locked(self, statement, sql):
        result = self._apply_statement(statement, sql)
        listener = self.mutation_listener
        if listener is not None:
            listener(sql, type(statement).__name__)
        return result

    def _apply_statement(self, statement, sql):
        if isinstance(statement, ast.CreateTable):
            columns = [
                Column(definition.name, resolve_type_name(definition.type_name))
                for definition in statement.columns
            ]
            self.catalog.create_table(statement.name, columns)
            return QueryResult([], [])
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult([], [])
        if isinstance(statement, ast.CreateView):
            self.create_view(statement.name, statement.query, sql)
            return QueryResult([], [])
        if isinstance(statement, ast.DropView):
            self.catalog.drop_view(statement.name, if_exists=statement.if_exists)
            return QueryResult([], [])
        if isinstance(statement, ast.Insert):
            count = self._insert(statement)
            return QueryResult([], [], elapsed=0.0) if count is None else QueryResult([], [])
        if isinstance(statement, ast.AlterColumn):
            self._alter_column(statement)
            return QueryResult([], [])
        raise SQLError("unsupported statement %s" % type(statement).__name__)

    def create_view(self, name, query_ast, sql=None, replace=False):
        """Create a view from a parsed query (planning it validates it)."""
        planned = self.planner.plan(query_ast)
        columns = []
        seen = set()
        for column in planned.schema:
            key = column.name.lower()
            if key in seen:
                raise CatalogError(
                    "view %r would have duplicate column %r" % (name, column.name)
                )
            seen.add(key)
            columns.append(Column(column.name, column.sql_type))
        # Views discard any ORDER BY, per the SQL standard (the paper notes
        # SQLShare strips it automatically during view creation).
        stripped = _strip_order_by(query_ast)
        return self.catalog.create_view(name, sql or "", stripped, columns, replace=replace)

    def create_table_from_rows(self, name, columns, rows):
        """Bulk-create a table (the ingest path).  ``columns`` are Column."""
        table = self.catalog.create_table(name, columns)
        for row in rows:
            table.insert_row(row)
        # Second bump: the table was visible (empty) during the load.
        self.catalog.bump_version(name)
        return table

    def _insert(self, statement):
        table = self.catalog.get_table(statement.table)
        if statement.query is not None:
            planned = self.planner.plan(statement.query)
            incoming = execute_plan(planned.root)
        else:
            incoming = []
            for row_exprs in statement.rows:
                values = []
                for expr in row_exprs:
                    if not isinstance(expr, ast.Literal):
                        raise SQLError("INSERT VALUES must be literals")
                    values.append(expr.value)
                incoming.append(tuple(values))
        column_order = None
        if statement.columns is not None:
            column_order = [table.column_index(name) for name in statement.columns]
        for values in incoming:
            if column_order is not None:
                row = [None] * len(table.columns)
                if len(values) != len(column_order):
                    raise SQLError("INSERT arity mismatch")
                for target, value in zip(column_order, values):
                    row[target] = value
            else:
                row = list(values)
            coerced = [
                cast_value(value, column.sql_type)
                for value, column in zip(row, table.columns)
            ]
            table.insert_row(coerced)
        self.catalog.bump_version(statement.table)
        return len(incoming)

    def _alter_column(self, statement):
        table = self.catalog.get_table(statement.table)
        target = resolve_type_name(statement.type_name)

        def convert(value):
            if target is SQLType.VARCHAR:
                return format_value(value)
            return cast_value(value, target)

        table.alter_column_type(statement.column, target, convert)
        self.catalog.bump_version(statement.table)

    # -- introspection -----------------------------------------------------------------

    def table_names(self):
        return sorted(table.name for table in self.catalog.tables())

    def view_names(self):
        return sorted(view.name for view in self.catalog.views())

    def row_count(self, table_name):
        return self.catalog.get_table(table_name).stats.row_count

    def total_bytes(self):
        """Rough storage footprint across base tables (quota accounting)."""
        total = 0
        for table in self.catalog.tables():
            total += int(
                table.stats.row_count * table.stats.avg_row_width(table.columns)
            )
        return total


def _strip_order_by(query_ast):
    if isinstance(query_ast, ast.Select) and query_ast.top is None:
        query_ast.order_by = []
    if isinstance(query_ast, ast.SetOperation):
        query_ast.order_by = []
    if isinstance(query_ast, ast.WithQuery):
        _strip_order_by(query_ast.body)
    return query_ast
