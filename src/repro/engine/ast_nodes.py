"""Abstract syntax tree for the engine's SQL dialect.

Nodes are small plain classes with ``__slots__``; equality and repr are
field-based to make parser tests direct.  Every expression node supports
``walk()`` yielding itself and its descendants, which the analysis layer
uses for idiom detection (CASE-to-NULL, CAST, renaming, ...).
"""


class Node(object):
    """Base AST node: slot-based equality, repr and traversal.

    The base class carries one slot, ``span`` (a :class:`repro.errors.Span`
    set by the parser on the productions the analyzer reports on).  It is
    deliberately *excluded* from equality/hash/repr — ``_fields`` iterates
    the subclass ``__slots__`` only — so two structurally identical nodes
    from different source positions still compare equal (the planner's
    aggregate/window rewrite maps depend on that).  Because slots have no
    default, read it with :func:`span_of`.
    """

    __slots__ = ("span",)

    def _fields(self):
        return [(name, getattr(self, name)) for name in self.__slots__]

    def with_span(self, span):
        """Attach a source span (only if one is not already set); returns self."""
        if span is not None and span_of(self) is None:
            self.span = span
        return self

    def __eq__(self, other):
        return type(self) is type(other) and self._fields() == other._fields()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash((type(self).__name__, tuple(repr(v) for _, v in self._fields())))

    def __repr__(self):
        args = ", ".join("%s=%r" % (k, v) for k, v in self._fields())
        return "%s(%s)" % (type(self).__name__, args)

    def children(self):
        """Child Nodes, recursing into lists/tuples of nodes."""
        out = []
        for _, value in self._fields():
            if isinstance(value, Node):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                out.extend(v for v in value if isinstance(v, Node))
        return out

    def walk(self):
        """Yield this node and all descendants, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))


def span_of(node):
    """The node's source :class:`~repro.errors.Span`, or None."""
    return getattr(node, "span", None)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Literal(Node):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class ColumnRef(Node):
    """``name`` or ``table.name``; ``table`` may be None."""

    __slots__ = ("table", "name")

    def __init__(self, name, table=None):
        self.table = table
        self.name = name


class Star(Node):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    __slots__ = ("table",)

    def __init__(self, table=None):
        self.table = table


class BinaryOp(Node):
    """Arithmetic/comparison/logical binary operator; op is canonical text."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Node):
    """``-x``, ``+x`` or ``NOT x``."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class IsNull(Node):
    __slots__ = ("operand", "negated")

    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated


class Between(Node):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand, low, high, negated=False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated


class InList(Node):
    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand, items, negated=False):
        self.operand = operand
        self.items = items
        self.negated = negated


class InSubquery(Node):
    __slots__ = ("operand", "subquery", "negated")

    def __init__(self, operand, subquery, negated=False):
        self.operand = operand
        self.subquery = subquery
        self.negated = negated


class Exists(Node):
    __slots__ = ("subquery", "negated")

    def __init__(self, subquery, negated=False):
        self.subquery = subquery
        self.negated = negated


class ScalarSubquery(Node):
    __slots__ = ("subquery",)

    def __init__(self, subquery):
        self.subquery = subquery


class Like(Node):
    """LIKE with optional ESCAPE (escape kept simple: a literal char)."""

    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand, pattern, negated=False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated


class Case(Node):
    """Searched or simple CASE.  For simple CASE ``operand`` is not None."""

    __slots__ = ("operand", "whens", "else_result")

    def __init__(self, whens, else_result=None, operand=None):
        self.operand = operand
        self.whens = whens  # list of (condition_or_value, result)
        self.else_result = else_result

    def children(self):
        out = []
        if self.operand is not None:
            out.append(self.operand)
        for cond, result in self.whens:
            out.append(cond)
            out.append(result)
        if self.else_result is not None:
            out.append(self.else_result)
        return out


class Cast(Node):
    """CAST/CONVERT/TRY_CAST; ``type_name`` is the raw SQL type text."""

    __slots__ = ("operand", "type_name", "try_cast")

    def __init__(self, operand, type_name, try_cast=False):
        self.operand = operand
        self.type_name = type_name
        self.try_cast = try_cast


class FuncCall(Node):
    """Scalar or aggregate function call.  ``distinct`` for COUNT(DISTINCT x)."""

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name, args, distinct=False):
        self.name = name.lower()
        self.args = args
        self.distinct = distinct


class WindowFunction(Node):
    """``func(args) OVER (PARTITION BY ... ORDER BY ...)``."""

    __slots__ = ("func", "partition_by", "order_by")

    def __init__(self, func, partition_by, order_by):
        self.func = func  # a FuncCall
        self.partition_by = partition_by  # list of expressions
        self.order_by = order_by  # list of OrderItem

    def children(self):
        out = [self.func]
        out.extend(self.partition_by)
        out.extend(item.expr for item in self.order_by)
        return out


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


class SelectItem(Node):
    """One select-list entry: an expression with an optional alias."""

    __slots__ = ("expr", "alias")

    def __init__(self, expr, alias=None):
        self.expr = expr
        self.alias = alias


class OrderItem(Node):
    __slots__ = ("expr", "descending")

    def __init__(self, expr, descending=False):
        self.expr = expr
        self.descending = descending


class TableRef(Node):
    """A named table or view in FROM; alias optional."""

    __slots__ = ("name", "alias")

    def __init__(self, name, alias=None):
        self.name = name
        self.alias = alias


class SubqueryRef(Node):
    """A derived table ``(SELECT ...) AS alias``."""

    __slots__ = ("query", "alias")

    def __init__(self, query, alias):
        self.query = query
        self.alias = alias


class Join(Node):
    """``kind`` in {'inner','left','right','full','cross'}."""

    __slots__ = ("kind", "left", "right", "condition")

    def __init__(self, kind, left, right, condition=None):
        self.kind = kind
        self.left = left
        self.right = right
        self.condition = condition


class Select(Node):
    """A single SELECT block (no set operators at this level)."""

    __slots__ = (
        "items",
        "from_clause",
        "where",
        "group_by",
        "having",
        "order_by",
        "distinct",
        "top",
        "top_percent",
    )

    def __init__(
        self,
        items,
        from_clause=None,
        where=None,
        group_by=None,
        having=None,
        order_by=None,
        distinct=False,
        top=None,
        top_percent=False,
    ):
        self.items = items
        self.from_clause = from_clause
        self.where = where
        self.group_by = group_by or []
        self.having = having
        self.order_by = order_by or []
        self.distinct = distinct
        self.top = top
        self.top_percent = top_percent


class CommonTableExpression(Node):
    """One ``name [(columns)] AS (query)`` member of a WITH clause."""

    __slots__ = ("name", "columns", "query")

    def __init__(self, name, query, columns=None):
        self.name = name
        self.columns = columns
        self.query = query


class WithQuery(Node):
    """``WITH cte [, ...] <query>`` — non-recursive CTEs."""

    __slots__ = ("ctes", "body")

    def __init__(self, ctes, body):
        self.ctes = ctes
        self.body = body


class SetOperation(Node):
    """UNION [ALL] / INTERSECT / EXCEPT between two query expressions."""

    __slots__ = ("op", "all", "left", "right", "order_by")

    def __init__(self, op, left, right, all=False, order_by=None):
        self.op = op
        self.all = all
        self.left = left
        self.right = right
        self.order_by = order_by or []


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class CreateView(Node):
    __slots__ = ("name", "query", "or_replace")

    def __init__(self, name, query, or_replace=False):
        self.name = name
        self.query = query
        self.or_replace = or_replace


class DropView(Node):
    __slots__ = ("name", "if_exists")

    def __init__(self, name, if_exists=False):
        self.name = name
        self.if_exists = if_exists


class ColumnDef(Node):
    __slots__ = ("name", "type_name")

    def __init__(self, name, type_name):
        self.name = name
        self.type_name = type_name


class CreateTable(Node):
    __slots__ = ("name", "columns")

    def __init__(self, name, columns):
        self.name = name
        self.columns = columns


class DropTable(Node):
    __slots__ = ("name", "if_exists")

    def __init__(self, name, if_exists=False):
        self.name = name
        self.if_exists = if_exists


class Insert(Node):
    """INSERT INTO t [(cols)] VALUES (...), (...) or INSERT ... SELECT."""

    __slots__ = ("table", "columns", "rows", "query")

    def __init__(self, table, columns=None, rows=None, query=None):
        self.table = table
        self.columns = columns
        self.rows = rows
        self.query = query


class AlterColumn(Node):
    """ALTER TABLE t ALTER COLUMN c TYPE — the ingest fallback path."""

    __slots__ = ("table", "column", "type_name")

    def __init__(self, table, column, type_name):
        self.table = table
        self.column = column
        self.type_name = type_name
