"""SQL type system: types, NULL semantics, casting and coercion.

The engine models the handful of types the SQLShare ingest pipeline infers
(Section 3.1 of the paper): integers, floats, decimals, booleans (BIT),
dates/datetimes and strings.  Values are represented by plain Python objects
(``int``, ``float``, ``decimal.Decimal``, ``bool``, ``datetime``, ``str``)
with SQL ``NULL`` represented by ``None``.
"""

import datetime as _dt
import enum
from decimal import Decimal, InvalidOperation

from repro.errors import ExecutionError, TypeCheckError


class SQLType(enum.Enum):
    """The engine's value types, ordered roughly by specificity."""

    BIT = "bit"
    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DECIMAL = "decimal"
    DATE = "date"
    DATETIME = "datetime"
    VARCHAR = "varchar"
    # Pseudo-type for literals/expressions whose type is unknown (NULL).
    UNKNOWN = "unknown"

    def __repr__(self):
        return "SQLType.%s" % self.name


#: Aliases accepted by ``CAST(expr AS <name>)`` and DDL, T-SQL flavoured.
TYPE_ALIASES = {
    "bit": SQLType.BIT,
    "bool": SQLType.BIT,
    "boolean": SQLType.BIT,
    "tinyint": SQLType.INT,
    "smallint": SQLType.INT,
    "int": SQLType.INT,
    "integer": SQLType.INT,
    "bigint": SQLType.BIGINT,
    "real": SQLType.FLOAT,
    "float": SQLType.FLOAT,
    "double": SQLType.FLOAT,
    "decimal": SQLType.DECIMAL,
    "numeric": SQLType.DECIMAL,
    "money": SQLType.DECIMAL,
    "date": SQLType.DATE,
    "datetime": SQLType.DATETIME,
    "datetime2": SQLType.DATETIME,
    "smalldatetime": SQLType.DATETIME,
    "timestamp": SQLType.DATETIME,
    "char": SQLType.VARCHAR,
    "nchar": SQLType.VARCHAR,
    "varchar": SQLType.VARCHAR,
    "nvarchar": SQLType.VARCHAR,
    "text": SQLType.VARCHAR,
    "ntext": SQLType.VARCHAR,
    "string": SQLType.VARCHAR,
}

_NUMERIC = {SQLType.BIT, SQLType.INT, SQLType.BIGINT, SQLType.FLOAT, SQLType.DECIMAL}
_TEMPORAL = {SQLType.DATE, SQLType.DATETIME}

#: Widening order used when unifying branch types (CASE, set operations).
_WIDENING = [
    SQLType.BIT,
    SQLType.INT,
    SQLType.BIGINT,
    SQLType.DECIMAL,
    SQLType.FLOAT,
    SQLType.DATE,
    SQLType.DATETIME,
    SQLType.VARCHAR,
]

#: Average on-disk width in bytes per type, used by the cost model's rowSize.
TYPE_WIDTH = {
    SQLType.BIT: 1,
    SQLType.INT: 4,
    SQLType.BIGINT: 8,
    SQLType.FLOAT: 8,
    SQLType.DECIMAL: 9,
    SQLType.DATE: 3,
    SQLType.DATETIME: 8,
    SQLType.VARCHAR: 19,
    SQLType.UNKNOWN: 8,
}

_DATE_FORMATS = ("%Y-%m-%d", "%Y/%m/%d", "%m/%d/%Y", "%m-%d-%Y", "%d-%b-%Y")
_DATETIME_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%m/%d/%Y %H:%M:%S",
    "%Y-%m-%d %H:%M:%S.%f",
)


def resolve_type_name(name):
    """Map a SQL type name (possibly with ``(p, s)`` stripped) to a SQLType.

    Raises :class:`TypeCheckError` on an unknown name.
    """
    base = name.strip().lower().split("(")[0].strip()
    try:
        return TYPE_ALIASES[base]
    except KeyError:
        raise TypeCheckError("unknown type name: %r" % name)


def is_numeric(sql_type):
    """Whether the type participates in arithmetic without casting."""
    return sql_type in _NUMERIC


def is_temporal(sql_type):
    """Whether the type is DATE or DATETIME."""
    return sql_type in _TEMPORAL


def unify_types(left, right):
    """Common supertype of two branch types, per the widening order.

    UNKNOWN (NULL literal) unifies with anything.  Numeric and temporal types
    widen along ``_WIDENING``; any mix involving VARCHAR becomes VARCHAR,
    matching the forgiving behaviour SQLShare relies on for dirty data.
    """
    if left == right:
        return left
    if left is SQLType.UNKNOWN:
        return right
    if right is SQLType.UNKNOWN:
        return left
    if SQLType.VARCHAR in (left, right):
        return SQLType.VARCHAR
    if left in _NUMERIC and right in _NUMERIC:
        return _WIDENING[max(_WIDENING.index(left), _WIDENING.index(right))]
    if left in _TEMPORAL and right in _TEMPORAL:
        return SQLType.DATETIME
    # Mixed numeric/temporal: fall back to string, the universal type.
    return SQLType.VARCHAR


def parse_date(text):
    """Parse a date string; return ``datetime.date`` or raise ValueError."""
    text = text.strip()
    for fmt in _DATE_FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    raise ValueError("not a date: %r" % text)


def parse_datetime(text):
    """Parse a datetime string; return ``datetime.datetime`` or raise."""
    text = text.strip()
    for fmt in _DATETIME_FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
    # A bare date is an acceptable datetime (midnight), as in SQL Server.
    return _dt.datetime.combine(parse_date(text), _dt.time())


def cast_value(value, target, strict=True):
    """Cast a Python value to ``target`` following T-SQL CAST semantics.

    NULL casts to NULL.  With ``strict`` a failed conversion raises
    :class:`ExecutionError` (mirroring the mid-ingest type exceptions the
    paper describes); otherwise it returns ``None`` (TRY_CAST).
    """
    if value is None:
        return None
    try:
        return _cast(value, target)
    except (ValueError, TypeError, InvalidOperation, OverflowError) as exc:
        if strict:
            raise ExecutionError(
                "cannot cast %r to %s: %s" % (value, target.value, exc)
            )
        return None


def _cast(value, target):
    if target in (SQLType.INT, SQLType.BIGINT):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int,)):
            return value
        if isinstance(value, (float, Decimal)):
            return int(value)
        if isinstance(value, str):
            text = value.strip()
            # T-SQL rejects '1.5' for INT; we accept integral-looking floats
            # only when exact, which keeps ingest inference honest.
            as_float = float(text)
            as_int = int(as_float)
            if as_int != as_float:
                raise ValueError("fractional value for integer cast")
            return as_int
        raise ValueError("unsupported source")
    if target is SQLType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, Decimal):
            return float(value)
        if isinstance(value, str):
            return float(value.strip())
        raise ValueError("unsupported source")
    if target is SQLType.DECIMAL:
        if isinstance(value, bool):
            return Decimal(int(value))
        if isinstance(value, (int, Decimal)):
            return Decimal(value)
        if isinstance(value, float):
            return Decimal(str(value))
        if isinstance(value, str):
            return Decimal(value.strip())
        raise ValueError("unsupported source")
    if target is SQLType.BIT:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float, Decimal)):
            return value != 0
        if isinstance(value, str):
            text = value.strip().lower()
            if text in ("true", "1", "yes", "t", "y"):
                return True
            if text in ("false", "0", "no", "f", "n"):
                return False
            raise ValueError("not a bit")
        raise ValueError("unsupported source")
    if target is SQLType.DATE:
        if isinstance(value, _dt.datetime):
            return value.date()
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise ValueError("unsupported source")
    if target is SQLType.DATETIME:
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, _dt.date):
            return _dt.datetime.combine(value, _dt.time())
        if isinstance(value, str):
            return parse_datetime(value)
        raise ValueError("unsupported source")
    if target is SQLType.VARCHAR:
        return format_value(value)
    if target is SQLType.UNKNOWN:
        return value
    raise ValueError("unsupported target %s" % target)


def format_value(value):
    """Render a value the way T-SQL renders it when cast to VARCHAR."""
    if value is None:
        return None
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        # Avoid '1.0' for integral floats, matching SQL Server's CONVERT.
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, _dt.datetime):
        return value.strftime("%Y-%m-%d %H:%M:%S")
    if isinstance(value, _dt.date):
        return value.strftime("%Y-%m-%d")
    return str(value)


def infer_literal_type(value):
    """SQLType of a Python value produced by the lexer or client code."""
    if value is None:
        return SQLType.UNKNOWN
    if isinstance(value, bool):
        return SQLType.BIT
    if isinstance(value, int):
        return SQLType.BIGINT if abs(value) > 2**31 - 1 else SQLType.INT
    if isinstance(value, float):
        return SQLType.FLOAT
    if isinstance(value, Decimal):
        return SQLType.DECIMAL
    if isinstance(value, _dt.datetime):
        return SQLType.DATETIME
    if isinstance(value, _dt.date):
        return SQLType.DATE
    if isinstance(value, str):
        return SQLType.VARCHAR
    raise TypeCheckError("unsupported literal %r" % (value,))


def value_width(value, sql_type):
    """Estimated byte width of a concrete value, for statistics."""
    if value is None:
        return 1
    if sql_type is SQLType.VARCHAR:
        return max(1, len(str(value)))
    return TYPE_WIDTH[sql_type]
