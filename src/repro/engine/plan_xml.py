"""SHOWPLAN_XML-style plan documents.

The engine's equivalent of ``SET SHOWPLAN_XML ON`` (Section 4 of the paper):
an XML document of nested ``RelOp`` elements carrying physical/logical
operator names, estimated rows, row size, I/O and CPU costs, predicates and
output columns.  Phase 1 of the workload framework parses this XML back
into the JSON plans of Listing 1 — deliberately round-tripping through XML
so the reproduction exercises the same extraction path the authors used.
"""

import xml.etree.ElementTree as ET

NAMESPACE = "http://schemas.microsoft.com/sqlserver/2004/07/showplan"


def plan_to_xml(root_operator, statement_text="", expression_ops=None,
                referenced_columns=None, plan_check=None):
    """Render a physical plan as a SHOWPLAN-style XML string.

    ``expression_ops`` lists the intrinsic/arithmetic expression operators
    the optimizer saw in the statement (``like``, ``ADD``, ``patindex``,
    ...); they are emitted under ``<ExpressionList>`` so Phase 1 can pull
    them out with XPath, as the paper describes.

    ``plan_check`` carries the static plan verifier's findings
    (:mod:`repro.check.plancheck`): a ``<PlanCheck>`` element records the
    verdict (``Result="ok"`` or one ``<Violation>`` per finding) so a plan
    archive is self-describing about which plans were statically suspect.
    """
    showplan = ET.Element("ShowPlanXML", {"xmlns": NAMESPACE, "Version": "1.2"})
    statements = ET.SubElement(showplan, "BatchSequence")
    batch = ET.SubElement(statements, "Batch")
    stmts = ET.SubElement(batch, "Statements")
    stmt = ET.SubElement(
        stmts,
        "StmtSimple",
        {
            "StatementText": statement_text,
            "StatementType": "SELECT",
            "StatementSubTreeCost": _fmt(root_operator.total_cost),
            "StatementEstRows": _fmt(root_operator.est_rows),
        },
    )
    if expression_ops:
        expressions = ET.SubElement(stmt, "ExpressionList")
        for name in expression_ops:
            ET.SubElement(expressions, "ExpressionOp", {"Name": name})
    if referenced_columns:
        referenced = ET.SubElement(stmt, "ReferencedColumns")
        for table, column in sorted(referenced_columns):
            ET.SubElement(
                referenced, "ColumnReference", {"Table": table, "Column": column}
            )
    if plan_check is not None:
        check = ET.SubElement(
            stmt, "PlanCheck",
            {"Result": "ok" if not plan_check else "violations"})
        for violation in plan_check:
            ET.SubElement(check, "Violation", {
                "Code": violation.code,
                "Rule": violation.name,
                "Operator": violation.operator,
                "Path": violation.path,
                "Message": violation.message,
            })
    query_plan = ET.SubElement(stmt, "QueryPlan")
    _emit_relop(query_plan, root_operator)
    return ET.tostring(showplan, encoding="unicode")


def _emit_relop(parent, operator):
    relop = ET.SubElement(
        parent,
        "RelOp",
        {
            "PhysicalOp": operator.physical_name,
            "LogicalOp": operator.logical,
            "EstimateRows": _fmt(operator.est_rows),
            "AvgRowSize": _fmt(operator.row_size),
            "EstimateIO": _fmt(operator.io_cost),
            "EstimateCPU": _fmt(operator.cpu_cost),
            "EstimatedTotalSubtreeCost": _fmt(operator.total_cost),
        },
    )
    output = ET.SubElement(relop, "OutputList")
    for column in operator.schema:
        attrs = {"Column": column.name}
        if column.source_table:
            attrs["Table"] = column.source_table
            if column.source_column:
                attrs["SourceColumn"] = column.source_column
        ET.SubElement(output, "ColumnReference", attrs)
    if operator.filters:
        predicate = ET.SubElement(relop, "Predicate")
        for text in operator.filters:
            ET.SubElement(predicate, "ScalarOperator", {"ScalarString": text})
    for key, value in sorted(operator.properties.items()):
        ET.SubElement(relop, "Property", {"Name": key, "Value": str(value)})
    for child in operator.children:
        _emit_relop(relop, child)
    for subplan in operator.subplans:
        wrapper = ET.SubElement(relop, "Subplan")
        _emit_relop(wrapper, subplan)


def _fmt(value):
    return "%.10g" % float(value)
