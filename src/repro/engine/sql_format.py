"""SQL rendering: AST -> canonical SQL text.

The inverse of the parser (round-trip property: ``parse(render(parse(q)))``
equals ``parse(q)``).  Used by the recommender and tooling to display
normalized queries, and heavily exercised by the property-based tests.
"""

from repro.engine import ast_nodes as ast
from repro.errors import SQLError

_IDENT_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")

_KEYWORD_WORDS = frozenset(
    """select from where group by having order asc desc distinct all top as on
    inner left right full outer cross join union intersect except and or not in
    is null like between exists case when then else end cast convert create
    view table drop insert into values alter column add with over partition
    rows range preceding following unbounded current row true false percent
    offset fetch next first only try_cast""".split()
)


def render_identifier(name):
    """Bracket-quote when the name is not a plain identifier or collides
    with a keyword."""
    if name and all(ch in _IDENT_SAFE for ch in name) and not name[0].isdigit() \
            and name.lower() not in _KEYWORD_WORDS:
        return name
    return "[%s]" % name


def render_literal(value):
    import datetime as _dt
    from decimal import Decimal

    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, Decimal)):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, _dt.datetime):
        return "'%s'" % value.strftime("%Y-%m-%d %H:%M:%S")
    if isinstance(value, _dt.date):
        return "'%s'" % value.strftime("%Y-%m-%d")
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    raise SQLError("cannot render literal %r" % (value,))


def render_statement(node):
    """Render any statement AST back to SQL text."""
    if isinstance(node, (ast.Select, ast.SetOperation, ast.WithQuery)):
        return render_query(node)
    if isinstance(node, ast.CreateView):
        return "CREATE VIEW %s AS %s" % (
            render_identifier(node.name), render_query(node.query)
        )
    if isinstance(node, ast.DropView):
        return "DROP VIEW %s%s" % (
            "IF EXISTS " if node.if_exists else "", render_identifier(node.name)
        )
    if isinstance(node, ast.CreateTable):
        columns = ", ".join(
            "%s %s" % (render_identifier(c.name), c.type_name) for c in node.columns
        )
        return "CREATE TABLE %s (%s)" % (render_identifier(node.name), columns)
    if isinstance(node, ast.DropTable):
        return "DROP TABLE %s%s" % (
            "IF EXISTS " if node.if_exists else "", render_identifier(node.name)
        )
    if isinstance(node, ast.Insert):
        return _render_insert(node)
    if isinstance(node, ast.AlterColumn):
        return "ALTER TABLE %s ALTER COLUMN %s %s" % (
            render_identifier(node.table), render_identifier(node.column),
            node.type_name,
        )
    raise SQLError("cannot render %s" % type(node).__name__)


def _render_insert(node):
    target = render_identifier(node.table)
    columns = ""
    if node.columns:
        columns = " (%s)" % ", ".join(render_identifier(c) for c in node.columns)
    if node.query is not None:
        return "INSERT INTO %s%s %s" % (target, columns, render_query(node.query))
    rows = ", ".join(
        "(%s)" % ", ".join(render_expr(value) for value in row) for row in node.rows
    )
    return "INSERT INTO %s%s VALUES %s" % (target, columns, rows)


def render_query(node):
    if isinstance(node, ast.WithQuery):
        ctes = []
        for cte in node.ctes:
            declared = ""
            if cte.columns:
                declared = " (%s)" % ", ".join(
                    render_identifier(c) for c in cte.columns
                )
            ctes.append(
                "%s%s AS (%s)" % (render_identifier(cte.name), declared,
                                  render_query(cte.query))
            )
        return "WITH %s %s" % (", ".join(ctes), render_query(node.body))
    if isinstance(node, ast.SetOperation):
        word = node.op.upper() + (" ALL" if node.all else "")
        text = "%s %s %s" % (
            _paren_term(node.left), word, _paren_term(node.right)
        )
        if node.order_by:
            text += " ORDER BY " + ", ".join(_order_item(i) for i in node.order_by)
        return text
    if isinstance(node, ast.Select):
        return _render_select(node)
    raise SQLError("cannot render %s as a query" % type(node).__name__)


def _paren_term(node):
    if isinstance(node, ast.Select) and not node.order_by:
        return render_query(node)
    return "(%s)" % render_query(node)


def _render_select(node):
    parts = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    if node.top is not None:
        parts.append("TOP %d%s" % (node.top, " PERCENT" if node.top_percent else ""))
    parts.append(", ".join(_select_item(item) for item in node.items))
    if node.from_clause is not None:
        parts.append("FROM " + _table_source(node.from_clause))
    if node.where is not None:
        parts.append("WHERE " + render_expr(node.where))
    if node.group_by:
        parts.append("GROUP BY " + ", ".join(render_expr(e) for e in node.group_by))
    if node.having is not None:
        parts.append("HAVING " + render_expr(node.having))
    if node.order_by:
        parts.append("ORDER BY " + ", ".join(_order_item(i) for i in node.order_by))
    return " ".join(parts)


def _select_item(item):
    if isinstance(item.expr, ast.Star):
        text = "%s.*" % render_identifier(item.expr.table) if item.expr.table else "*"
        return text
    text = render_expr(item.expr)
    if item.alias:
        text += " AS %s" % render_identifier(item.alias)
    return text


def _order_item(item):
    return render_expr(item.expr) + (" DESC" if item.descending else "")


def _table_source(node):
    if isinstance(node, ast.TableRef):
        text = render_identifier(node.name)
        if node.alias:
            text += " AS %s" % render_identifier(node.alias)
        return text
    if isinstance(node, ast.SubqueryRef):
        return "(%s) AS %s" % (render_query(node.query), render_identifier(node.alias))
    if isinstance(node, ast.Join):
        left = _table_source(node.left)
        right = _table_source(node.right)
        if node.kind == "cross":
            return "%s CROSS JOIN %s" % (left, right)
        word = {"inner": "INNER JOIN", "left": "LEFT OUTER JOIN",
                "right": "RIGHT OUTER JOIN", "full": "FULL OUTER JOIN"}[node.kind]
        return "%s %s %s ON %s" % (left, word, right, render_expr(node.condition))
    raise SQLError("cannot render FROM element %s" % type(node).__name__)


#: Binary-operator precedence for minimal parenthesization.
_PRECEDENCE = {
    "or": 1, "and": 2,
    "=": 4, "<>": 4, "<": 4, ">": 4, "<=": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5, "&": 5, "|": 5, "^": 5,
    "*": 6, "/": 6, "%": 6,
}


def _wrap_predicate(text, parent_precedence):
    """Predicate forms (IS NULL, LIKE, IN, ...) bind at comparison level;
    when embedded under a comparison or arithmetic operator they need
    parentheses to re-parse to the same tree."""
    if parent_precedence >= 4:
        return "(%s)" % text
    return text


def render_expr(node, parent_precedence=0):
    if isinstance(node, ast.Literal):
        return render_literal(node.value)
    if isinstance(node, ast.ColumnRef):
        if node.table:
            return "%s.%s" % (render_identifier(node.table), render_identifier(node.name))
        return render_identifier(node.name)
    if isinstance(node, ast.Star):
        return "*"
    if isinstance(node, ast.BinaryOp):
        precedence = _PRECEDENCE.get(node.op, 3)
        word = node.op.upper() if node.op in ("and", "or") else node.op
        text = "%s %s %s" % (
            render_expr(node.left, precedence),
            word,
            render_expr(node.right, precedence + 1),
        )
        if precedence < parent_precedence:
            return "(%s)" % text
        return text
    if isinstance(node, ast.UnaryOp):
        if node.op == "not":
            text = "NOT %s" % render_expr(node.operand, 3)
            return "(%s)" % text if parent_precedence > 2 else text
        return "%s%s" % (node.op, render_expr(node.operand, 7))
    if isinstance(node, ast.IsNull):
        text = "%s IS %sNULL" % (
            render_expr(node.operand, 4), "NOT " if node.negated else ""
        )
        return _wrap_predicate(text, parent_precedence)
    if isinstance(node, ast.Like):
        text = "%s %sLIKE %s" % (
            render_expr(node.operand, 4), "NOT " if node.negated else "",
            render_expr(node.pattern, 4),
        )
        return _wrap_predicate(text, parent_precedence)
    if isinstance(node, ast.Between):
        text = "%s %sBETWEEN %s AND %s" % (
            render_expr(node.operand, 4), "NOT " if node.negated else "",
            render_expr(node.low, 5), render_expr(node.high, 5),
        )
        return _wrap_predicate(text, parent_precedence)
    if isinstance(node, ast.InList):
        items = ", ".join(render_expr(item) for item in node.items)
        text = "%s %sIN (%s)" % (
            render_expr(node.operand, 4), "NOT " if node.negated else "", items
        )
        return _wrap_predicate(text, parent_precedence)
    if isinstance(node, ast.InSubquery):
        text = "%s %sIN (%s)" % (
            render_expr(node.operand, 4), "NOT " if node.negated else "",
            render_query(node.subquery),
        )
        return _wrap_predicate(text, parent_precedence)
    if isinstance(node, ast.Exists):
        text = "%sEXISTS (%s)" % (
            "NOT " if node.negated else "", render_query(node.subquery)
        )
        return _wrap_predicate(text, parent_precedence)
    if isinstance(node, ast.ScalarSubquery):
        return "(%s)" % render_query(node.subquery)
    if isinstance(node, ast.Case):
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(render_expr(node.operand))
        for condition, result in node.whens:
            parts.append("WHEN %s THEN %s" % (render_expr(condition), render_expr(result)))
        if node.else_result is not None:
            parts.append("ELSE %s" % render_expr(node.else_result))
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, ast.Cast):
        word = "TRY_CAST" if node.try_cast else "CAST"
        return "%s(%s AS %s)" % (word, render_expr(node.operand), node.type_name)
    if isinstance(node, ast.FuncCall):
        args = ", ".join(render_expr(arg) for arg in node.args)
        if node.distinct:
            args = "DISTINCT " + args
        return "%s(%s)" % (node.name.upper(), args)
    if isinstance(node, ast.WindowFunction):
        over = []
        if node.partition_by:
            over.append(
                "PARTITION BY " + ", ".join(render_expr(e) for e in node.partition_by)
            )
        if node.order_by:
            over.append(
                "ORDER BY " + ", ".join(_order_item(i) for i in node.order_by)
            )
        return "%s OVER (%s)" % (render_expr(node.func), " ".join(over))
    raise SQLError("cannot render expression %s" % type(node).__name__)
