"""Tokenizer for the engine's T-SQL-flavoured dialect."""

from decimal import Decimal

from repro.errors import LexError

# Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
PARAM = "PARAM"
EOF = "EOF"

KEYWORDS = frozenset(
    """
    select from where group by having order asc desc distinct all top
    as on inner left right full outer cross join union intersect except
    and or not in is null like between exists case when then else end
    cast convert create view table drop insert into values alter column
    add with over partition rows range preceding following unbounded current row
    true false percent offset fetch next first only try_cast
    """.split()
)

_TWO_CHAR_OPS = ("<>", "!=", ">=", "<=", "||")
_ONE_CHAR_OPS = "+-*/%=<>&|^"
_PUNCT = "(),.;"


class Token(object):
    """A single lexical token.

    ``value`` holds the canonical form: lower-case text for keywords, the
    spelled identifier for IDENT (unquoted identifiers keep their original
    spelling; name resolution is case-insensitive), a Python number for
    NUMBER and the decoded string for STRING.

    ``pos``/``end`` are the half-open byte range of the token in the source
    text; ``line``/``col`` are 1-based and point at the first character.
    """

    __slots__ = ("kind", "value", "pos", "end", "line", "col")

    def __init__(self, kind, value, pos, end=None, line=0, col=0):
        self.kind = kind
        self.value = value
        self.pos = pos
        self.end = pos if end is None else end
        self.line = line
        self.col = col

    def matches(self, kind, value=None):
        if self.kind != kind:
            return False
        if value is None:
            return True
        if isinstance(value, (tuple, frozenset, set, list)):
            return self.value in value
        return self.value == value

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(sql):
    """Tokenize a SQL string; returns a list of Tokens ending in EOF.

    Supports ``--`` line comments and ``/* */`` block comments, quoted
    identifiers in double quotes or square brackets, standard single-quoted
    strings with doubled-quote escaping, and numeric literals (int, decimal
    point, scientific notation).
    """
    tokens = []
    i, n = 0, len(sql)
    line, line_start = 1, 0

    def emit(kind, value, start, end):
        tokens.append(Token(kind, value, start, end, line, start - line_start + 1))

    def advance_lines(start, end):
        # Fold any newlines inside sql[start:end] into the line counter.
        nonlocal line, line_start
        newlines = sql.count("\n", start, end)
        if newlines:
            line += newlines
            line_start = sql.rfind("\n", start, end) + 1

    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            if ch == "\n":
                line += 1
                line_start = i + 1
            i += 1
            continue
        if sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            if nl >= 0:
                line += 1
                line_start = i
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", i)
            advance_lines(i, end + 2)
            i = end + 2
            continue
        if ch == "'":
            start = i
            value, i = _read_string(sql, i)
            emit(STRING, value, start, i)
            advance_lines(start, i)
            continue
        if ch == '"' or ch == "[":
            start = i
            value, i = _read_quoted_ident(sql, i)
            emit(IDENT, value, start, i)
            advance_lines(start, i)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            value, i = _read_number(sql, i)
            emit(NUMBER, value, start, i)
            continue
        if ch.isalpha() or ch == "_" or ch == "@" or ch == "#":
            start = i
            value, i = _read_word(sql, i)
            lowered = value.lower()
            if lowered in KEYWORDS:
                emit(KEYWORD, lowered, start, i)
            else:
                emit(IDENT, value, start, i)
            continue
        if ch == "?":
            emit(PARAM, "?", i, i + 1)
            i += 1
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            emit(OP, "<>" if two == "!=" else two, i, i + 2)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            emit(OP, ch, i, i + 1)
            i += 1
            continue
        if ch in _PUNCT:
            emit(PUNCT, ch, i, i + 1)
            i += 1
            continue
        raise LexError("unexpected character %r" % ch, i)
    tokens.append(Token(EOF, None, n, n, line, n - line_start + 1))
    return tokens


def _read_string(sql, i):
    # i points at the opening quote.
    parts = []
    i += 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexError("unterminated string literal", i)


def _read_quoted_ident(sql, i):
    close = '"' if sql[i] == '"' else "]"
    end = sql.find(close, i + 1)
    if end < 0:
        raise LexError("unterminated quoted identifier", i)
    return sql[i + 1 : end], end + 1


def _read_number(sql, i):
    n = len(sql)
    start = i
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1 : i + 2]
            if nxt.isdigit() or (nxt in "+-" and sql[i + 2 : i + 3].isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    text = sql[start:i]
    if seen_exp:
        return float(text), i
    if seen_dot:
        return Decimal(text), i
    return int(text), i


def _read_word(sql, i):
    n = len(sql)
    start = i
    while i < n and (sql[i].isalnum() or sql[i] in "_@#$"):
        i += 1
    return sql[start:i], i
