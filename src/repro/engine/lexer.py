"""Tokenizer for the engine's T-SQL-flavoured dialect."""

from decimal import Decimal

from repro.errors import LexError

# Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
PARAM = "PARAM"
EOF = "EOF"

KEYWORDS = frozenset(
    """
    select from where group by having order asc desc distinct all top
    as on inner left right full outer cross join union intersect except
    and or not in is null like between exists case when then else end
    cast convert create view table drop insert into values alter column
    add with over partition rows range preceding following unbounded current row
    true false percent offset fetch next first only try_cast
    """.split()
)

_TWO_CHAR_OPS = ("<>", "!=", ">=", "<=", "||")
_ONE_CHAR_OPS = "+-*/%=<>&|^"
_PUNCT = "(),.;"


class Token(object):
    """A single lexical token.

    ``value`` holds the canonical form: lower-case text for keywords, the
    spelled identifier for IDENT (unquoted identifiers keep their original
    spelling; name resolution is case-insensitive), a Python number for
    NUMBER and the decoded string for STRING.
    """

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind
        self.value = value
        self.pos = pos

    def matches(self, kind, value=None):
        if self.kind != kind:
            return False
        if value is None:
            return True
        if isinstance(value, (tuple, frozenset, set, list)):
            return self.value in value
        return self.value == value

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(sql):
    """Tokenize a SQL string; returns a list of Tokens ending in EOF.

    Supports ``--`` line comments and ``/* */`` block comments, quoted
    identifiers in double quotes or square brackets, standard single-quoted
    strings with doubled-quote escaping, and numeric literals (int, decimal
    point, scientific notation).
    """
    tokens = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(STRING, value, i))
            continue
        if ch == '"' or ch == "[":
            value, i = _read_quoted_ident(sql, i)
            tokens.append(Token(IDENT, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_" or ch == "@" or ch == "#":
            value, i = _read_word(sql, i)
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, i))
            else:
                tokens.append(Token(IDENT, value, i))
            continue
        if ch == "?":
            tokens.append(Token(PARAM, "?", i))
            i += 1
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(OP, "<>" if two == "!=" else two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(PUNCT, ch, i))
            i += 1
            continue
        raise LexError("unexpected character %r" % ch, i)
    tokens.append(Token(EOF, None, n))
    return tokens


def _read_string(sql, i):
    # i points at the opening quote.
    parts = []
    i += 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexError("unterminated string literal", i)


def _read_quoted_ident(sql, i):
    close = '"' if sql[i] == '"' else "]"
    end = sql.find(close, i + 1)
    if end < 0:
        raise LexError("unterminated quoted identifier", i)
    return sql[i + 1 : end], end + 1


def _read_number(sql, i):
    n = len(sql)
    start = i
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1 : i + 2]
            if nxt.isdigit() or (nxt in "+-" and sql[i + 2 : i + 3].isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    text = sql[start:i]
    if seen_exp:
        return float(text), i
    if seen_dot:
        return Decimal(text), i
    return int(text), i


def _read_word(sql, i):
    n = len(sql)
    start = i
    while i < n and (sql[i].isalnum() or sql[i] in "_@#$"):
        i += 1
    return sql[start:i], i
