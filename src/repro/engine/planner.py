"""Logical-to-physical planning with cost-based join selection.

The planner walks a parsed query and emits a tree of physical operators
(:mod:`repro.engine.operators`) with SQL-Server-style cardinality and cost
estimates attached, because the paper's entire analysis pipeline is driven
by exactly those estimates.  Along the way it accumulates a
:class:`PlanInfo` — referenced tables, columns, views and expression
operators — which Phase 2 of the workload framework stores in the query
catalog.
"""

from repro.engine import ast_nodes as ast
from repro.engine import cost as costmodel
from repro.engine import operators as ops
from repro.engine.aggregates import is_aggregate_name, result_type as agg_result_type
from repro.engine.expressions import (
    Binder,
    BoundBinary,
    BoundColumn,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundUnary,
    OutputColumn,
    Scope,
    contains_subquery,
    rebase_expr,
    referenced_slots,
)
from repro.engine.types import SQLType, TYPE_WIDTH, unify_types
from repro.errors import BindError, CatalogError
from repro.engine.window import NAVIGATION_FUNCTIONS, RANKING_FUNCTIONS, WindowSpec

_COMPARISONS = ("=", "<>", "<", ">", "<=", ">=")


class PlanInfo(object):
    """Side products of planning used by the workload analysis."""

    def __init__(self):
        self.tables = set()
        self.columns = set()  # (table, column)
        self.views = set()
        self.expression_ops = []

    def merge(self, other):
        self.tables |= other.tables
        self.columns |= other.columns
        self.views |= other.views
        self.expression_ops.extend(other.expression_ops)


class PlannedQuery(object):
    """A planned statement: root operator, output schema and plan info."""

    def __init__(self, root, schema, info):
        self.root = root
        self.schema = schema
        self.info = info


class _Frame(object):
    """Per-subquery planning frame used for correlation detection."""

    def __init__(self):
        self.used_outer = False


class Planner(object):
    """Plans query ASTs against a catalog."""

    def __init__(self, catalog):
        self.catalog = catalog
        self._name_counter = 0
        #: Stack of CTE scopes: name (lower) -> (query AST, declared columns).
        self._cte_stack = []
        #: Fallback-selectivity bundle (see :mod:`repro.engine.cost`); swap
        #: the instance to retune every heuristic guess at once.
        self.selectivity_defaults = costmodel.DEFAULTS
        #: Active cardinality-feedback view for the plan in progress.
        self._feedback = None

    # -- public entry points ----------------------------------------------------

    def plan(self, query, feedback=None):
        """Plan a SELECT or set operation; returns a :class:`PlannedQuery`.

        ``feedback`` is an optional duck-typed cardinality-feedback view
        (``repro.adaptive.feedback.FeedbackView`` in practice, but the
        engine never imports the adaptive layer): an object whose
        ``estimate_for(operator)`` returns an observed row count for a plan
        site, or None.  When provided, observed cardinalities replace the
        synthetic selectivity guesses at scans/seeks, joins and aggregates
        — which is what lets a misestimated plan flip back after a probe.
        Nested ``plan()`` calls (view expansion) inherit the active view.
        """
        saved = self._feedback
        if feedback is not None:
            self._feedback = feedback
        info = PlanInfo()
        try:
            root, schema = self._plan_query(query, None, info)
        finally:
            self._feedback = saved
        return PlannedQuery(root, schema, info)

    # -- helpers ------------------------------------------------------------------

    def _fresh_name(self, prefix="Expr"):
        self._name_counter += 1
        return "%s%04d" % (prefix, 1000 + self._name_counter)

    def _make_binder(self, scope, info, replacements=None, frame=None):
        binder = Binder(
            scope,
            plan_subquery=self._subquery_planner(info, frame),
            replacements=replacements,
            references=info.columns,
            expression_ops=info.expression_ops,
        )
        original = binder._bind_columnref

        def tracking_bind(node, _original=original, _frame=frame):
            bound = _original(node)
            if _frame is not None and bound.__class__.__name__ == "BoundOuterColumn":
                _frame.used_outer = True
            return bound

        binder._bind_columnref = tracking_bind
        
        return binder

    def _subquery_planner(self, info, outer_frame):
        def plan_subquery(query, scope):
            frame = _Frame()
            root, schema = self._plan_query(query, scope, info, frame)
            if outer_frame is not None and frame.used_outer:
                # Correlation may reach past the immediate scope.
                outer_frame.used_outer = True
            return root, schema, frame.used_outer

        return plan_subquery

    # -- query expressions -----------------------------------------------------------

    def _plan_query(self, query, outer_scope, info, frame=None):
        if isinstance(query, ast.Select):
            return self._plan_select(query, outer_scope, info, frame)
        if isinstance(query, ast.SetOperation):
            return self._plan_set_operation(query, outer_scope, info, frame)
        if isinstance(query, ast.WithQuery):
            return self._plan_with(query, outer_scope, info, frame)
        raise BindError("cannot plan %s as a query" % type(query).__name__)

    def _plan_with(self, query, outer_scope, info, frame):
        """Non-recursive CTEs: each name resolves to its query, inlined at
        every reference (SQL Server expands non-materialized CTEs too).

        Each CTE captures the name scope at its definition point — outer
        WITH layers plus *earlier* members of its own clause — so a CTE
        shadowing a table name still reads the base table inside its own
        body, as in T-SQL.
        """
        layer = {}
        base_layers = list(self._cte_stack)
        for cte in query.ctes:
            if cte.name.lower() in layer:
                raise BindError("duplicate CTE name %r" % cte.name)
            visible = base_layers + [dict(layer)]
            layer[cte.name.lower()] = (cte.query, cte.columns, visible)
        self._cte_stack.append(layer)
        try:
            return self._plan_query(query.body, outer_scope, info, frame)
        finally:
            self._cte_stack.pop()

    def _resolve_cte(self, name):
        lowered = name.lower()
        for layer in reversed(self._cte_stack):
            if lowered in layer:
                return layer[lowered]
        return None

    def _plan_set_operation(self, query, outer_scope, info, frame):
        left_root, left_schema = self._plan_query(query.left, outer_scope, info, frame)
        right_root, right_schema = self._plan_query(query.right, outer_scope, info, frame)
        if len(left_schema) != len(right_schema):
            raise BindError(
                "set operation arity mismatch: %d vs %d"
                % (len(left_schema), len(right_schema))
            )
        schema = [
            OutputColumn(
                left.name,
                unify_types(left.sql_type, right.sql_type),
                qualifier=None,
                source_table=left.source_table,
                source_column=left.source_column,
            )
            for left, right in zip(left_schema, right_schema)
        ]
        target_types = [column.sql_type for column in schema]
        left_root = self._coerce_branch(left_root, target_types)
        right_root = self._coerce_branch(right_root, target_types)
        if query.op == "union":
            root = ops.Concatenation([left_root, right_root], schema)
            rows = left_root.est_rows + right_root.est_rows
            row_size = max(left_root.row_size, right_root.row_size)
            root.set_estimates(rows, row_size, 0.0, costmodel.CPU_PER_ROW * rows)
            if not query.all:
                root = self._distinct(root)
        elif query.op == "intersect":
            root = self._semi_join("semi", left_root, right_root, schema)
        elif query.op == "except":
            root = self._semi_join("anti", left_root, right_root, schema)
        else:
            raise BindError("unknown set operation %r" % query.op)
        root.schema = schema
        if query.order_by:
            scope = Scope(schema, parent=outer_scope)
            root = self._order(root, query.order_by, scope, info, frame, schema)
        return root, schema

    def _coerce_branch(self, root, target_types):
        """Cast a set-operation branch to the unified column types.

        T-SQL converts both sides of a UNION to a common type; without this
        a branch whose column widened (say FLOAT under a VARCHAR-unified
        column) would leak raw floats into string comparisons downstream.
        """
        if all(
            column.sql_type == target
            for column, target in zip(root.schema, target_types)
        ):
            return root
        exprs = []
        new_schema = []
        for slot, (column, target) in enumerate(zip(root.schema, target_types)):
            base = BoundColumn(slot, column.sql_type, column.name)
            if column.sql_type == target:
                exprs.append(base)
                new_schema.append(column)
            else:
                from repro.engine.expressions import BoundCast

                exprs.append(BoundCast(base, target, try_cast=False))
                new_schema.append(column.renamed())
                new_schema[-1].sql_type = target
        project = ops.ComputeScalar(root, exprs, new_schema)
        project.set_estimates(
            root.est_rows, root.row_size, 0.0,
            costmodel.COMPUTE_SCALAR_CPU * max(1.0, root.est_rows),
        )
        return project

    def _semi_join(self, kind, left_root, right_root, schema):
        left_distinct = self._distinct(left_root)
        key_count = len(schema)
        left_keys = [
            BoundColumn(i, schema[i].sql_type, schema[i].name) for i in range(key_count)
        ]
        right_keys = [
            BoundColumn(i, right_root.schema[i].sql_type, right_root.schema[i].name)
            for i in range(key_count)
        ]
        join = ops.HashMatch(
            kind, left_distinct, right_root, left_keys, right_keys, None, schema, []
        )
        rows = max(1.0, left_distinct.est_rows * (0.5 if kind == "semi" else 0.5))
        join.set_estimates(
            rows,
            left_distinct.row_size,
            0.0,
            costmodel.hash_join_cpu(right_root.est_rows, left_distinct.est_rows),
        )
        return join

    def _distinct(self, child):
        keys = [
            BoundColumn(i, column.sql_type, column.name)
            for i, column in enumerate(child.schema)
        ]
        out = ops.Sort(child, keys, [False] * len(keys), distinct=True)
        rows = max(1.0, child.est_rows * 0.5)
        out.set_estimates(rows, child.row_size, 0.0, costmodel.sort_cpu(child.est_rows))
        return out

    # -- SELECT -------------------------------------------------------------------------

    def _plan_select(self, select, outer_scope, info, frame):
        # 1. FROM (a FROM-less SELECT reads one empty row, as in T-SQL)
        if select.from_clause is not None:
            source, source_schema = self._plan_from(select.from_clause, outer_scope, info, frame)
        else:
            source = ops.ConstantScan([[]], [])
            source.set_estimates(1, costmodel.ROW_OVERHEAD, 0.0, costmodel.CPU_PER_ROW)
            source_schema = []
        scope = Scope(source_schema, parent=outer_scope)

        # 2. WHERE (with seek pushdown into a lone table scan)
        if select.where is not None:
            source = self._plan_where(select.where, source, scope, info, frame)

        # 3. Aggregation
        replacements = {}
        aggregate_calls = self._collect_aggregates(select)
        if select.group_by or aggregate_calls:
            source, scope = self._plan_aggregate(
                select, source, scope, outer_scope, info, frame, aggregate_calls, replacements
            )

        # 4. HAVING
        if select.having is not None:
            binder = self._make_binder(scope, info, replacements, frame)
            predicate = binder.bind(select.having)
            having = ops.Filter(source, predicate, [predicate.describe()])
            having.subplans.extend(binder.subplans)
            rows = max(1.0, source.est_rows * 0.5)
            having.set_estimates(
                rows, source.row_size, 0.0,
                costmodel.FILTER_CPU_PER_ROW * max(1.0, source.est_rows),
            )
            source = having

        # 5. Window functions
        window_nodes = self._collect_windows(select)
        if window_nodes:
            source, scope = self._plan_windows(
                window_nodes, source, scope, outer_scope, info, frame, replacements
            )

        # 6. Select list
        items = self._expand_stars(select.items, scope)
        binder = self._make_binder(scope, info, replacements, frame)
        exprs = []
        out_columns = []
        for item in items:
            bound = binder.bind(item.expr)
            name = item.alias or self._derive_name(item.expr)
            source_table = source_column = None
            if isinstance(item.expr, ast.ColumnRef):
                _levels, _slot, resolved = scope.resolve(item.expr.name, item.expr.table)
                source_table = resolved.source_table
                source_column = resolved.source_column
            out_columns.append(
                OutputColumn(
                    name, bound.sql_type,
                    source_table=source_table, source_column=source_column,
                )
            )
            exprs.append(bound)
        if self._is_identity_projection(exprs, source):
            root = source
            root.schema = out_columns
        else:
            # The projection gets its own schema list: ORDER BY may push
            # hidden sort columns into it without touching ``out_columns``.
            root = ops.ComputeScalar(source, exprs, list(out_columns))
            rows = source.est_rows
            root.set_estimates(
                rows, _schema_width(out_columns), 0.0,
                costmodel.COMPUTE_SCALAR_CPU * max(1.0, rows),
            )
            root.subplans.extend(binder.subplans)

        # 7. DISTINCT
        if select.distinct:
            root = self._distinct(root)
            root.schema = out_columns

        # 8. ORDER BY (may reference select aliases or source columns)
        if select.order_by:
            order_scope = Scope(out_columns, parent=outer_scope)
            root = self._order(
                root, select.order_by, order_scope, info, frame, out_columns,
                fallback_scope=scope, fallback_replacements=replacements,
                projection_exprs=exprs,
            )

        # 9. TOP
        if select.top is not None:
            top = ops.Top(root, select.top, percent=select.top_percent)
            if select.top_percent:
                rows = max(1.0, root.est_rows * select.top / 100.0)
            else:
                rows = min(float(select.top), root.est_rows or float(select.top))
            top.set_estimates(rows, root.row_size, 0.0, costmodel.CPU_PER_ROW * rows)
            root = top
        return root, out_columns

    def _is_identity_projection(self, exprs, source):
        if len(exprs) != len(source.schema):
            return False
        for slot, expr in enumerate(exprs):
            if not (isinstance(expr, BoundColumn) and expr.slot == slot):
                return False
        return True

    def _derive_name(self, expr):
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.Cast) and isinstance(expr.operand, ast.ColumnRef):
            return expr.operand.name
        return self._fresh_name()

    # -- FROM ---------------------------------------------------------------------------

    def _plan_from(self, node, outer_scope, info, frame):
        if isinstance(node, ast.TableRef):
            return self._plan_table_ref(node, info)
        if isinstance(node, ast.SubqueryRef):
            root, schema = self._plan_query(node.query, outer_scope, info, frame)
            renamed = [column.renamed(qualifier=node.alias) for column in schema]
            root.schema = renamed
            return root, renamed
        if isinstance(node, ast.Join):
            return self._plan_join(node, outer_scope, info, frame)
        raise BindError("unsupported FROM element %s" % type(node).__name__)

    def _plan_table_ref(self, node, info):
        cte = self._resolve_cte(node.name)
        if cte is not None:
            return self._plan_cte_ref(node, cte, info)
        kind, obj = self.catalog.resolve(node.name)
        qualifier = node.alias or node.name.split(".")[-1]
        if kind == "table":
            info.tables.add(obj.name)
            schema = [
                OutputColumn(
                    column.name, column.sql_type, qualifier=qualifier,
                    source_table=obj.name, source_column=column.name,
                )
                for column in obj.columns
            ]
            scan = ops.ClusteredIndexScan(obj, schema)
            rows = obj.stats.row_count
            row_size = obj.stats.avg_row_width(obj.columns) + costmodel.ROW_OVERHEAD
            scan.set_estimates(
                rows, row_size, costmodel.scan_io(rows, row_size), costmodel.scan_cpu(rows)
            )
            return scan, schema
        return self._plan_view_ref(node, obj, info)

    def _plan_cte_ref(self, node, cte, info):
        cte_query, declared_columns, visible_layers = cte
        qualifier = node.alias or node.name
        saved_stack = self._cte_stack
        self._cte_stack = visible_layers
        try:
            root, inner_schema = self._plan_query(cte_query, None, info)
        finally:
            self._cte_stack = saved_stack
        if declared_columns is not None:
            if len(declared_columns) != len(inner_schema):
                raise BindError(
                    "CTE %r declares %d columns but produces %d"
                    % (node.name, len(declared_columns), len(inner_schema))
                )
            names = declared_columns
        else:
            names = [column.name for column in inner_schema]
        schema = [
            column.renamed(name=name, qualifier=qualifier)
            for column, name in zip(inner_schema, names)
        ]
        root.schema = schema
        return root, schema

    def _plan_view_ref(self, node, obj, info):
        qualifier = node.alias or node.name.split(".")[-1]
        # View: expand by planning its stored query.
        info.views.add(obj.name)
        planned = self.plan(obj.query)
        if _is_trivial_wrapper(obj.query):
            # A wrapper view's SELECT * references every column by
            # construction; counting those would make every query look like
            # it touches the whole table.  Only the outer query's own
            # bindings count, as after projection pruning.
            planned.info.columns = set()
        info.merge(planned.info)
        schema = [
            OutputColumn(
                declared.name, actual.sql_type, qualifier=qualifier,
                source_table=actual.source_table, source_column=actual.source_column,
            )
            for declared, actual in zip(obj.columns, planned.schema)
        ]
        planned.root.schema = schema
        return planned.root, schema

    def _plan_join(self, node, outer_scope, info, frame):
        left_root, left_schema = self._plan_from(node.left, outer_scope, info, frame)
        right_root, right_schema = self._plan_from(node.right, outer_scope, info, frame)
        schema = list(left_schema) + list(right_schema)
        scope = Scope(schema, parent=outer_scope)
        if node.kind == "cross" or node.condition is None:
            join = ops.NestedLoops("cross", left_root, right_root, None, schema, [])
            rows = max(1.0, left_root.est_rows * max(1.0, right_root.est_rows))
            join.set_estimates(
                rows,
                left_root.row_size + right_root.row_size,
                0.0,
                costmodel.nested_loop_cpu(left_root.est_rows, right_root.est_rows),
            )
            self._apply_feedback(join)
            return join, schema
        binder = self._make_binder(scope, info, None, frame)
        predicate = binder.bind(node.condition)
        description = predicate.describe()
        equi_keys = self._extract_equi_keys(predicate, len(left_schema))
        join = self._choose_join(
            node.kind, left_root, right_root, predicate, equi_keys, schema, description
        )
        self._apply_feedback(join)
        join.subplans.extend(binder.subplans)
        return join, schema

    def _extract_equi_keys(self, predicate, left_width):
        """Return (left_keys, right_keys, residual) if the predicate has at
        least one column=column equality across the two inputs, else None.

        ``right_keys`` are rebased so they evaluate against the right child's
        own rows (slots shifted by the left child's width)."""
        conjuncts = _split_conjuncts(predicate)
        left_keys, right_keys, residual = [], [], []
        for conjunct in conjuncts:
            pair = self._equi_pair(conjunct, left_width)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(conjunct)
        if not left_keys:
            return None
        residual_pred = _combine_and(residual)
        return left_keys, right_keys, residual_pred

    def _equi_pair(self, conjunct, left_width):
        if not (isinstance(conjunct, BoundBinary) and conjunct.op == "="):
            return None
        sides = [conjunct.left, conjunct.right]
        if not all(isinstance(side, BoundColumn) for side in sides):
            return None
        left_side = [s for s in sides if s.slot < left_width]
        right_side = [s for s in sides if s.slot >= left_width]
        if len(left_side) != 1 or len(right_side) != 1:
            return None
        right = right_side[0]
        rebased = BoundColumn(right.slot - left_width, right.sql_type, right.name)
        return left_side[0], rebased

    def _choose_join(self, kind, left_root, right_root, predicate, equi_keys, schema,
                     description):
        left_rows = max(1.0, left_root.est_rows)
        right_rows = max(1.0, right_root.est_rows)
        row_size = left_root.row_size + right_root.row_size
        if equi_keys is None:
            if kind in ("right", "full"):
                raise BindError(
                    "%s OUTER JOIN requires an equality join condition" % kind.upper()
                )
            join = ops.NestedLoops(kind, left_root, right_root, predicate, schema,
                                   [description])
            rows = self._join_cardinality(left_rows, right_rows, None, left_root, right_root)
            join.set_estimates(rows, row_size, 0.0,
                               costmodel.nested_loop_cpu(left_rows, right_rows))
            return join
        left_keys, right_keys, residual = equi_keys
        rows = self._join_cardinality(left_rows, right_rows, (left_keys, right_keys),
                                      left_root, right_root)
        nested_cost = costmodel.nested_loop_cpu(left_rows, right_rows)
        hash_cost = costmodel.hash_join_cpu(right_rows, left_rows)
        # A clustered-index scan delivers rows sorted by the leading column,
        # so joins on leading columns can merge without sorting.
        left_sorted = _sorted_on(left_root, left_keys[0])
        right_sorted = _sorted_on(right_root, right_keys[0])
        merge_cost = (
            (0.0 if left_sorted else costmodel.sort_cpu(left_rows))
            + (0.0 if right_sorted else costmodel.sort_cpu(right_rows))
            + costmodel.merge_join_cpu(left_rows, right_rows)
        )
        if kind in ("right", "full"):
            choice = "hash"
        elif nested_cost <= min(hash_cost, merge_cost):
            choice = "nested"
        elif merge_cost < hash_cost and residual is None and kind == "inner":
            choice = "merge"
        else:
            choice = "hash"
        if choice == "nested":
            join = ops.NestedLoops(kind, left_root, right_root, predicate, schema,
                                   [description])
            join.set_estimates(rows, row_size, 0.0, nested_cost)
            return join
        if choice == "merge":
            join = ops.MergeJoin(kind, left_root, right_root, left_keys, right_keys,
                                 schema, [description])
            join.set_estimates(rows, row_size, 0.0, merge_cost)
            return join
        join = ops.HashMatch(kind, left_root, right_root, left_keys, right_keys, residual,
                             schema, [description])
        join.set_estimates(rows, row_size, 0.0, hash_cost)
        return join

    def _join_cardinality(self, left_rows, right_rows, keys, left_root, right_root):
        if keys is None:
            return max(1.0, left_rows * right_rows * 0.1)
        left_keys, right_keys = keys
        distinct = max(
            self._distinct_estimate(left_root, left_keys[0]),
            self._distinct_estimate(right_root, right_keys[0]),
            1.0,
        )
        return max(1.0, left_rows * right_rows / distinct)

    def _distinct_estimate(self, operator, key_expr):
        if isinstance(operator, (ops.ClusteredIndexScan, ops.ClusteredIndexSeek)):
            if isinstance(key_expr, BoundColumn):
                return float(operator.table.stats.distinct_count(key_expr.name))
        return max(1.0, operator.est_rows * 0.7)

    # -- WHERE ---------------------------------------------------------------------------

    def _plan_where(self, where, source, scope, info, frame):
        binder = self._make_binder(scope, info, None, frame)
        predicate = binder.bind(where)
        conjuncts = _split_conjuncts(predicate)
        seek_predicates = []
        residual = []
        if isinstance(source, ops.ClusteredIndexScan):
            leading = source.table.clustered_prefix.lower()
            for conjunct in conjuncts:
                if self._is_sargable(conjunct, leading):
                    seek_predicates.append(conjunct)
                else:
                    residual.append(conjunct)
        else:
            residual = conjuncts
        if seek_predicates:
            seek_pred = _combine_and(seek_predicates)
            seek_sel = self._selectivity(seek_pred, source)
            rows = max(1.0, source.est_rows * seek_sel)
            seek = ops.ClusteredIndexSeek(
                source.table, source.schema, seek_pred,
                [conjunct.describe() for conjunct in seek_predicates],
            )
            seek.set_estimates(
                rows,
                source.row_size,
                costmodel.seek_io(rows, source.row_size),
                costmodel.scan_cpu(rows),
            )
            seek.seek_range = self._seek_range_hint(seek_predicates, seek.table)
            source = seek
        # Predicate pushdown: SQL Server evaluates residual predicates
        # inside scans/seeks (and below sorts/projections) rather than with
        # a standalone Filter; a Filter operator only survives when the
        # predicate cannot move (e.g. sits above an aggregate or join it
        # cannot commute with, or contains a subquery).
        leftover = []
        for conjunct in residual:
            selectivity = self._selectivity(conjunct, source)
            if contains_subquery(conjunct) or not self._push_predicate(
                source, conjunct, selectivity
            ):
                leftover.append(conjunct)
        # Feedback hook: the operator's predicate set is final here (seek
        # conjuncts plus every pushed residual), so its plan site matches
        # what a profiled run harvested.  Must run before the leftover
        # Filter is costed — its estimate builds on this one.
        self._apply_feedback(source)
        if leftover:
            residual_pred = _combine_and(leftover)
            rows = max(1.0, (source.est_rows or 1.0) * self._selectivity(residual_pred, source))
            flt = ops.Filter(source, residual_pred,
                             [c.describe() for c in leftover])
            flt.subplans.extend(binder.subplans)
            flt.set_estimates(
                rows, source.row_size, 0.0,
                costmodel.FILTER_CPU_PER_ROW * max(1.0, source.est_rows) * len(leftover),
            )
            self._apply_feedback(flt)
            source = flt
        elif binder.subplans:
            source.subplans.extend(binder.subplans)
        return source

    def _push_predicate(self, operator, conjunct, selectivity):
        """Try to evaluate ``conjunct`` inside ``operator``'s subtree.

        Returns True when the predicate found a home (scan/seek residual, an
        existing Filter, or below a projection/sort/join side); estimates
        along the visited path are scaled by ``selectivity``.
        """
        if isinstance(operator, (ops.ClusteredIndexScan, ops.ClusteredIndexSeek)):
            operator.add_residual(conjunct, conjunct.describe())
            operator.est_rows = max(1.0, operator.est_rows * selectivity)
            operator.cpu_cost += costmodel.FILTER_CPU_PER_ROW * operator.est_rows
            return True
        if isinstance(operator, ops.ComputeScalar):
            exprs = operator.exprs

            def substitute(slot):
                return exprs[slot] if slot < len(exprs) else None

            rebased = rebase_expr(conjunct, substitute)
            if rebased is not None and self._push_predicate(
                operator.children[0], rebased, selectivity
            ):
                operator.est_rows = max(1.0, operator.est_rows * selectivity)
                return True
            return False
        if isinstance(operator, (ops.Sort, ops.Segment)):
            # Filtering commutes with ordering, segmentation and DISTINCT.
            if getattr(operator, "output_width", None) is not None:
                width = operator.output_width
                if any(slot >= width for slot in referenced_slots(conjunct)):
                    return False
            if self._push_predicate(operator.children[0], conjunct, selectivity):
                operator.est_rows = max(1.0, operator.est_rows * selectivity)
                return True
            return False
        if isinstance(operator, ops.Filter):
            if self._push_predicate(operator.children[0], conjunct, selectivity):
                operator.est_rows = max(1.0, operator.est_rows * selectivity)
                return True
            operator.predicate = _combine_and([operator.predicate, conjunct])
            operator.filters.append(conjunct.describe())
            operator.est_rows = max(1.0, operator.est_rows * selectivity)
            return True
        if isinstance(operator, ops.StreamAggregate):
            # A predicate over the grouping key commutes with aggregation.
            key_count = len(operator.key_exprs)
            slots = referenced_slots(conjunct)
            if slots and all(slot < key_count for slot in slots):
                keys = operator.key_exprs

                def substitute_key(slot):
                    return keys[slot] if slot < key_count else None

                rebased = rebase_expr(conjunct, substitute_key)
                if rebased is not None and self._push_predicate(
                    operator.children[0], rebased, selectivity
                ):
                    operator.est_rows = max(1.0, operator.est_rows * selectivity)
                    return True
            return False
        if isinstance(operator, (ops.HashMatch, ops.NestedLoops, ops.MergeJoin)):
            kind = operator.kind
            left_width = len(operator.children[0].schema)
            slots = referenced_slots(conjunct)
            if not slots:
                return False
            if all(slot < left_width for slot in slots) and kind in (
                "inner", "left", "cross", "semi", "anti"
            ):
                if self._push_predicate(operator.children[0], conjunct, selectivity):
                    operator.est_rows = max(1.0, operator.est_rows * selectivity)
                    return True
                return False
            if all(slot >= left_width for slot in slots) and kind in ("inner", "cross"):
                rebased = rebase_expr(
                    conjunct,
                    lambda slot: BoundColumn(
                        slot - left_width,
                        operator.children[1].schema[slot - left_width].sql_type,
                        operator.children[1].schema[slot - left_width].name,
                    ),
                )
                if rebased is not None and self._push_predicate(
                    operator.children[1], rebased, selectivity
                ):
                    operator.est_rows = max(1.0, operator.est_rows * selectivity)
                    return True
            return False
        return False

    def _is_sargable(self, conjunct, leading_column):
        """Whether a conjunct can be answered by the clustered index.

        SQLShare's backend clusters every table on *all* columns in column
        order (§3.4), so any column-vs-literal comparison is index-supported;
        this is what makes Listing 1's ``income > 500000`` a seek even though
        ``income`` is not the leading column.
        """
        del leading_column  # the index covers every column
        if isinstance(conjunct, BoundBinary) and conjunct.op in _COMPARISONS:
            sides = (conjunct.left, conjunct.right)
            columns = [s for s in sides if isinstance(s, BoundColumn)]
            literals = [s for s in sides if isinstance(s, BoundLiteral)]
            return len(columns) == 1 and len(literals) == 1
        return False

    def _selectivity(self, predicate, source):
        table = None
        if isinstance(source, (ops.ClusteredIndexScan, ops.ClusteredIndexSeek)):
            table = source.table
        return _predicate_selectivity(predicate, table, self.selectivity_defaults)

    def _seek_range_hint(self, seek_predicates, table):
        """Bisect hint for the seek fast path (see ClusteredIndexSeek).

        Returns ``(row slot, op, literal value)`` for the first
        range/equality conjunct on the table's sorted clustered column, or
        None.  ``<>`` never narrows a range; literal-on-the-left flips the
        comparison direction.
        """
        clustered = table.clustered_prefix.lower()
        for conjunct in seek_predicates:
            if not (
                isinstance(conjunct, BoundBinary)
                and conjunct.op in ("=", "<", ">", "<=", ">=")
            ):
                continue
            sides = (conjunct.left, conjunct.right)
            columns = [s for s in sides if isinstance(s, BoundColumn)]
            literals = [s for s in sides if isinstance(s, BoundLiteral)]
            if len(columns) != 1 or len(literals) != 1:
                continue
            column, literal = columns[0], literals[0]
            if column.name.lower() != clustered:
                continue
            op = conjunct.op
            if conjunct.left is literal:
                op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
            return (column.slot, op, literal.value)
        return None

    def _apply_feedback(self, operator):
        """Replace an estimate with an observed cardinality, when one exists.

        The feedback view owns all site-key computation; the planner only
        overwrites ``est_rows`` (and the I/O-proportional costs of leaf
        accesses) and stamps the provenance so EXPLAIN can show which
        estimates came from observation rather than heuristics.
        """
        feedback = self._feedback
        if feedback is None:
            return
        observed = feedback.estimate_for(operator)
        if observed is None:
            return
        rows = max(1.0, float(observed))
        operator.est_rows = rows
        operator.properties["EstimateSource"] = "feedback"
        if isinstance(operator, (ops.ClusteredIndexScan, ops.ClusteredIndexSeek)):
            operator.io_cost = costmodel.seek_io(rows, operator.row_size)
            operator.cpu_cost = costmodel.scan_cpu(rows)

    # -- aggregation ---------------------------------------------------------------------

    def _collect_aggregates(self, select):
        """Aggregate FuncCall nodes used outside OVER clauses."""
        found = []
        seen = set()

        def visit(node, inside_window):
            if isinstance(node, ast.WindowFunction):
                for child in node.children():
                    visit(child, True)
                return
            if isinstance(node, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
                return  # aggregates inside subqueries belong to the subquery
            if (
                isinstance(node, ast.FuncCall)
                and is_aggregate_name(node.name)
                and not inside_window
            ):
                if node not in seen:
                    seen.add(node)
                    found.append(node)
                return
            for child in node.children():
                visit(child, inside_window)

        for item in select.items:
            visit(item.expr, False)
        if select.having is not None:
            visit(select.having, False)
        for order in select.order_by:
            visit(order.expr, False)
        return found

    def _plan_aggregate(self, select, source, scope, outer_scope, info, frame,
                        aggregate_calls, replacements):
        binder = self._make_binder(scope, info, None, frame)
        key_exprs = []
        out_columns = []
        for index, group_expr in enumerate(select.group_by):
            bound = binder.bind(group_expr)
            key_exprs.append(bound)
            if isinstance(group_expr, ast.ColumnRef):
                _levels, _slot, resolved = scope.resolve(group_expr.name, group_expr.table)
                column = OutputColumn(
                    resolved.name, bound.sql_type, qualifier=resolved.qualifier,
                    source_table=resolved.source_table, source_column=resolved.source_column,
                )
            else:
                column = OutputColumn(self._fresh_name(), bound.sql_type)
            out_columns.append(column)
            replacements[group_expr] = (index, bound.sql_type, column.name)
        agg_specs = []
        for offset, call in enumerate(aggregate_calls):
            star = bool(call.args and isinstance(call.args[0], ast.Star)) or not call.args
            if star:
                arg_bound = None
                arg_type = SQLType.INT
            else:
                arg_bound = binder.bind(call.args[0])
                arg_type = arg_bound.sql_type
            result = agg_result_type(call.name, arg_type)
            slot = len(key_exprs) + offset
            name = self._fresh_name()
            out_columns.append(OutputColumn(name, result))
            agg_specs.append((call.name, arg_bound, call.distinct))
            replacements[call] = (slot, result, name)
        aggregate = ops.StreamAggregate(
            source, key_exprs, agg_specs, out_columns, scalar=not select.group_by
        )
        aggregate.subplans.extend(binder.subplans)
        rows = self._group_cardinality(select.group_by, source, scope)
        aggregate.set_estimates(
            rows, _schema_width(out_columns), 0.0,
            costmodel.aggregate_cpu(source.est_rows) + costmodel.sort_cpu(source.est_rows),
        )
        self._apply_feedback(aggregate)
        return aggregate, Scope(out_columns, parent=outer_scope)

    def _group_cardinality(self, group_by, source, scope):
        if not group_by:
            return 1.0
        estimate = 1.0
        for expr in group_by:
            if isinstance(expr, ast.ColumnRef):
                try:
                    _levels, _slot, column = scope.resolve(expr.name, expr.table)
                except BindError:
                    column = None
                if column is not None and column.source_table is not None:
                    if self.catalog.has_table(column.source_table):
                        table = self.catalog.get_table(column.source_table)
                        estimate *= max(
                            1.0, table.stats.distinct_count(column.source_column or column.name)
                        )
                        continue
            estimate *= max(1.0, (source.est_rows or 1.0) ** 0.5)
        return max(1.0, min(estimate, source.est_rows or 1.0))

    # -- window functions --------------------------------------------------------------------

    def _collect_windows(self, select):
        found = []
        seen = set()
        for item in select.items:
            for node in item.expr.walk():
                if isinstance(node, ast.WindowFunction) and node not in seen:
                    seen.add(node)
                    found.append(node)
        for order in select.order_by:
            for node in order.expr.walk():
                if isinstance(node, ast.WindowFunction) and node not in seen:
                    seen.add(node)
                    found.append(node)
        return found

    def _plan_windows(self, window_nodes, source, scope, outer_scope, info, frame,
                      replacements):
        binder = self._make_binder(scope, info, dict(replacements), frame)
        specs = []
        out_columns = list(scope.columns)
        for node in window_nodes:
            func = node.func
            name = func.name.lower()
            info.expression_ops.append(name)
            ntile_buckets = None
            offset = 1
            default_expr = None
            if name in RANKING_FUNCTIONS:
                arg_bound = None
                if name == "ntile":
                    if not func.args or not isinstance(func.args[0], ast.Literal):
                        raise BindError("NTILE requires a literal bucket count")
                    ntile_buckets = int(func.args[0].value)
                if name != "ntile" and func.args:
                    raise BindError("%s takes no arguments" % name.upper())
                if not node.order_by:
                    raise BindError("%s requires ORDER BY in OVER()" % name.upper())
            elif name in NAVIGATION_FUNCTIONS:
                if not func.args:
                    raise BindError("%s requires an argument" % name.upper())
                if not node.order_by:
                    raise BindError("%s requires ORDER BY in OVER()" % name.upper())
                arg_bound = binder.bind(func.args[0])
                if name in ("lag", "lead"):
                    if len(func.args) >= 2:
                        if not isinstance(func.args[1], ast.Literal):
                            raise BindError("%s offset must be a literal" % name.upper())
                        offset = int(func.args[1].value)
                    if len(func.args) >= 3:
                        default_expr = binder.bind(func.args[2])
                elif len(func.args) > 1:
                    raise BindError("%s takes one argument" % name.upper())
            elif is_aggregate_name(name):
                star = bool(func.args and isinstance(func.args[0], ast.Star)) or not func.args
                arg_bound = None if star else binder.bind(func.args[0])
            else:
                raise BindError("unsupported window function %r" % name)
            partition_exprs = [binder.bind(expr) for expr in node.partition_by]
            order_exprs = [binder.bind(item.expr) for item in node.order_by]
            descendings = [item.descending for item in node.order_by]
            spec = WindowSpec(
                name, arg_bound, partition_exprs, order_exprs, descendings,
                ntile_buckets, offset=offset, default_expr=default_expr,
            )
            slot = len(out_columns)
            column_name = self._fresh_name("WindowExpr")
            out_columns.append(OutputColumn(column_name, spec.sql_type))
            replacements[node] = (slot, spec.sql_type, column_name)
            specs.append(spec)
        segment = ops.Segment(source)
        segment.set_estimates(source.est_rows, source.row_size, 0.0,
                              costmodel.CPU_PER_ROW * max(1.0, source.est_rows))
        project = ops.SequenceProject(segment, specs, out_columns)
        project.subplans.extend(binder.subplans)
        project.set_estimates(
            source.est_rows, _schema_width(out_columns), 0.0,
            costmodel.sort_cpu(source.est_rows) * len(specs),
        )
        return project, Scope(out_columns, parent=outer_scope)

    # -- ORDER BY -------------------------------------------------------------------------------

    def _order(self, root, order_items, order_scope, info, frame, out_columns,
               fallback_scope=None, fallback_replacements=None, projection_exprs=None):
        key_exprs = []
        descendings = []
        original_width = len(root.schema)
        for item in order_items:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(out_columns):
                    raise BindError("ORDER BY position %d out of range" % position)
                column = out_columns[position - 1]
                key_exprs.append(BoundColumn(position - 1, column.sql_type, column.name))
                descendings.append(item.descending)
                continue
            binder = self._make_binder(order_scope, info, None, frame)
            try:
                key_exprs.append(binder.bind(expr))
            except BindError:
                if fallback_scope is None:
                    raise
                key_exprs.append(self._order_fallback(
                    expr, root, out_columns, fallback_scope, fallback_replacements,
                    info, frame, projection_exprs,
                ))
            descendings.append(item.descending)
        hidden_width = len(root.schema) - original_width
        sort = ops.Sort(
            root, key_exprs, descendings,
            output_width=original_width if hidden_width else None,
        )
        sort.set_estimates(root.est_rows, root.row_size, 0.0,
                           costmodel.sort_cpu(root.est_rows))
        sort.schema = list(out_columns)
        return sort

    def _order_fallback(self, expr, root, out_columns, fallback_scope,
                        fallback_replacements, info, frame, projection_exprs):
        """ORDER BY on a column not in the select list.

        Only legal when the projection sits directly below the Sort (the
        common case); we push the hidden expression into the projection,
        sort on it and let the schema ignore the extra slot.
        """
        if not isinstance(root, ops.ComputeScalar) or projection_exprs is None:
            raise BindError("cannot ORDER BY %r: not in the select list" % expr)
        binder = self._make_binder(fallback_scope, info, fallback_replacements, frame)
        hidden = binder.bind(expr)
        root.exprs.append(hidden)
        hidden_column = OutputColumn(self._fresh_name("Hidden"), hidden.sql_type)
        root.schema.append(hidden_column)
        slot = len(root.schema) - 1
        return BoundColumn(slot, hidden.sql_type, hidden_column.name)

    # -- star expansion --------------------------------------------------------------------------

    def _expand_stars(self, items, scope):
        expanded = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                matches = [
                    column
                    for column in scope.columns
                    if item.expr.table is None
                    or (column.qualifier or "").lower() == item.expr.table.lower()
                ]
                if not matches:
                    raise BindError(
                        "no columns match %s.*" % (item.expr.table or "")
                    )
                for column in matches:
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(column.name, table=column.qualifier),
                            alias=column.name,
                        )
                    )
            else:
                expanded.append(item)
        return expanded


# --------------------------------------------------------------------------
# Module-level helpers
# --------------------------------------------------------------------------


def _is_trivial_wrapper(query):
    """Whether a view query is the auto-generated ``SELECT * FROM t``."""
    return (
        isinstance(query, ast.Select)
        and len(query.items) == 1
        and isinstance(query.items[0].expr, ast.Star)
        and query.items[0].expr.table is None
        and isinstance(query.from_clause, ast.TableRef)
        and query.where is None
        and not query.group_by
        and not query.order_by
        and not query.distinct
        and query.top is None
    )


def _sorted_on(operator, key_expr):
    """Whether an input already delivers rows ordered by the join key."""
    if isinstance(operator, (ops.ClusteredIndexScan, ops.ClusteredIndexSeek)):
        return (
            isinstance(key_expr, BoundColumn)
            and key_expr.name.lower() == operator.table.clustered_prefix.lower()
        )
    return False


def _split_conjuncts(predicate):
    if isinstance(predicate, BoundBinary) and predicate.op == "and":
        return _split_conjuncts(predicate.left) + _split_conjuncts(predicate.right)
    return [predicate]


def _combine_and(predicates):
    if not predicates:
        return None
    combined = predicates[0]
    for predicate in predicates[1:]:
        combined = BoundBinary("and", combined, predicate, SQLType.BIT)
    return combined


def _predicate_selectivity(predicate, table, defaults=costmodel.DEFAULTS):
    """Heuristic predicate selectivity.

    Statistics win when they apply; otherwise every guess reads through the
    ``defaults`` bundle (:class:`repro.engine.cost.SelectivityDefaults`) —
    the single override point for retuning the fallback magic numbers.
    """
    if predicate is None:
        return 1.0
    if isinstance(predicate, BoundBinary):
        if predicate.op == "and":
            return costmodel.conjunct_selectivity(
                [
                    _predicate_selectivity(predicate.left, table, defaults),
                    _predicate_selectivity(predicate.right, table, defaults),
                ]
            )
        if predicate.op == "or":
            return costmodel.disjunct_selectivity(
                _predicate_selectivity(predicate.left, table, defaults),
                _predicate_selectivity(predicate.right, table, defaults),
            )
        if predicate.op == "=":
            column = _column_side(predicate)
            if column is not None and table is not None:
                return 1.0 / max(1.0, table.stats.distinct_count(column.name))
            return defaults.equality
        if predicate.op in ("<", ">", "<=", ">=", "<>"):
            column = _column_side(predicate)
            if column is not None and table is not None:
                literal = (
                    predicate.right if isinstance(predicate.right, BoundLiteral)
                    else predicate.left
                )
                op = predicate.op
                if predicate.left is literal:
                    # literal OP column: flip the comparison direction.
                    op = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "<>": "<>"}[op]
                estimated = table.stats.range_selectivity(
                    column.name, op, literal.value
                )
                if estimated is not None:
                    return estimated
            return defaults.range
    if isinstance(predicate, BoundLike):
        return defaults.like
    if isinstance(predicate, BoundIsNull):
        return 1.0 - defaults.null if predicate.negated else defaults.null
    if isinstance(predicate, BoundUnary) and predicate.op == "not":
        return max(0.0, 1.0 - _predicate_selectivity(predicate.operand, table, defaults))
    return defaults.unknown


def _column_side(predicate):
    sides = (predicate.left, predicate.right)
    columns = [s for s in sides if isinstance(s, BoundColumn)]
    literals = [s for s in sides if isinstance(s, BoundLiteral)]
    if len(columns) == 1 and len(literals) == 1:
        return columns[0]
    return None


def _schema_width(columns):
    return float(sum(TYPE_WIDTH[c.sql_type] for c in columns)) + costmodel.ROW_OVERHEAD
