"""Static semantic analysis: the pass between the parser and the planner.

The analyzer walks a parsed statement and performs scope construction,
table/column/function resolution (CTEs, derived tables and view chains via
the catalog) and expression type inference — without planning or executing
anything.  Unlike the planner, which raises on the first problem, the
analyzer collects every finding into structured :class:`Diagnostic` objects
carrying a code, a severity and a source span, then keeps going.

Design rule — *mirror the planner, never outrun it*: an error-severity
diagnostic is only emitted for conditions the planner would definitely
reject.  Anything the planner tolerates (extra aggregate arguments, INSERT
rows wider than the table, ...) is at most a warning, so wiring the
analyzer in front of ``Database.execute`` can never fail a statement that
used to run.  The one deliberate divergence is *where* findings surface:
errors inside a CTE that is never referenced are downgraded to warnings,
because the planner expands CTEs lazily and never sees them.

Diagnostic codes
----------------

====== ==========================================================
SEM001 unknown column
SEM002 ambiguous column reference
SEM003 unknown table/view, or another catalog violation
SEM004 unknown function or wrong argument count
SEM005 unknown type name in CAST/DDL
SEM006 aggregate misuse (nested, or outside items/HAVING/ORDER BY)
SEM007 window-function misuse (bad args, missing OVER ORDER BY)
SEM008 subquery column-count violation
SEM009 set-operation arity mismatch
SEM010 CTE violation (duplicate name, declared-column arity)
SEM011 ORDER BY position out of range
SEM012 star ('*') misuse or empty expansion
SEM013 column neither grouped nor aggregated
SEM014 DML violation (INSERT shape, non-literal VALUES)
====== ==========================================================
"""

from repro.engine import aggregates
from repro.engine import ast_nodes as ast
from repro.engine import functions
from repro.engine.ast_nodes import span_of
from repro.engine.types import (
    SQLType,
    infer_literal_type,
    resolve_type_name,
    unify_types,
)
from repro.engine.expressions import OutputColumn
from repro.engine.window import NAVIGATION_FUNCTIONS, RANKING_FUNCTIONS
from repro.errors import (
    ERROR,
    INFO,
    WARNING,
    BindError,
    CatalogError,
    Diagnostic,
    SEVERITY_ORDER,
    TypeCheckError,
)

#: Queries (as opposed to DDL/DML) — same set Database.execute plans.
QUERY_NODES = (ast.Select, ast.SetOperation, ast.WithQuery)


class SourceInfo(object):
    """One FROM-clause range variable, resolved."""

    __slots__ = ("kind", "name", "alias", "qualifier", "schema", "node",
                 "table", "unknown")

    def __init__(self, kind, name, alias, qualifier, schema, node,
                 table=None, unknown=False):
        #: "table", "view", "cte", "derived" or "unknown".
        self.kind = kind
        self.name = name
        self.alias = alias
        self.qualifier = qualifier
        self.schema = schema
        self.node = node
        #: The catalog Table (for cardinality-based lint rules), if any.
        self.table = table
        self.unknown = unknown

    def __repr__(self):
        return "SourceInfo(%s %r as %r)" % (self.kind, self.name, self.qualifier)


class SelectInfo(object):
    """Per-SELECT record handed to the lint layer."""

    __slots__ = ("select", "sources", "output", "aggregated", "depth", "statement")

    def __init__(self, select, sources, output, aggregated, depth, statement):
        self.select = select
        self.sources = sources
        self.output = output
        self.aggregated = aggregated
        #: 0 for the statement's outermost SELECT, >0 inside subqueries/CTEs.
        self.depth = depth
        self.statement = statement


class AnalysisResult(object):
    """Everything the analyzer learned about one statement."""

    def __init__(self, statement, source=None):
        self.statement = statement
        self.source = source
        self.diagnostics = []
        #: Output schema (list of OutputColumn) when the statement is a query.
        self.schema = None
        #: id(ast node) -> inferred SQLType for every analyzed expression.
        self.types = {}
        #: One SelectInfo per SELECT block, outermost first.
        self.selects = []
        #: id(OutputColumn) for every column actually referenced somewhere.
        self.used_columns = set()
        #: (ColumnRef node, OutputColumn) for every successful resolution.
        self.resolutions = []
        #: CommonTableExpression nodes never referenced by the body.
        self.unused_ctes = []

    def add(self, code, severity, message, span=None, category="bind"):
        diagnostic = Diagnostic(code, severity, message, span, category)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self):
        return not self.errors()

    def type_of(self, node):
        return self.types.get(id(node), SQLType.UNKNOWN)

    def sorted_diagnostics(self):
        """Diagnostics ordered by source position, then severity."""
        def key(d):
            start = d.span.start if d.span is not None else 1 << 30
            return (start, SEVERITY_ORDER.get(d.severity, 3))
        return sorted(self.diagnostics, key=key)


class Scope(object):
    """Resolution scope: columns plus an outer chain and an 'unknown' taint.

    ``unknown`` marks scopes built over an unresolvable source (a missing
    table, a star over one): resolution failures under such a scope are
    suppressed rather than reported, so one missing table does not cascade
    into a column error per reference.
    """

    def __init__(self, columns, parent=None, unknown=False):
        self.columns = list(columns)
        self.parent = parent
        self.unknown = unknown

    def resolve(self, name, table=None):
        """Return ``("ok", column)``, ``("ambiguous", None)``,
        ``("unknown", None)`` or ``("suppressed", None)``."""
        scope = self
        tainted = False
        while scope is not None:
            tainted = tainted or scope.unknown
            matches = [
                column
                for column in scope.columns
                if column.name.lower() == name.lower()
                and (table is None or (column.qualifier or "").lower() == table.lower())
            ]
            if len(matches) == 1:
                return "ok", matches[0]
            if len(matches) > 1:
                return "ambiguous", None
            scope = scope.parent
        return ("suppressed" if tainted else "unknown"), None

    def tainted(self):
        scope = self
        while scope is not None:
            if scope.unknown:
                return True
            scope = scope.parent
        return False


class _Context(object):
    """Expression-analysis context flags."""

    __slots__ = ("windows", "in_aggregate", "group_fallback")

    def __init__(self, windows=False, in_aggregate=False, group_fallback=None):
        #: Window functions allowed here (select items / ORDER BY only).
        self.windows = windows
        #: Currently inside an aggregate's argument (nested-aggregate check).
        self.in_aggregate = in_aggregate
        #: Pre-aggregation scope, for "must appear in GROUP BY" messages.
        self.group_fallback = group_fallback

    def replaced(self, **overrides):
        values = {"windows": self.windows, "in_aggregate": self.in_aggregate,
                  "group_fallback": self.group_fallback}
        values.update(overrides)
        return _Context(**values)


class _CTE(object):
    __slots__ = ("name", "node", "schema", "reliable", "diagnostics", "used",
                 "refs")

    def __init__(self, name, node, schema, reliable, diagnostics):
        self.name = name
        self.node = node
        self.schema = schema
        self.reliable = reliable
        self.diagnostics = diagnostics
        self.used = False
        #: CTEs this CTE's body references (for transitive usedness).
        self.refs = set()


def analyze(statement, catalog, source=None):
    """Analyze one parsed statement; returns an :class:`AnalysisResult`."""
    return SemanticAnalyzer(catalog).analyze(statement, source=source)


def error_from_diagnostics(diagnostics, sql=None):
    """Build the exception ``Database.execute`` raises for analyzer errors.

    The exception class follows the first error's category so callers that
    catch :class:`BindError`/:class:`CatalogError`/:class:`TypeCheckError`
    keep working; every diagnostic rides along as ``.diagnostics``.
    """
    errors = [d for d in diagnostics if d.severity == ERROR]
    first = errors[0]
    message = first.message
    if first.span is not None and first.span.line:
        message += " (line %d, col %d)" % (first.span.line, first.span.col)
    if len(errors) > 1:
        message += "; plus %d more error%s" % (
            len(errors) - 1, "" if len(errors) == 2 else "s")
    cls = {"catalog": CatalogError, "type": TypeCheckError}.get(
        first.category, BindError)
    exc = cls(message)
    exc.span = first.span
    exc.diagnostics = list(diagnostics)
    return exc


class SemanticAnalyzer(object):
    """AST-walking analyzer over a catalog.  One instance per statement."""

    def __init__(self, catalog):
        self.catalog = catalog
        self._cte_stack = []
        self._ref_stack = []
        self._fresh = 1000
        self._depth = 0

    # -- entry points -------------------------------------------------------

    def analyze(self, statement, source=None):
        result = AnalysisResult(statement, source)
        if isinstance(statement, QUERY_NODES):
            schema, _reliable = self._query(statement, None, result)
            result.schema = schema
        elif isinstance(statement, ast.CreateView):
            self._create_view(statement, result)
        elif isinstance(statement, ast.CreateTable):
            self._create_table(statement, result)
        elif isinstance(statement, ast.DropTable):
            if not statement.if_exists and not self.catalog.has_table(statement.name):
                result.add("SEM003", ERROR, "no table named %r" % statement.name,
                           span_of(statement), "catalog")
        elif isinstance(statement, ast.DropView):
            if not statement.if_exists and not self.catalog.has_view(statement.name):
                result.add("SEM003", ERROR, "no view named %r" % statement.name,
                           span_of(statement), "catalog")
        elif isinstance(statement, ast.Insert):
            self._insert(statement, result)
        elif isinstance(statement, ast.AlterColumn):
            self._alter_column(statement, result)
        return result

    # -- statements ---------------------------------------------------------

    def _create_view(self, statement, result):
        span = span_of(statement)
        if self.catalog.has_table(statement.name):
            result.add("SEM003", ERROR,
                       "a table named %r already exists" % statement.name,
                       span, "catalog")
        elif self.catalog.has_view(statement.name):
            result.add("SEM003", ERROR,
                       "a view named %r already exists" % statement.name,
                       span, "catalog")
        schema, reliable = self._query(statement.query, None, result)
        result.schema = schema
        if reliable:
            seen = set()
            for column in schema:
                key = column.name.lower()
                if key in seen:
                    result.add(
                        "SEM003", ERROR,
                        "view %r would have duplicate column %r"
                        % (statement.name, column.name),
                        span, "catalog")
                seen.add(key)

    def _create_table(self, statement, result):
        span = span_of(statement)
        if self.catalog.has_object(statement.name):
            result.add("SEM003", ERROR,
                       "object %r already exists" % statement.name,
                       span, "catalog")
        seen = set()
        for definition in statement.columns:
            key = definition.name.lower()
            if key in seen:
                result.add("SEM003", ERROR,
                           "duplicate column %r in table %r"
                           % (definition.name, statement.name),
                           span_of(definition) or span, "catalog")
            seen.add(key)
            self._check_type_name(definition.type_name,
                                  span_of(definition) or span, result)

    def _insert(self, statement, result):
        span = span_of(statement)
        if not self.catalog.has_table(statement.table):
            result.add("SEM003", ERROR,
                       "no table named %r" % statement.table, span, "catalog")
            if statement.query is not None:
                self._query(statement.query, None, result)
            return
        table = self.catalog.get_table(statement.table)
        width = len(table.columns)
        if statement.columns is not None:
            width = len(statement.columns)
            for name in statement.columns:
                try:
                    table.column_index(name)
                except CatalogError as error:
                    result.add("SEM003", ERROR, str(error), span, "catalog")
        if statement.query is not None:
            schema, reliable = self._query(statement.query, None, result)
            # Arity problems in INSERT ... SELECT only surface at runtime when
            # the query yields rows, so they can never be definite errors.
            if reliable and len(schema) != width:
                result.add(
                    "SEM014", WARNING,
                    "INSERT query produces %d columns for %d target columns"
                    % (len(schema), width), span)
            return
        for row in statement.rows:
            for expr in row:
                if not isinstance(expr, ast.Literal):
                    result.add("SEM014", ERROR, "INSERT VALUES must be literals",
                               span_of(expr) or span)
            if statement.columns is not None:
                if len(row) != width:
                    result.add("SEM014", ERROR, "INSERT arity mismatch", span)
            elif len(row) < len(table.columns):
                result.add(
                    "SEM014", ERROR,
                    "row arity %d does not match table %r arity %d"
                    % (len(row), table.name, len(table.columns)),
                    span, "catalog")
            elif len(row) > len(table.columns):
                result.add(
                    "SEM014", WARNING,
                    "INSERT provides %d values for %d columns; extras are ignored"
                    % (len(row), len(table.columns)), span)

    def _alter_column(self, statement, result):
        span = span_of(statement)
        if not self.catalog.has_table(statement.table):
            result.add("SEM003", ERROR,
                       "no table named %r" % statement.table, span, "catalog")
            return
        table = self.catalog.get_table(statement.table)
        try:
            table.column_index(statement.column)
        except CatalogError as error:
            result.add("SEM003", ERROR, str(error), span, "catalog")
        self._check_type_name(statement.type_name, span, result)

    def _check_type_name(self, type_name, span, result):
        try:
            return resolve_type_name(type_name)
        except TypeCheckError as error:
            result.add("SEM005", ERROR, str(error), span, "type")
            return SQLType.UNKNOWN

    # -- queries ------------------------------------------------------------

    def _query(self, query, outer_scope, result):
        """Analyze a query expression; returns ``(schema, reliable)``.

        ``reliable`` is False when the column list could not be fully
        determined (a star over an unresolvable source), in which case
        arity-sensitive checks downstream are skipped.
        """
        if isinstance(query, ast.WithQuery):
            return self._with_query(query, outer_scope, result)
        if isinstance(query, ast.SetOperation):
            return self._set_operation(query, outer_scope, result)
        if isinstance(query, ast.Select):
            return self._select(query, outer_scope, result)
        return [], False

    def _with_query(self, query, outer_scope, result):
        layer = {}
        base_layers = list(self._cte_stack)
        members = []
        for cte in query.ctes:
            if cte.name.lower() in layer:
                result.add("SEM010", ERROR,
                           "duplicate CTE name %r" % cte.name, span_of(cte))
            buffered = []
            refs = set()
            saved_stack = self._cte_stack
            saved_diags = result.diagnostics
            self._cte_stack = base_layers + [dict(layer)]
            self._ref_stack.append((refs, len(self._cte_stack)))
            result.diagnostics = buffered
            self._depth += 1
            try:
                schema, reliable = self._query(cte.query, None, result)
            finally:
                self._depth -= 1
                self._cte_stack = saved_stack
                self._ref_stack.pop()
                result.diagnostics = saved_diags
            if cte.columns is not None:
                if reliable and len(cte.columns) != len(schema):
                    buffered.append(Diagnostic(
                        "SEM010", ERROR,
                        "CTE %r declares %d columns but produces %d"
                        % (cte.name, len(cte.columns), len(schema)),
                        span_of(cte)))
                schema = [
                    column.renamed(name=name)
                    for column, name in zip(schema, cte.columns)
                ]
            member = _CTE(cte.name, cte, schema, reliable, buffered)
            member.refs = refs
            layer[cte.name.lower()] = member
            members.append(member)
        self._cte_stack.append(layer)
        try:
            schema, reliable = self._query(query.body, outer_scope, result)
        finally:
            self._cte_stack.pop()
        # Usedness is transitive: a CTE referenced only from another *used*
        # CTE is expanded by the planner too.
        worklist = [member for member in members if member.used]
        while worklist:
            for dep in worklist.pop().refs:
                if not dep.used:
                    dep.used = True
                    worklist.append(dep)
        for member in members:
            if member.used:
                result.diagnostics.extend(member.diagnostics)
            else:
                result.unused_ctes.append(member.node)
                # The planner expands CTEs lazily, so problems in a CTE it
                # never references cannot fail the statement: report them,
                # but only as warnings.
                for diagnostic in member.diagnostics:
                    if diagnostic.severity == ERROR:
                        diagnostic.severity = WARNING
                        diagnostic.message += " (in unused CTE %r)" % member.name
                    result.diagnostics.append(diagnostic)
        return schema, reliable

    def _resolve_cte(self, name):
        """Return ``(member, layer_index)`` for a visible CTE, or None."""
        lowered = name.lower()
        for index in range(len(self._cte_stack) - 1, -1, -1):
            layer = self._cte_stack[index]
            if lowered in layer:
                return layer[lowered], index
        return None

    def _set_operation(self, query, outer_scope, result):
        left_schema, left_ok = self._query(query.left, outer_scope, result)
        right_schema, right_ok = self._query(query.right, outer_scope, result)
        reliable = left_ok and right_ok
        if reliable and len(left_schema) != len(right_schema):
            result.add("SEM009", ERROR,
                       "set operation arity mismatch: %d vs %d"
                       % (len(left_schema), len(right_schema)),
                       span_of(query))
        schema = [
            OutputColumn(left.name, unify_types(left.sql_type, right.sql_type),
                         source_table=left.source_table,
                         source_column=left.source_column)
            for left, right in zip(left_schema, right_schema)
        ]
        if query.order_by:
            scope = Scope(schema, parent=outer_scope, unknown=not reliable)
            context = _Context()
            for item in query.order_by:
                if self._positional(item, len(schema), reliable, result):
                    continue
                self._expr(item.expr, scope, None, context, result)
        return schema, reliable

    def _positional(self, item, width, reliable, result):
        """Handle ``ORDER BY 2``; returns True when the item was positional."""
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if reliable and not 1 <= expr.value <= width:
                result.add("SEM011", ERROR,
                           "ORDER BY position %d out of range" % expr.value,
                           span_of(item) or span_of(expr))
            return True
        return False

    # -- SELECT -------------------------------------------------------------

    def _select(self, select, outer_scope, result):
        depth = self._depth
        sources = []
        if select.from_clause is not None:
            columns, from_reliable = self._from(
                select.from_clause, outer_scope, sources, result)
        else:
            columns, from_reliable = [], True
        unknown_source = any(source.unknown for source in sources)
        scope = Scope(columns, parent=outer_scope, unknown=unknown_source)
        source_scope = scope

        if select.where is not None:
            self._expr(select.where, scope, None, _Context(), result)

        aggregate_calls = self._collect_aggregates(select)
        replacements = None
        if select.group_by or aggregate_calls:
            scope, replacements = self._aggregate(
                select, scope, outer_scope, aggregate_calls, result)

        context = _Context(group_fallback=source_scope if replacements else None)
        if select.having is not None:
            self._expr(select.having, scope, replacements, context, result)

        for node in self._collect_windows(select):
            replacements = replacements if replacements is not None else {}
            self._window(node, scope, replacements, context, result)

        item_context = context.replaced(windows=True)
        out_columns = []
        items_reliable = True
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                star = item.expr
                matches = [
                    column
                    for column in scope.columns
                    if star.table is None
                    or (column.qualifier or "").lower() == star.table.lower()
                ]
                if not matches:
                    if scope.tainted():
                        items_reliable = False
                    else:
                        result.add("SEM012", ERROR,
                                   "no columns match %s.*" % (star.table or ""),
                                   span_of(item) or span_of(star))
                for column in matches:
                    result.used_columns.add(id(column))
                    out_columns.append(column.renamed(qualifier=None))
                continue
            sql_type = self._expr(item.expr, scope, replacements,
                                  item_context, result)
            name = item.alias or self._derive_name(item.expr)
            source_table = source_column = None
            if isinstance(item.expr, ast.ColumnRef):
                status, resolved = scope.resolve(item.expr.name, item.expr.table)
                if status == "ok":
                    source_table = resolved.source_table
                    source_column = resolved.source_column
            out_columns.append(OutputColumn(
                name, sql_type,
                source_table=source_table, source_column=source_column))

        if select.order_by:
            self._order_by(select, out_columns, items_reliable, scope,
                           replacements, outer_scope, result)

        result.selects.append(SelectInfo(
            select, sources, out_columns,
            aggregated=replacements is not None, depth=depth,
            statement=result.statement))
        return out_columns, from_reliable and items_reliable

    def _order_by(self, select, out_columns, reliable, fallback_scope,
                  replacements, outer_scope, result):
        order_scope = Scope(out_columns, parent=outer_scope,
                            unknown=not reliable)
        context = _Context(windows=True)
        for item in select.order_by:
            if self._positional(item, len(out_columns), reliable, result):
                continue
            # Mirror the planner: first bind against the select-list columns
            # (no replacements), then fall back to the source scope with the
            # aggregate/window rewrites.
            attempt = self._speculate(item.expr, order_scope, None,
                                      context, result)
            if attempt is not None:
                result.diagnostics.extend(attempt)
                continue
            fallback = self._speculate(item.expr, fallback_scope, replacements,
                                       context, result)
            result.diagnostics.extend(
                fallback if fallback is not None else [])

    def _speculate(self, expr, scope, replacements, context, result):
        """Analyze ``expr`` buffering diagnostics.

        Returns the buffered list when it contains no errors (commit), or
        None when it does (caller should try another scope).
        """
        buffered = []
        saved = result.diagnostics
        result.diagnostics = buffered
        try:
            self._expr(expr, scope, replacements, context, result)
        finally:
            result.diagnostics = saved
        if any(d.severity == ERROR for d in buffered):
            return None
        return buffered

    # -- FROM ---------------------------------------------------------------

    def _from(self, node, outer_scope, sources, result):
        if isinstance(node, ast.TableRef):
            return self._table_ref(node, sources, result)
        if isinstance(node, ast.SubqueryRef):
            self._depth += 1
            try:
                inner, reliable = self._query(node.query, outer_scope, result)
            finally:
                self._depth -= 1
            schema = [column.renamed(qualifier=node.alias) for column in inner]
            sources.append(SourceInfo(
                "derived", node.alias, node.alias, node.alias, schema, node,
                unknown=not reliable))
            return schema, reliable
        if isinstance(node, ast.Join):
            left, left_ok = self._from(node.left, outer_scope, sources, result)
            right, right_ok = self._from(node.right, outer_scope, sources, result)
            combined = left + right
            if node.condition is not None:
                unknown = any(source.unknown for source in sources)
                scope = Scope(combined, parent=outer_scope, unknown=unknown)
                self._expr(node.condition, scope, None, _Context(), result)
            return combined, left_ok and right_ok
        return [], False

    def _table_ref(self, node, sources, result):
        resolved_cte = self._resolve_cte(node.name)
        if resolved_cte is not None:
            cte, layer_index = resolved_cte
            if self._ref_stack and layer_index < self._ref_stack[-1][1]:
                # Inside another CTE's body: record a dependency; whether it
                # counts as "used" depends on whether *that* CTE is used.
                self._ref_stack[-1][0].add(cte)
            else:
                cte.used = True
            qualifier = node.alias or node.name
            schema = [column.renamed(qualifier=qualifier)
                      for column in cte.schema]
            sources.append(SourceInfo(
                "cte", node.name, node.alias, qualifier, schema, node,
                unknown=not cte.reliable))
            return schema, cte.reliable
        qualifier = node.alias or node.name.split(".")[-1]
        try:
            kind, obj = self.catalog.resolve(node.name)
        except CatalogError as error:
            result.add("SEM003", ERROR, str(error), span_of(node), "catalog")
            sources.append(SourceInfo(
                "unknown", node.name, node.alias, qualifier, [], node,
                unknown=True))
            return [], False
        if kind == "table":
            schema = [
                OutputColumn(column.name, column.sql_type, qualifier=qualifier,
                             source_table=obj.name, source_column=column.name)
                for column in obj.columns
            ]
            sources.append(SourceInfo(
                "table", obj.name, node.alias, qualifier, schema, node,
                table=obj))
            return schema, True
        # Views resolve through their declared output schema; the analyzer
        # does not recurse into view bodies (a broken view chain is a
        # planner-time CatalogError, exactly as before).
        schema = [
            OutputColumn(column.name, column.sql_type, qualifier=qualifier)
            for column in obj.columns
        ]
        sources.append(SourceInfo(
            "view", obj.name, node.alias, qualifier, schema, node))
        return schema, True

    # -- aggregation ----------------------------------------------------------

    def _collect_aggregates(self, select):
        """Aggregate calls outside OVER clauses — planner's collection, mirrored."""
        found = []
        seen = set()

        def visit(node, inside_window):
            if isinstance(node, ast.WindowFunction):
                for child in node.children():
                    visit(child, True)
                return
            if isinstance(node, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
                return
            if (isinstance(node, ast.FuncCall)
                    and aggregates.is_aggregate_name(node.name)
                    and not inside_window):
                if node not in seen:
                    seen.add(node)
                    found.append(node)
                return
            for child in node.children():
                visit(child, inside_window)

        for item in select.items:
            visit(item.expr, False)
        if select.having is not None:
            visit(select.having, False)
        for order in select.order_by:
            visit(order.expr, False)
        return found

    def _aggregate(self, select, scope, outer_scope, aggregate_calls, result):
        replacements = {}
        out_columns = []
        group_context = _Context()
        for group_expr in select.group_by:
            sql_type = self._expr(group_expr, scope, None, group_context, result)
            if isinstance(group_expr, ast.ColumnRef):
                status, resolved = scope.resolve(group_expr.name, group_expr.table)
                if status == "ok":
                    column = OutputColumn(
                        resolved.name, sql_type, qualifier=resolved.qualifier,
                        source_table=resolved.source_table,
                        source_column=resolved.source_column)
                else:
                    column = OutputColumn(group_expr.name, sql_type)
            else:
                column = OutputColumn(self._fresh_name(), sql_type)
            out_columns.append(column)
            replacements[group_expr] = sql_type
        argument_context = _Context(in_aggregate=True)
        for call in aggregate_calls:
            star = bool(call.args and isinstance(call.args[0], ast.Star)) \
                or not call.args
            if star:
                arg_type = SQLType.INT
            else:
                arg_type = self._expr(call.args[0], scope, None,
                                      argument_context, result)
                if len(call.args) > 1:
                    result.add(
                        "SEM006", WARNING,
                        "aggregate %s takes one argument; extras are ignored"
                        % call.name.upper(), span_of(call))
            result_type = aggregates.result_type(call.name, arg_type)
            result.types[id(call)] = result_type
            out_columns.append(OutputColumn(self._fresh_name(), result_type))
            replacements[call] = result_type
        aggregate_scope = Scope(out_columns, parent=outer_scope,
                                unknown=scope.tainted())
        return aggregate_scope, replacements

    def _collect_windows(self, select):
        found = []
        seen = set()
        for item in select.items:
            for node in item.expr.walk():
                if isinstance(node, ast.WindowFunction) and node not in seen:
                    seen.add(node)
                    found.append(node)
        for order in select.order_by:
            for node in order.expr.walk():
                if isinstance(node, ast.WindowFunction) and node not in seen:
                    seen.add(node)
                    found.append(node)
        return found

    def _window(self, node, scope, replacements, context, result):
        func = node.func
        name = func.name.lower()
        span = span_of(node) or span_of(func)
        argument_context = context.replaced(windows=False)
        sql_type = SQLType.UNKNOWN
        if name in RANKING_FUNCTIONS:
            if name == "ntile":
                if not func.args or not isinstance(func.args[0], ast.Literal):
                    result.add("SEM007", ERROR,
                               "NTILE requires a literal bucket count", span)
            elif func.args:
                result.add("SEM007", ERROR,
                           "%s takes no arguments" % name.upper(), span)
            if not node.order_by:
                result.add("SEM007", ERROR,
                           "%s requires ORDER BY in OVER()" % name.upper(), span)
            sql_type = SQLType.BIGINT
        elif name in NAVIGATION_FUNCTIONS:
            if not func.args:
                result.add("SEM007", ERROR,
                           "%s requires an argument" % name.upper(), span)
            if not node.order_by:
                result.add("SEM007", ERROR,
                           "%s requires ORDER BY in OVER()" % name.upper(), span)
            if func.args:
                sql_type = self._expr(func.args[0], scope, replacements,
                                      argument_context, result)
            if name in ("lag", "lead"):
                if len(func.args) >= 2 and not isinstance(func.args[1], ast.Literal):
                    result.add("SEM007", ERROR,
                               "%s offset must be a literal" % name.upper(), span)
                if len(func.args) >= 3:
                    self._expr(func.args[2], scope, replacements,
                               argument_context, result)
            elif len(func.args) > 1:
                result.add("SEM007", ERROR,
                           "%s takes one argument" % name.upper(), span)
        elif aggregates.is_aggregate_name(name):
            star = bool(func.args and isinstance(func.args[0], ast.Star)) \
                or not func.args
            if star:
                arg_type = SQLType.INT
            else:
                arg_type = self._expr(func.args[0], scope, replacements,
                                      argument_context, result)
            sql_type = aggregates.result_type(name, arg_type)
        else:
            result.add("SEM007", ERROR,
                       "unsupported window function %r" % name, span)
        for expr in node.partition_by:
            self._expr(expr, scope, replacements, argument_context, result)
        for item in node.order_by:
            self._expr(item.expr, scope, replacements, argument_context, result)
        result.types[id(node)] = sql_type
        replacements[node] = sql_type
        return sql_type

    # -- expressions ----------------------------------------------------------

    def _expr(self, node, scope, replacements, context, result):
        sql_type = self._expr_inner(node, scope, replacements, context, result)
        result.types[id(node)] = sql_type
        return sql_type

    def _expr_inner(self, node, scope, replacements, context, result):
        if replacements is not None:
            replaced = replacements.get(node)
            if replaced is not None:
                return replaced
        if isinstance(node, ast.Literal):
            return infer_literal_type(node.value)
        if isinstance(node, ast.ColumnRef):
            return self._column_ref(node, scope, context, result)
        if isinstance(node, ast.Star):
            result.add("SEM012", ERROR,
                       "'*' is only allowed in a select list or COUNT(*)",
                       span_of(node))
            return SQLType.UNKNOWN
        if isinstance(node, ast.UnaryOp):
            operand = self._expr(node.operand, scope, replacements, context, result)
            return SQLType.BIT if node.op == "not" else operand
        if isinstance(node, ast.BinaryOp):
            left = self._expr(node.left, scope, replacements, context, result)
            right = self._expr(node.right, scope, replacements, context, result)
            return _binary_type(node.op, left, right)
        if isinstance(node, ast.IsNull):
            self._expr(node.operand, scope, replacements, context, result)
            return SQLType.BIT
        if isinstance(node, ast.Like):
            self._expr(node.operand, scope, replacements, context, result)
            self._expr(node.pattern, scope, replacements, context, result)
            return SQLType.BIT
        if isinstance(node, ast.Between):
            for child in (node.operand, node.low, node.high):
                self._expr(child, scope, replacements, context, result)
            return SQLType.BIT
        if isinstance(node, ast.InList):
            self._expr(node.operand, scope, replacements, context, result)
            for item in node.items:
                self._expr(item, scope, replacements, context, result)
            return SQLType.BIT
        if isinstance(node, ast.InSubquery):
            self._expr(node.operand, scope, replacements, context, result)
            schema, reliable = self._subquery(node.subquery, scope, result)
            if reliable and len(schema) != 1:
                result.add("SEM008", ERROR,
                           "IN subquery must return exactly one column",
                           span_of(node))
            return SQLType.BIT
        if isinstance(node, ast.Exists):
            self._subquery(node.subquery, scope, result)
            return SQLType.BIT
        if isinstance(node, ast.ScalarSubquery):
            schema, reliable = self._subquery(node.subquery, scope, result)
            if reliable and len(schema) != 1:
                result.add("SEM008", ERROR,
                           "scalar subquery must return exactly one column",
                           span_of(node))
            return schema[0].sql_type if schema else SQLType.UNKNOWN
        if isinstance(node, ast.Case):
            return self._case(node, scope, replacements, context, result)
        if isinstance(node, ast.Cast):
            self._expr(node.operand, scope, replacements, context, result)
            return self._check_type_name(node.type_name, span_of(node), result)
        if isinstance(node, ast.FuncCall):
            return self._func_call(node, scope, replacements, context, result)
        if isinstance(node, ast.WindowFunction):
            if not context.windows:
                result.add("SEM007", ERROR,
                           "window function %s used outside a select list"
                           % node.func.name.upper(), span_of(node))
                return SQLType.UNKNOWN
            if replacements is None:
                replacements = {}
            return self._window(node, scope, replacements, context, result)
        return SQLType.UNKNOWN

    def _column_ref(self, node, scope, context, result):
        status, column = scope.resolve(node.name, node.table)
        if status == "ok":
            result.used_columns.add(id(column))
            result.resolutions.append((node, column))
            return column.sql_type
        if status == "ambiguous":
            result.add("SEM002", ERROR,
                       "ambiguous column reference %r" % node.name,
                       span_of(node))
            return SQLType.UNKNOWN
        if status == "suppressed":
            return SQLType.UNKNOWN
        # Unknown — distinguish "not grouped" from "does not exist".
        if context.group_fallback is not None:
            fallback_status, column = context.group_fallback.resolve(
                node.name, node.table)
            if fallback_status == "ok":
                result.used_columns.add(id(column))
                result.add(
                    "SEM013", ERROR,
                    "column %r must appear in the GROUP BY clause or be used "
                    "in an aggregate" % node.name, span_of(node))
                return column.sql_type
        if node.table:
            message = "unknown column %s.%s" % (node.table, node.name)
        else:
            message = "unknown column %r" % node.name
        result.add("SEM001", ERROR, message, span_of(node))
        return SQLType.UNKNOWN

    def _case(self, node, scope, replacements, context, result):
        if node.operand is not None:
            self._expr(node.operand, scope, replacements, context, result)
        unified = None
        for condition, branch in node.whens:
            self._expr(condition, scope, replacements, context, result)
            branch_type = self._expr(branch, scope, replacements, context, result)
            unified = branch_type if unified is None \
                else unify_types(unified, branch_type)
        if node.else_result is not None:
            else_type = self._expr(node.else_result, scope, replacements,
                                   context, result)
            unified = else_type if unified is None \
                else unify_types(unified, else_type)
        return unified or SQLType.UNKNOWN

    def _func_call(self, node, scope, replacements, context, result):
        name = node.name.lower()
        if aggregates.is_aggregate_name(name):
            # Not rewritten by the aggregation step, so the planner's binder
            # would look it up among scalar functions and fail.
            if context.in_aggregate:
                message = "aggregate %s cannot be nested inside an aggregate" \
                    % name.upper()
            else:
                message = "aggregate %s is not allowed here" % name.upper()
            result.add("SEM006", ERROR, message, span_of(node))
            for arg in node.args:
                if not isinstance(arg, ast.Star):
                    self._expr(arg, scope, replacements, context, result)
            return aggregates.result_type(name, SQLType.UNKNOWN)
        arg_types = []
        for arg in node.args:
            if isinstance(arg, ast.Star):
                result.add("SEM012", ERROR,
                           "'*' is only allowed in a select list or COUNT(*)",
                           span_of(arg) or span_of(node))
                arg_types.append(SQLType.UNKNOWN)
                continue
            arg_types.append(
                self._expr(arg, scope, replacements, context, result))
        try:
            func = functions.lookup(name, len(node.args))
        except BindError as error:
            result.add("SEM004", ERROR, str(error), span_of(node))
            return SQLType.UNKNOWN
        try:
            return func.type_of(arg_types)
        except (TypeCheckError, BindError):
            return SQLType.UNKNOWN

    def _subquery(self, query, scope, result):
        self._depth += 1
        try:
            return self._query(query, scope, result)
        finally:
            self._depth -= 1

    # -- helpers --------------------------------------------------------------

    def _fresh_name(self):
        self._fresh += 1
        return "Expr%d" % self._fresh

    def _derive_name(self, expr):
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.Cast) and isinstance(expr.operand, ast.ColumnRef):
            return expr.operand.name
        return self._fresh_name()


def _binary_type(op, left, right):
    """Result type of a binary operator — expressions._binary_result_type
    restated over bare SQLTypes."""
    if op in ("and", "or", "=", "<>", "<", ">", "<=", ">="):
        return SQLType.BIT
    if op == "||":
        return SQLType.VARCHAR
    if op == "+" and SQLType.VARCHAR in (left, right):
        return SQLType.VARCHAR
    if op == "/":
        integral = (SQLType.INT, SQLType.BIGINT, SQLType.BIT)
        if left in integral and right in integral:
            return unify_types(left, right)
        return SQLType.FLOAT
    if op == "%":
        return SQLType.INT
    if op in ("&", "|", "^"):
        return SQLType.INT
    return unify_types(left, right)
