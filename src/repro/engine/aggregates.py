"""Aggregate function accumulators (COUNT/SUM/AVG/MIN/MAX/STDEV/VAR...).

Each aggregate is a small accumulator class; the Stream Aggregate operator
instantiates one per (group, aggregate) pair.  NULLs are ignored by every
aggregate except ``COUNT(*)``, per the standard.
"""

import math
from decimal import Decimal

from repro.engine.types import SQLType
from repro.errors import BindError

AGGREGATE_NAMES = frozenset(
    ["count", "count_big", "sum", "avg", "min", "max", "stdev", "stdevp", "var", "varp"]
)


def is_aggregate_name(name):
    return name.lower() in AGGREGATE_NAMES


class Accumulator(object):
    """Base accumulator: feed values with add(), read with result()."""

    def add(self, value):
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class CountStar(Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value):
        self.count += 1

    def result(self):
        return self.count


class Count(Accumulator):
    def __init__(self, distinct=False):
        self.distinct = distinct
        self.count = 0
        self.seen = set() if distinct else None

    def add(self, value):
        if value is None:
            return
        if self.distinct:
            key = _hashable(value)
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1

    def result(self):
        return self.count


class Sum(Accumulator):
    def __init__(self, distinct=False):
        self.distinct = distinct
        self.total = None
        self.seen = set() if distinct else None

    def add(self, value):
        if value is None:
            return
        if self.distinct:
            key = _hashable(value)
            if key in self.seen:
                return
            self.seen.add(key)
        value = float(value) if isinstance(value, Decimal) else value
        self.total = value if self.total is None else self.total + value

    def result(self):
        return self.total


class Avg(Accumulator):
    def __init__(self, distinct=False):
        self.sum = Sum(distinct)
        self.count = Count(distinct)

    def add(self, value):
        self.sum.add(value)
        self.count.add(value)

    def result(self):
        total = self.sum.result()
        count = self.count.result()
        if not count:
            return None
        # T-SQL AVG over INT yields INT; we return float to avoid the classic
        # surprise, matching the science-analytics expectation.
        return total / float(count)


class Min(Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value):
        if value is None:
            return
        if self.value is None or _lt(value, self.value):
            self.value = value

    def result(self):
        return self.value


class Max(Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value):
        if value is None:
            return
        if self.value is None or _lt(self.value, value):
            self.value = value

    def result(self):
        return self.value


class Variance(Accumulator):
    """Welford's online variance; sample (VAR/STDEV) or population (…P)."""

    def __init__(self, population=False, stdev=False):
        self.population = population
        self.stdev = stdev
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value):
        if value is None:
            return
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def result(self):
        if self.count == 0:
            return None
        if self.population:
            variance = self.m2 / self.count
        else:
            if self.count < 2:
                return None
            variance = self.m2 / (self.count - 1)
        return math.sqrt(variance) if self.stdev else variance


def _hashable(value):
    return value


def _lt(left, right):
    from repro.engine.expressions import compare_values

    return compare_values(left, right) < 0


def make_accumulator(name, distinct=False, star=False):
    """Build an accumulator for an aggregate call."""
    lowered = name.lower()
    if lowered in ("count", "count_big"):
        return CountStar() if star else Count(distinct)
    if lowered == "sum":
        return Sum(distinct)
    if lowered == "avg":
        return Avg(distinct)
    if lowered == "min":
        return Min()
    if lowered == "max":
        return Max()
    if lowered == "stdev":
        return Variance(population=False, stdev=True)
    if lowered == "stdevp":
        return Variance(population=True, stdev=True)
    if lowered == "var":
        return Variance(population=False, stdev=False)
    if lowered == "varp":
        return Variance(population=True, stdev=False)
    raise BindError("unknown aggregate %r" % name)


def result_type(name, arg_type):
    """Result SQLType of an aggregate given its argument type."""
    lowered = name.lower()
    if lowered in ("count", "count_big"):
        return SQLType.BIGINT if lowered == "count_big" else SQLType.INT
    if lowered in ("avg", "stdev", "stdevp", "var", "varp"):
        return SQLType.FLOAT
    return arg_type
