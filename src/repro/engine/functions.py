"""Scalar builtin functions, T-SQL flavoured.

The set is driven by the expression operators the paper reports in Table 4:
``like``, ``patindex``, ``substring``, ``isnumeric``, ``charindex``, ``len``,
``square``, ``upper`` and friends, plus date/time helpers used by binning
idioms.  All functions propagate NULL: a NULL argument yields NULL unless
documented otherwise (COALESCE, ISNULL, CONCAT).
"""

import datetime as _dt
import math
import re
from decimal import Decimal

from repro.engine.types import SQLType, cast_value, format_value
from repro.errors import BindError, ExecutionError


class ScalarFunction(object):
    """Descriptor for one builtin: arity range, result type rule, impl."""

    __slots__ = ("name", "min_args", "max_args", "result_type", "impl", "null_safe")

    def __init__(self, name, min_args, max_args, result_type, impl, null_safe=False):
        self.name = name
        self.min_args = min_args
        self.max_args = max_args
        #: Either a SQLType or a callable(list_of_arg_types) -> SQLType.
        self.result_type = result_type
        self.impl = impl
        #: null_safe functions receive NULL arguments instead of shortcutting.
        self.null_safe = null_safe

    def type_of(self, arg_types):
        if callable(self.result_type):
            return self.result_type(arg_types)
        return self.result_type

    def __call__(self, *args):
        if not self.null_safe and any(arg is None for arg in args):
            return None
        return self.impl(*args)


def like_match(value, pattern):
    """SQL LIKE: ``%`` any run, ``_`` one char, ``[...]`` char class (T-SQL)."""
    if value is None or pattern is None:
        return None
    regex = _like_regex(pattern)
    return bool(regex.match(str(value)))


_LIKE_CACHE = {}


def _like_regex(pattern):
    cached = _LIKE_CACHE.get(pattern)
    if cached is not None:
        return cached
    out = []
    i, n = 0, len(pattern)
    while i < n:
        ch = pattern[i]
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        elif ch == "[":
            end = pattern.find("]", i + 1)
            if end < 0:
                out.append(re.escape(ch))
            else:
                # Keep '-' ranges intact; only the backslash needs escaping
                # inside a character class (']' cannot occur in body).
                body = pattern[i + 1 : end].replace("\\", "\\\\")
                if body.startswith("^") or body.startswith("!"):
                    out.append("[^%s]" % body[1:])
                else:
                    out.append("[%s]" % body)
                i = end
        else:
            out.append(re.escape(ch))
        i += 1
    try:
        regex = re.compile("".join(out) + r"\Z", re.IGNORECASE | re.DOTALL)
    except re.error:
        # Malformed character class in dirty data (e.g. '[4-1]'): fall back
        # to a literal match of the pattern text, as T-SQL effectively does
        # for degenerate classes.
        regex = re.compile(re.escape(pattern) + r"\Z", re.IGNORECASE | re.DOTALL)
    if len(_LIKE_CACHE) < 4096:
        _LIKE_CACHE[pattern] = regex
    return regex


def _to_number(value, context):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float, Decimal)):
        return value
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise ExecutionError("%s: %r is not numeric" % (context, value))
    raise ExecutionError("%s: %r is not numeric" % (context, value))


def _numeric_result(arg_types):
    for arg_type in arg_types:
        if arg_type is SQLType.FLOAT:
            return SQLType.FLOAT
    return SQLType.FLOAT


def _first_arg_type(arg_types):
    return arg_types[0] if arg_types else SQLType.UNKNOWN


# -- string functions ---------------------------------------------------------


def _len(value):
    # T-SQL LEN ignores trailing spaces.
    return len(str(value).rstrip(" "))


def _substring(value, start, length):
    text = str(value)
    start = int(start)
    length = int(length)
    if length < 0:
        raise ExecutionError("SUBSTRING: negative length")
    # T-SQL is 1-based; a start before 1 eats into the length.
    begin = max(0, start - 1)
    end = max(0, start - 1 + length)
    return text[begin:end]


def _charindex(needle, haystack, start=1):
    position = str(haystack).lower().find(str(needle).lower(), max(0, int(start) - 1))
    return position + 1


def _patindex(pattern, value):
    # PATINDEX patterns are LIKE patterns, conventionally wrapped in '%'.
    # The returned position is where the inner pattern starts (1-based).
    body = _like_regex(str(pattern)).pattern
    if body.endswith("\\Z"):
        body = body[:-2]
    anchored = not body.startswith(".*")
    if body.startswith(".*"):
        body = body[2:]
    if body.endswith(".*"):
        body = body[:-2]
    regex = re.compile(body, re.IGNORECASE | re.DOTALL)
    text = str(value)
    found = regex.match(text) if anchored else regex.search(text)
    return found.start() + 1 if found else 0


def _isnumeric(value):
    try:
        float(str(value).strip())
        return 1
    except (ValueError, TypeError):
        return 0


def _replace(value, old, new):
    return str(value).replace(str(old), str(new))


def _stuff(value, start, length, replacement):
    text = str(value)
    start = int(start)
    if start < 1 or start > len(text):
        return None
    return text[: start - 1] + str(replacement) + text[start - 1 + int(length) :]


def _left(value, count):
    return str(value)[: max(0, int(count))]


def _right(value, count):
    count = max(0, int(count))
    text = str(value)
    return text[-count:] if count else ""


def _concat(*args):
    return "".join("" if arg is None else format_value(arg) for arg in args)


def _reverse(value):
    return str(value)[::-1]


def _replicate(value, count):
    return str(value) * max(0, int(count))


def _space(count):
    return " " * max(0, int(count))


# -- math functions -------------------------------------------------------------


def _round(value, digits=0):
    number = _to_number(value, "ROUND")
    result = round(float(number), int(digits))
    return result


def _power(base, exponent):
    return math.pow(_to_number(base, "POWER"), _to_number(exponent, "POWER"))


def _sqrt(value):
    number = _to_number(value, "SQRT")
    if number < 0:
        raise ExecutionError("SQRT of a negative number")
    return math.sqrt(number)


def _log(value, base=None):
    number = _to_number(value, "LOG")
    if number <= 0:
        raise ExecutionError("LOG of a non-positive number")
    if base is None:
        return math.log(number)
    return math.log(number, _to_number(base, "LOG"))


def _sign(value):
    number = _to_number(value, "SIGN")
    return (number > 0) - (number < 0)


# -- date functions --------------------------------------------------------------


def _as_datetime(value, context):
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime.combine(value, _dt.time())
    if isinstance(value, str):
        return cast_value(value, SQLType.DATETIME)
    raise ExecutionError("%s: %r is not a date" % (context, value))


_DATEPART_ALIASES = {
    "year": "year", "yy": "year", "yyyy": "year",
    "quarter": "quarter", "qq": "quarter", "q": "quarter",
    "month": "month", "mm": "month", "m": "month",
    "day": "day", "dd": "day", "d": "day",
    "dayofyear": "dayofyear", "dy": "dayofyear",
    "week": "week", "wk": "week", "ww": "week",
    "weekday": "weekday", "dw": "weekday",
    "hour": "hour", "hh": "hour",
    "minute": "minute", "mi": "minute", "n": "minute",
    "second": "second", "ss": "second", "s": "second",
}


def _extract_part(part, moment):
    if part == "year":
        return moment.year
    if part == "quarter":
        return (moment.month - 1) // 3 + 1
    if part == "month":
        return moment.month
    if part == "day":
        return moment.day
    if part == "dayofyear":
        return moment.timetuple().tm_yday
    if part == "week":
        return moment.isocalendar()[1]
    if part == "weekday":
        return moment.isoweekday() % 7 + 1  # Sunday=1, like T-SQL default
    if part == "hour":
        return moment.hour
    if part == "minute":
        return moment.minute
    if part == "second":
        return moment.second
    raise ExecutionError("unsupported datepart %r" % part)


def _datepart(part_name, value):
    part = _DATEPART_ALIASES.get(str(part_name).lower())
    if part is None:
        raise ExecutionError("unsupported datepart %r" % part_name)
    return _extract_part(part, _as_datetime(value, "DATEPART"))


_PART_SECONDS = {"hour": 3600.0, "minute": 60.0, "second": 1.0}


def _datediff(part_name, start, end):
    part = _DATEPART_ALIASES.get(str(part_name).lower())
    if part is None:
        raise ExecutionError("unsupported datepart %r" % part_name)
    begin = _as_datetime(start, "DATEDIFF")
    finish = _as_datetime(end, "DATEDIFF")
    if part == "year":
        return finish.year - begin.year
    if part == "quarter":
        return (finish.year - begin.year) * 4 + (
            (finish.month - 1) // 3 - (begin.month - 1) // 3
        )
    if part == "month":
        return (finish.year - begin.year) * 12 + finish.month - begin.month
    delta = finish - begin
    if part in ("day", "dayofyear", "weekday"):
        return (finish.date() - begin.date()).days
    if part == "week":
        return (finish.date() - begin.date()).days // 7
    return int(delta.total_seconds() // _PART_SECONDS[part])


def _dateadd(part_name, amount, value):
    part = _DATEPART_ALIASES.get(str(part_name).lower())
    if part is None:
        raise ExecutionError("unsupported datepart %r" % part_name)
    moment = _as_datetime(value, "DATEADD")
    amount = int(amount)
    if part == "year":
        return _safe_replace(moment, year=moment.year + amount)
    if part == "quarter":
        return _add_months(moment, amount * 3)
    if part == "month":
        return _add_months(moment, amount)
    if part in ("day", "dayofyear", "weekday"):
        return moment + _dt.timedelta(days=amount)
    if part == "week":
        return moment + _dt.timedelta(weeks=amount)
    return moment + _dt.timedelta(seconds=amount * _PART_SECONDS[part])


def _add_months(moment, months):
    month_index = moment.year * 12 + (moment.month - 1) + months
    year, month = divmod(month_index, 12)
    day = min(moment.day, _days_in_month(year, month + 1))
    return moment.replace(year=year, month=month + 1, day=day)


def _days_in_month(year, month):
    if month == 12:
        nxt = _dt.date(year + 1, 1, 1)
    else:
        nxt = _dt.date(year, month + 1, 1)
    return (nxt - _dt.date(year, month, 1)).days


def _safe_replace(moment, **kwargs):
    try:
        return moment.replace(**kwargs)
    except ValueError:
        # Feb 29 + 1 year: clamp to Feb 28, as DATEADD does.
        kwargs["day"] = 28
        return moment.replace(**kwargs)


# A fixed "now" keeps the engine deterministic; the platform layer passes
# logical timestamps through the workload instead of relying on GETDATE().
_EPOCH_NOW = _dt.datetime(2015, 6, 30, 12, 0, 0)


def _getdate():
    return _EPOCH_NOW


# -- null handling ---------------------------------------------------------------


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _isnull(value, fallback):
    return fallback if value is None else value


def _nullif(left, right):
    if left is None:
        return None
    return None if left == right else left


def _iif(condition, when_true, when_false):
    return when_true if condition else when_false


def _varchar_type(_):
    return SQLType.VARCHAR


_REGISTRY = {}


def _register(name, min_args, max_args, result_type, impl, null_safe=False):
    _REGISTRY[name] = ScalarFunction(name, min_args, max_args, result_type, impl, null_safe)


# Strings (Table 4a operators are well represented here).
_register("len", 1, 1, SQLType.INT, _len)
_register("datalength", 1, 1, SQLType.INT, lambda v: len(str(v)))
_register("upper", 1, 1, SQLType.VARCHAR, lambda v: str(v).upper())
_register("lower", 1, 1, SQLType.VARCHAR, lambda v: str(v).lower())
_register("ltrim", 1, 1, SQLType.VARCHAR, lambda v: str(v).lstrip())
_register("rtrim", 1, 1, SQLType.VARCHAR, lambda v: str(v).rstrip())
_register("trim", 1, 1, SQLType.VARCHAR, lambda v: str(v).strip())
_register("substring", 3, 3, SQLType.VARCHAR, _substring)
_register("charindex", 2, 3, SQLType.INT, _charindex)
_register("patindex", 2, 2, SQLType.INT, _patindex)
_register("isnumeric", 1, 1, SQLType.INT, _isnumeric)
_register("replace", 3, 3, SQLType.VARCHAR, _replace)
_register("stuff", 4, 4, SQLType.VARCHAR, _stuff)
_register("left", 2, 2, SQLType.VARCHAR, _left)
_register("right", 2, 2, SQLType.VARCHAR, _right)
_register("concat", 2, 16, SQLType.VARCHAR, _concat, null_safe=True)
_register("reverse", 1, 1, SQLType.VARCHAR, _reverse)
_register("replicate", 2, 2, SQLType.VARCHAR, _replicate)
_register("space", 1, 1, SQLType.VARCHAR, _space)
_register("str", 1, 3, SQLType.VARCHAR, lambda v, *a: format_value(v))
_register("ascii", 1, 1, SQLType.INT, lambda v: ord(str(v)[0]) if str(v) else None)
_register("char", 1, 1, SQLType.VARCHAR, lambda v: chr(int(v)))

# Math (SQUARE shows up in Table 4a).
_register("abs", 1, 1, _first_arg_type, lambda v: abs(_to_number(v, "ABS")))
_register("round", 1, 2, _numeric_result, _round)
_register("floor", 1, 1, SQLType.INT, lambda v: int(math.floor(_to_number(v, "FLOOR"))))
_register("ceiling", 1, 1, SQLType.INT, lambda v: int(math.ceil(_to_number(v, "CEILING"))))
_register("square", 1, 1, SQLType.FLOAT, lambda v: float(_to_number(v, "SQUARE")) ** 2)
_register("sqrt", 1, 1, SQLType.FLOAT, _sqrt)
_register("power", 2, 2, SQLType.FLOAT, _power)
_register("exp", 1, 1, SQLType.FLOAT, lambda v: math.exp(_to_number(v, "EXP")))
_register("log", 1, 2, SQLType.FLOAT, _log)
_register("log10", 1, 1, SQLType.FLOAT, lambda v: _log(v, 10))
_register("sign", 1, 1, SQLType.INT, _sign)
_register("pi", 0, 0, SQLType.FLOAT, lambda: math.pi)
_register("sin", 1, 1, SQLType.FLOAT, lambda v: math.sin(_to_number(v, "SIN")))
_register("cos", 1, 1, SQLType.FLOAT, lambda v: math.cos(_to_number(v, "COS")))
_register("tan", 1, 1, SQLType.FLOAT, lambda v: math.tan(_to_number(v, "TAN")))
_register("atan", 1, 1, SQLType.FLOAT, lambda v: math.atan(_to_number(v, "ATAN")))
_register(
    "atn2", 2, 2, SQLType.FLOAT,
    lambda y, x: math.atan2(_to_number(y, "ATN2"), _to_number(x, "ATN2")),
)
_register("radians", 1, 1, SQLType.FLOAT, lambda v: math.radians(_to_number(v, "RADIANS")))
_register("degrees", 1, 1, SQLType.FLOAT, lambda v: math.degrees(_to_number(v, "DEGREES")))

# Dates.
_register("getdate", 0, 0, SQLType.DATETIME, _getdate)
_register("getutcdate", 0, 0, SQLType.DATETIME, _getdate)
_register("year", 1, 1, SQLType.INT, lambda v: _extract_part("year", _as_datetime(v, "YEAR")))
_register("month", 1, 1, SQLType.INT, lambda v: _extract_part("month", _as_datetime(v, "MONTH")))
_register("day", 1, 1, SQLType.INT, lambda v: _extract_part("day", _as_datetime(v, "DAY")))
_register("datepart", 2, 2, SQLType.INT, _datepart)
_register("datediff", 3, 3, SQLType.INT, _datediff)
_register("dateadd", 3, 3, SQLType.DATETIME, _dateadd)

# NULL handling / conditionals.
_register(
    "coalesce", 1, 16,
    lambda types: next((t for t in types if t is not SQLType.UNKNOWN), SQLType.UNKNOWN),
    _coalesce, null_safe=True,
)
_register(
    "isnull", 2, 2,
    lambda types: types[0] if types[0] is not SQLType.UNKNOWN else types[1],
    _isnull, null_safe=True,
)
_register("nullif", 2, 2, _first_arg_type, _nullif, null_safe=True)
_register("iif", 3, 3, lambda types: types[1], _iif, null_safe=True)
_register("newid", 0, 0, SQLType.VARCHAR, lambda: "00000000-0000-0000-0000-000000000000")


def lookup(name, arg_count):
    """Resolve a scalar function by name and arity.

    Raises :class:`BindError` for unknown names or bad arity — the same
    failure mode users hit in the real system for unsupported builtins.
    """
    func = _REGISTRY.get(name.lower())
    if func is None:
        raise BindError("unknown function %r" % name)
    if not (func.min_args <= arg_count <= func.max_args):
        raise BindError(
            "function %s expects %d..%d arguments, got %d"
            % (name.upper(), func.min_args, func.max_args, arg_count)
        )
    return func


def is_scalar_function(name):
    return name.lower() in _REGISTRY


def function_names():
    return sorted(_REGISTRY)
