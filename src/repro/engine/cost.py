"""SQL-Server-flavoured cost model.

The constants mirror the well-known SQL Server optimizer magic numbers so
that extracted plans look like the ones the paper's pipeline consumed
(e.g. the ``io: 0.003125`` of Listing 1 is one random-I/O page).  Costs are
unitless "optimizer seconds"; the analysis layer treats them as estimated
runtimes, exactly as the paper does with SHOWPLAN estimates.
"""

import math

#: Cost of the first (random) page read.
RANDOM_IO = 0.003125
#: Cost of each subsequent sequential page read.
SEQUENTIAL_IO = 0.000740740740741
#: Base CPU cost of touching the first row.
CPU_BASE = 0.0001581
#: CPU cost of each subsequent row.
CPU_PER_ROW = 0.0000011
#: CPU per row for predicate evaluation in a Filter.
FILTER_CPU_PER_ROW = 0.0000010
#: CPU per output row for Compute Scalar.
COMPUTE_SCALAR_CPU = 0.0000001
#: Nested Loops per-comparison CPU.
NESTED_LOOP_CPU = 0.00000418
#: Hash Match startup (memory grant) plus build/probe per-row CPU.
HASH_STARTUP = 0.0075
HASH_BUILD_CPU = 0.0000017
HASH_PROBE_CPU = 0.0000011
#: Sort startup cost and per-comparison CPU.
SORT_STARTUP = 0.0112613
SORT_CPU_PER_COMPARISON = 0.000001
#: Merge Join per-row CPU.
MERGE_CPU_PER_ROW = 0.0000044
#: Stream Aggregate per-row CPU.
AGGREGATE_CPU_PER_ROW = 0.0000018
#: Bytes per page for I/O estimation.
PAGE_SIZE = 8192.0
#: Fixed per-row storage overhead in bytes.
ROW_OVERHEAD = 9


def pages_for(rows, row_size):
    """Number of pages holding ``rows`` rows of ``row_size`` bytes."""
    if rows <= 0:
        return 1.0
    return max(1.0, math.ceil(rows * row_size / PAGE_SIZE))


def scan_io(rows, row_size):
    """I/O cost of a full sequential scan."""
    pages = pages_for(rows, row_size)
    return RANDOM_IO + SEQUENTIAL_IO * max(0.0, pages - 1)


def seek_io(matching_rows, row_size):
    """I/O cost of a clustered-index seek returning ``matching_rows``."""
    pages = pages_for(matching_rows, row_size)
    return RANDOM_IO + SEQUENTIAL_IO * max(0.0, pages - 1)


def scan_cpu(rows):
    """CPU cost of producing ``rows`` rows from a scan or seek."""
    return CPU_BASE + CPU_PER_ROW * max(0.0, rows - 1)


def sort_cpu(rows):
    """CPU cost of sorting ``rows`` rows (n log2 n comparisons)."""
    if rows <= 1:
        return SORT_STARTUP
    return SORT_STARTUP + SORT_CPU_PER_COMPARISON * rows * math.log(rows, 2)


def hash_join_cpu(build_rows, probe_rows):
    return HASH_STARTUP + HASH_BUILD_CPU * build_rows + HASH_PROBE_CPU * probe_rows


def nested_loop_cpu(outer_rows, inner_rows):
    return NESTED_LOOP_CPU * outer_rows * max(1.0, inner_rows)


def merge_join_cpu(left_rows, right_rows):
    return MERGE_CPU_PER_ROW * (left_rows + right_rows)


def aggregate_cpu(input_rows):
    return AGGREGATE_CPU_PER_ROW * max(1.0, input_rows)


# -- selectivity heuristics (SQL-Server-style defaults) -------------------------
#
# When no statistics apply (non-numeric literals, unsampled columns, exotic
# predicates) the planner falls back to these fixed guesses — the classic
# SQL Server "magic numbers".  They are *defaults*, not truths: the whole
# premise of `repro.adaptive` is that ad-hoc workloads over unmanaged
# schemas (the paper's population) violate them constantly.  Each one is a
# named module constant so experiments can reference them, and the
# :class:`SelectivityDefaults` bundle below is the single override point —
# the planner reads every guess through its ``Planner.selectivity_defaults``
# instance, so the cardinality-feedback layer (or a test) can swap in a
# tuned set without monkey-patching module globals.

#: ``col = literal`` with no usable distinct-count statistics.
EQUALITY_DEFAULT = 0.1
#: ``col < / > / <= / >= / <>`` where range statistics don't apply
#: (e.g. a non-numeric literal the sampled histogram can't place).
RANGE_DEFAULT = 0.30
#: ``col LIKE pattern``.
LIKE_DEFAULT = 0.10
#: ``col IS NULL``.
NULL_DEFAULT = 0.05
#: Any predicate shape the heuristics cannot classify.
UNKNOWN_DEFAULT = 0.33


class SelectivityDefaults(object):
    """The planner's fallback-selectivity bundle (the single override point).

    Immutable by convention: build a new instance to change a guess.  The
    planner holds one of these (``Planner.selectivity_defaults``) and every
    heuristic fallback in ``_predicate_selectivity`` reads through it, so
    replacing the instance retunes the whole cost model at once.
    """

    __slots__ = ("equality", "range", "like", "null", "unknown")

    def __init__(self, equality=EQUALITY_DEFAULT, range=RANGE_DEFAULT,
                 like=LIKE_DEFAULT, null=NULL_DEFAULT,
                 unknown=UNKNOWN_DEFAULT):
        self.equality = equality
        self.range = range
        self.like = like
        self.null = null
        self.unknown = unknown

    def to_dict(self):
        return {"equality": self.equality, "range": self.range,
                "like": self.like, "null": self.null,
                "unknown": self.unknown}


#: The shared stock instance planners start from.
DEFAULTS = SelectivityDefaults()


def conjunct_selectivity(selectivities):
    """Combined selectivity of ANDed predicates (independence assumption)."""
    result = 1.0
    for sel in selectivities:
        result *= sel
    return max(result, 1e-6)


def disjunct_selectivity(left, right):
    """Combined selectivity of ORed predicates."""
    return min(1.0, left + right - left * right)
