"""System catalog: table schemas, view definitions, statistics.

Mirrors the paper's backend constraints where they matter to the analysis:
every base table carries a clustered index over *all* columns in column
order (the SQL Azure requirement noted in Section 3.4), which is why scans
surface as ``Clustered Index Scan`` and leading-column predicates as
``Clustered Index Seek`` in plans.
"""

import threading

from repro.engine.types import SQLType, TYPE_WIDTH, value_width
from repro.errors import CatalogError


class Column(object):
    """A named, typed column of a table or view output."""

    __slots__ = ("name", "sql_type")

    def __init__(self, name, sql_type):
        self.name = name
        self.sql_type = sql_type

    def __repr__(self):
        return "Column(%r, %s)" % (self.name, self.sql_type.value)

    def __eq__(self, other):
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.sql_type == other.sql_type
        )

    def __hash__(self):
        return hash((self.name, self.sql_type))


class TableStatistics(object):
    """Cheap per-table statistics driving cardinality estimation.

    Tracks row count, average row width, and per-column distinct-value
    estimates (exact counts maintained incrementally; adequate at the
    workload's scale and deterministic for tests).
    """

    def __init__(self):
        self.row_count = 0
        self.total_width = 0
        self.distinct = {}  # column name -> set of values (bounded)
        self._distinct_cap = 10000
        self._overflow = set()  # columns whose distinct sets overflowed
        #: Deterministic numeric value samples per column (range selectivity).
        self.samples = {}
        self._sample_cap = 400

    def observe_row(self, columns, row):
        self.row_count += 1
        for column, value in zip(columns, row):
            self.total_width += value_width(value, column.sql_type)
            self._observe_sample(column.name, value)
            if column.name in self._overflow:
                continue
            bucket = self.distinct.setdefault(column.name, set())
            bucket.add(value)
            if len(bucket) > self._distinct_cap:
                self._overflow.add(column.name)

    def _observe_sample(self, column_name, value):
        if value is None or isinstance(value, bool):
            return
        if not isinstance(value, (int, float)):
            return
        sample = self.samples.setdefault(column_name, [])
        if len(sample) < self._sample_cap:
            sample.append(float(value))
        else:
            # Deterministic reservoir: a pseudo-random slot keyed off the
            # row count, so repeated builds estimate identically.
            slot = (self.row_count * 2654435761) % self.row_count
            if slot < self._sample_cap:
                sample[slot] = float(value)

    def range_selectivity(self, column_name, op, literal):
        """Estimated selectivity of ``column <op> literal`` from the sample.

        Returns None when the column has no usable numeric sample (callers
        fall back to the optimizer's magic default).
        """
        sample = self.samples.get(column_name)
        if not sample:
            return None
        try:
            bound = float(literal)
        except (TypeError, ValueError):
            return None
        if op == "<":
            hits = sum(1 for v in sample if v < bound)
        elif op == "<=":
            hits = sum(1 for v in sample if v <= bound)
        elif op == ">":
            hits = sum(1 for v in sample if v > bound)
        elif op == ">=":
            hits = sum(1 for v in sample if v >= bound)
        elif op == "<>":
            hits = sum(1 for v in sample if v != bound)
        else:
            return None
        # Clamp away 0 and 1 so downstream cardinalities never collapse.
        return min(0.999, max(1.0 / (len(sample) * 2.0), hits / float(len(sample))))

    def forget(self):
        self.row_count = 0
        self.total_width = 0
        self.distinct = {}
        self._overflow = set()
        self.samples = {}

    def distinct_count(self, column_name):
        """Estimated number of distinct values in a column (>= 1)."""
        if column_name in self._overflow:
            # Saturated: assume high cardinality proportional to rows.
            return max(self._distinct_cap, int(self.row_count * 0.9))
        bucket = self.distinct.get(column_name)
        if not bucket:
            return 1
        return max(1, len(bucket))

    def avg_row_width(self, columns):
        if self.row_count:
            return max(1.0, self.total_width / float(self.row_count))
        return float(sum(TYPE_WIDTH[c.sql_type] for c in columns)) or 8.0


class Table(object):
    """A base table: schema, row storage and statistics.

    Rows are tuples aligned with ``columns``.  The clustered index is
    modelled as the sort order over all columns; we keep insertion order
    and expose ``clustered_prefix`` for the planner's seek detection.
    """

    def __init__(self, name, columns):
        if not columns:
            raise CatalogError("table %r must have at least one column" % name)
        seen = set()
        for column in columns:
            key = column.name.lower()
            if key in seen:
                raise CatalogError(
                    "duplicate column %r in table %r" % (column.name, name)
                )
            seen.add(key)
        self.name = name
        self.columns = list(columns)
        self.rows = []
        self.stats = TableStatistics()
        #: Advisor-chosen clustered-index column (None = default first column).
        #: Soft state: not WAL-logged, so a recovered deployment reverts to
        #: the default ordering until the advisor re-applies it.
        self.clustered_on = None
        #: Sorted key column for the seek bisect fast path; only valid while
        #: ``_cluster_sorted`` holds (any insert invalidates it).
        self._cluster_keys = None
        self._cluster_lo = 0  # index of first non-NULL key
        self._cluster_sorted = False

    @property
    def clustered_prefix(self):
        """Leading column of the clustered index (first column by design,
        unless :meth:`recluster` moved it)."""
        return self.clustered_on or self.columns[0].name

    def recluster(self, column_name):
        """Re-sort row storage so ``column_name`` leads the clustered index.

        This is the engine half of the advisor's "create index" action: SQL
        Azure mandates exactly one clustered index per table (§3.4), so the
        only index the advisor can offer is a *different* clustered order.
        Rows are stably sorted NULLs-first by the column; afterwards sargable
        predicates on it plan as seeks and execute via a bisect fast path.
        """
        index = self.column_index(column_name)

        def sort_key(row):
            value = row[index]
            return (value is not None, value)

        try:
            self.rows = sorted(self.rows, key=sort_key)
        except TypeError:
            raise CatalogError(
                "cannot recluster %r on %r: mixed-type values do not sort"
                % (self.name, column_name)
            )
        self.clustered_on = self.columns[index].name
        keys = [row[index] for row in self.rows]
        lo = 0
        while lo < len(keys) and keys[lo] is None:
            lo += 1
        self._cluster_keys = keys
        self._cluster_lo = lo
        self._cluster_sorted = True

    def _invalidate_cluster_order(self):
        self._cluster_keys = None
        self._cluster_lo = 0
        self._cluster_sorted = False

    def column_index(self, name):
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError("no column %r in table %r" % (name, self.name))

    def insert_row(self, row):
        if len(row) != len(self.columns):
            raise CatalogError(
                "row arity %d does not match table %r arity %d"
                % (len(row), self.name, len(self.columns))
            )
        row = tuple(row)
        self.rows.append(row)
        if self._cluster_sorted:
            self._invalidate_cluster_order()
        self.stats.observe_row(self.columns, row)

    def alter_column_type(self, column_name, new_type, convert):
        """Retype a column in place, converting stored values with ``convert``.

        Used by the ingest fallback: when the prefix-inferred type fails on a
        later row, the column reverts to VARCHAR via ALTER TABLE (§3.1).
        """
        index = self.column_index(column_name)
        old = self.columns[index]
        self.columns[index] = Column(old.name, new_type)
        self.rows = [
            row[:index] + (convert(row[index]),) + row[index + 1 :] for row in self.rows
        ]
        self._invalidate_cluster_order()
        self._rebuild_stats()

    def _rebuild_stats(self):
        self.stats.forget()
        for row in self.rows:
            self.stats.observe_row(self.columns, row)


class View(object):
    """A named view: raw SQL text plus its parsed query and output schema."""

    def __init__(self, name, sql, query, columns):
        self.name = name
        self.sql = sql
        self.query = query
        self.columns = list(columns)


class Catalog(object):
    """Name-to-object map for tables and views (case-insensitive).

    Thread-safe for concurrent readers and DDL writers: all dictionary
    access goes through an RLock, and ``tables()``/``views()`` return
    snapshots so callers never iterate a dict being resized.  Row storage
    itself is copy-on-write-ish: readers that obtained a Table keep a
    consistent row list even while ALTER rebuilds it (the rebuild rebinds
    ``table.rows`` rather than mutating in place).

    Every object also carries a monotonically increasing *version*,
    bumped on any DDL or DML that can change its contents (CREATE, DROP,
    INSERT, ALTER, view redefinition).  Versions survive DROP so a
    re-created object never reuses an old version — the runtime's result
    cache keys on (name, version) vectors and relies on this.
    """

    def __init__(self):
        self._tables = {}
        self._views = {}
        self._versions = {}  # lower-cased name -> int (monotonic, survives drop)
        self._lock = threading.RLock()

    # -- versions -------------------------------------------------------------

    def bump_version(self, name):
        """Record that ``name``'s contents changed; returns the new version."""
        key = name.lower()
        with self._lock:
            version = self._versions.get(key, 0) + 1
            self._versions[key] = version
            return version

    def version_of(self, name):
        """Current version of an object (0 if it never existed)."""
        return self._versions.get(name.lower(), 0)

    def version_vector(self, names):
        """Sorted ((name, version), ...) tuple over ``names`` — the result
        cache's validity stamp for a query touching those objects."""
        with self._lock:
            return tuple(sorted(
                (name.lower(), self._versions.get(name.lower(), 0))
                for name in names
            ))

    def all_versions(self):
        """Snapshot of the whole version map (durability serialization)."""
        with self._lock:
            return dict(self._versions)

    def restore_versions(self, mapping):
        """Merge a persisted version map, keeping whichever is higher —
        adoption during restore already bumped once per object, and a
        version must never move backwards."""
        with self._lock:
            for key, version in mapping.items():
                if version > self._versions.get(key, 0):
                    self._versions[key] = version

    def bump_all_versions(self):
        """Advance *every* known version by one (the recovery epoch bump).

        Any version vector stamped before the bump — e.g. by a result
        cache that survived the crash in some form — can no longer match,
        so recovered deployments are structurally unable to serve
        pre-crash cached results.  Returns the number of versions bumped.
        """
        with self._lock:
            for key in self._versions:
                self._versions[key] += 1
            return len(self._versions)

    # -- tables ---------------------------------------------------------------

    def create_table(self, name, columns):
        key = name.lower()
        with self._lock:
            if key in self._tables or key in self._views:
                raise CatalogError("object %r already exists" % name)
            table = Table(name, columns)
            self._tables[key] = table
            self.bump_version(name)
            return table

    def drop_table(self, name, if_exists=False):
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                if if_exists:
                    return
                raise CatalogError("no table named %r" % name)
            del self._tables[key]
            self.bump_version(name)

    def get_table(self, name):
        with self._lock:
            try:
                return self._tables[name.lower()]
            except KeyError:
                raise CatalogError("no table named %r" % name)

    def has_table(self, name):
        with self._lock:
            return name.lower() in self._tables

    def tables(self):
        with self._lock:
            return list(self._tables.values())

    def adopt_table(self, table):
        """Install an already-built Table during state restore.

        Unlike :meth:`create_table` this neither re-checks existence (the
        restoring catalog is empty by construction) nor leaves the version
        at the insert default — the caller restores the persisted version
        map afterwards."""
        with self._lock:
            self._tables[table.name.lower()] = table
            self.bump_version(table.name)
            return table

    # -- views ----------------------------------------------------------------

    def create_view(self, name, sql, query, columns, replace=False):
        key = name.lower()
        with self._lock:
            if key in self._tables:
                raise CatalogError("a table named %r already exists" % name)
            if key in self._views and not replace:
                raise CatalogError("a view named %r already exists" % name)
            view = View(name, sql, query, columns)
            self._views[key] = view
            self.bump_version(name)
            return view

    def drop_view(self, name, if_exists=False):
        key = name.lower()
        with self._lock:
            if key not in self._views:
                if if_exists:
                    return
                raise CatalogError("no view named %r" % name)
            del self._views[key]
            self.bump_version(name)

    def get_view(self, name):
        with self._lock:
            try:
                return self._views[name.lower()]
            except KeyError:
                raise CatalogError("no view named %r" % name)

    def has_view(self, name):
        with self._lock:
            return name.lower() in self._views

    def views(self):
        with self._lock:
            return list(self._views.values())

    def adopt_view(self, view):
        """Install an already-built View during state restore (see
        :meth:`adopt_table`)."""
        with self._lock:
            self._views[view.name.lower()] = view
            self.bump_version(view.name)
            return view

    # -- generic --------------------------------------------------------------

    def has_object(self, name):
        with self._lock:
            return self.has_table(name) or self.has_view(name)

    def resolve(self, name):
        """Return ('table', Table) or ('view', View) for a name."""
        key = name.lower()
        with self._lock:
            if key in self._tables:
                return "table", self._tables[key]
            if key in self._views:
                return "view", self._views[key]
        raise CatalogError("no table or view named %r" % name)
