"""Recursive-descent parser for the engine's T-SQL-flavoured dialect.

The grammar covers what the SQLShare workload needs (Section 3.5 of the
paper): full SELECT with joins and subqueries anywhere, set operations,
GROUP BY/HAVING, ORDER BY, TOP [PERCENT], CASE, CAST/CONVERT/TRY_CAST,
window functions via OVER, and the DDL/DML the platform itself issues
(CREATE/DROP VIEW and TABLE, INSERT, ALTER TABLE ... ALTER COLUMN).
"""

from repro.engine import ast_nodes as ast
from repro.engine import lexer
from repro.engine.lexer import EOF, IDENT, KEYWORD, NUMBER, OP, PUNCT, STRING
from repro.errors import ParseError, Span

_COMPARISON_OPS = ("=", "<>", "<", ">", "<=", ">=")
_JOIN_KINDS = ("inner", "left", "right", "full", "cross")

#: Function names treated as aggregates by the parser's OVER handling.
AGGREGATE_NAMES = frozenset(
    ["count", "sum", "avg", "min", "max", "stdev", "stdevp", "var", "varp",
     "count_big", "string_agg"]
)

#: Ranking window functions (only meaningful with OVER).
RANKING_NAMES = frozenset(["row_number", "rank", "dense_rank", "ntile"])


def parse(sql):
    """Parse one SQL statement; returns an AST statement node.

    Raises :class:`ParseError` if the text is not a single valid statement.
    """
    return Parser(sql).parse_statement()


def parse_expression(sql):
    """Parse a standalone scalar expression (used in tests and tools)."""
    parser = Parser(sql)
    expr = parser._expression()
    parser._expect_eof()
    return expr


class Parser(object):
    """Single-statement parser over a token list."""

    def __init__(self, sql):
        self.sql = sql
        self.tokens = lexer.tokenize(sql)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, ahead=0):
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self):
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def _accept(self, kind, value=None):
        if self._peek().matches(kind, value):
            return self._next()
        return None

    def _expect(self, kind, value=None):
        token = self._accept(kind, value)
        if token is None:
            got = self._peek()
            raise ParseError(
                "expected %s %s, got %r near position %s"
                % (kind, value or "", got.value, got.pos),
                got,
            )
        return token

    def _expect_eof(self):
        self._accept(PUNCT, ";")
        if self._peek().kind != EOF:
            got = self._peek()
            raise ParseError("unexpected trailing input %r" % got.value, got)

    def _spanned(self, node, mark):
        """Attach a Span covering tokens[mark]..tokens[pos-1] to ``node``.

        Keeps an already-present (more specific) span.
        """
        last = len(self.tokens) - 1
        start = self.tokens[min(mark, last)]
        end = self.tokens[min(max(mark, self.pos - 1), last)]
        return node.with_span(Span(start.pos, end.end, start.line, start.col))

    # -- statements ----------------------------------------------------------

    def parse_statement(self):
        token = self._peek()
        if token.matches(KEYWORD, "with"):
            query = self._with_query()
            self._expect_eof()
            return query
        if token.matches(KEYWORD, "select") or token.matches(PUNCT, "("):
            query = self._query_expression()
            self._expect_eof()
            return query
        if token.matches(KEYWORD, "create"):
            stmt = self._create()
            self._expect_eof()
            return stmt
        if token.matches(KEYWORD, "drop"):
            stmt = self._drop()
            self._expect_eof()
            return stmt
        if token.matches(KEYWORD, "insert"):
            stmt = self._insert()
            self._expect_eof()
            return stmt
        if token.matches(KEYWORD, "alter"):
            stmt = self._alter()
            self._expect_eof()
            return stmt
        raise ParseError("unsupported statement start: %r" % token.value, token)

    def _with_query(self):
        mark = self.pos
        self._expect(KEYWORD, "with")
        ctes = []
        while True:
            mark = self.pos
            name = self._expect(IDENT).value
            columns = None
            if self._accept(PUNCT, "("):
                columns = [self._expect(IDENT).value]
                while self._accept(PUNCT, ","):
                    columns.append(self._expect(IDENT).value)
                self._expect(PUNCT, ")")
            self._expect(KEYWORD, "as")
            self._expect(PUNCT, "(")
            query = self._query_expression()
            self._expect(PUNCT, ")")
            ctes.append(
                self._spanned(ast.CommonTableExpression(name, query, columns), mark))
            if not self._accept(PUNCT, ","):
                break
        body = self._query_expression()
        return self._spanned(ast.WithQuery(ctes, body), mark)

    def _create(self):
        mark = self.pos
        self._expect(KEYWORD, "create")
        if self._accept(KEYWORD, "view"):
            name = self._qualified_name()
            self._expect(KEYWORD, "as")
            if self._peek().matches(KEYWORD, "with"):
                return self._spanned(ast.CreateView(name, self._with_query()), mark)
            query = self._query_expression()
            return self._spanned(ast.CreateView(name, query), mark)
        if self._accept(KEYWORD, "table"):
            name = self._qualified_name()
            self._expect(PUNCT, "(")
            columns = []
            while True:
                col_mark = self.pos
                col = self._expect(IDENT).value
                type_name = self._type_name()
                columns.append(self._spanned(ast.ColumnDef(col, type_name), col_mark))
                if not self._accept(PUNCT, ","):
                    break
            self._expect(PUNCT, ")")
            return self._spanned(ast.CreateTable(name, columns), mark)
        token = self._peek()
        raise ParseError("expected VIEW or TABLE after CREATE", token)

    def _drop(self):
        mark = self.pos
        self._expect(KEYWORD, "drop")
        if self._accept(KEYWORD, "view"):
            if_exists = self._if_exists()
            return self._spanned(ast.DropView(self._qualified_name(), if_exists), mark)
        if self._accept(KEYWORD, "table"):
            if_exists = self._if_exists()
            return self._spanned(ast.DropTable(self._qualified_name(), if_exists), mark)
        raise ParseError("expected VIEW or TABLE after DROP", self._peek())

    def _if_exists(self):
        # "IF EXISTS" — IF is not a keyword in our lexer, so match idents.
        if self._peek().matches(IDENT) and self._peek().value.lower() == "if":
            if self._peek(1).matches(KEYWORD, "exists"):
                self._next()
                self._next()
                return True
        return False

    def _insert(self):
        mark = self.pos
        self._expect(KEYWORD, "insert")
        self._expect(KEYWORD, "into")
        table = self._qualified_name()
        columns = None
        if self._accept(PUNCT, "("):
            columns = []
            while True:
                columns.append(self._expect(IDENT).value)
                if not self._accept(PUNCT, ","):
                    break
            self._expect(PUNCT, ")")
        if self._accept(KEYWORD, "values"):
            rows = []
            while True:
                self._expect(PUNCT, "(")
                row = []
                while True:
                    row.append(self._expression())
                    if not self._accept(PUNCT, ","):
                        break
                self._expect(PUNCT, ")")
                rows.append(row)
                if not self._accept(PUNCT, ","):
                    break
            return self._spanned(ast.Insert(table, columns=columns, rows=rows), mark)
        query = self._query_expression()
        return self._spanned(ast.Insert(table, columns=columns, query=query), mark)

    def _alter(self):
        mark = self.pos
        self._expect(KEYWORD, "alter")
        self._expect(KEYWORD, "table")
        table = self._qualified_name()
        self._expect(KEYWORD, "alter")
        self._expect(KEYWORD, "column")
        column = self._expect(IDENT).value
        type_name = self._type_name()
        return self._spanned(ast.AlterColumn(table, column, type_name), mark)

    def _type_name(self):
        token = self._peek()
        if token.kind == IDENT:
            self._next()
            name = token.value
        elif token.kind == KEYWORD and token.value in ("table", "view"):
            raise ParseError("expected a type name", token)
        else:
            # Some type names collide with nothing; accept keywords that are
            # also valid type words is unnecessary in this dialect.
            raise ParseError("expected a type name, got %r" % token.value, token)
        if self._accept(PUNCT, "("):
            parts = [str(self._expect(NUMBER).value)]
            while self._accept(PUNCT, ","):
                parts.append(str(self._expect(NUMBER).value))
            self._expect(PUNCT, ")")
            name = "%s(%s)" % (name, ",".join(parts))
        return name

    def _qualified_name(self):
        """Dotted name like ``schema.table``; returned joined with dots."""
        parts = [self._expect(IDENT).value]
        while self._accept(PUNCT, "."):
            parts.append(self._expect(IDENT).value)
        return ".".join(parts)

    # -- query expressions ----------------------------------------------------

    def _query_expression(self):
        """Handle set operations with left associativity.

        INTERSECT binds tighter than UNION/EXCEPT per the standard; the
        workload rarely mixes them, so we keep plain left-to-right with the
        standard's precedence implemented in one pass.
        """
        mark = self.pos
        left = self._query_term()
        while True:
            token = self._peek()
            if token.matches(KEYWORD, ("union", "except")):
                op = self._next().value
                all_rows = bool(self._accept(KEYWORD, "all"))
                right = self._query_term()
                left = self._spanned(
                    ast.SetOperation(op, left, right, all=all_rows), mark)
                # A trailing ORDER BY belongs to the whole set operation, but
                # the rightmost SELECT greedily consumes it; reclaim it here.
                if (
                    isinstance(right, ast.Select)
                    and right.order_by
                    and right.top is None
                ):
                    left.order_by = right.order_by
                    right.order_by = []
            else:
                break
        # A trailing ORDER BY applies to the whole set operation result.
        if isinstance(left, ast.SetOperation) and self._peek().matches(KEYWORD, "order"):
            left.order_by = self._order_by()
        return left

    def _query_term(self):
        mark = self.pos
        left = self._query_primary()
        while self._peek().matches(KEYWORD, "intersect"):
            self._next()
            all_rows = bool(self._accept(KEYWORD, "all"))
            right = self._query_primary()
            left = self._spanned(
                ast.SetOperation("intersect", left, right, all=all_rows), mark)
        return left

    def _query_primary(self):
        if self._accept(PUNCT, "("):
            query = self._query_expression()
            self._expect(PUNCT, ")")
            return query
        return self._select()

    def _select(self):
        mark = self.pos
        self._expect(KEYWORD, "select")
        distinct = False
        if self._accept(KEYWORD, "distinct"):
            distinct = True
        elif self._accept(KEYWORD, "all"):
            pass
        top = None
        top_percent = False
        if self._accept(KEYWORD, "top"):
            if self._accept(PUNCT, "("):
                top = self._expect(NUMBER).value
                self._expect(PUNCT, ")")
            else:
                top = self._expect(NUMBER).value
            top = int(top)
            if self._accept(KEYWORD, "percent"):
                top_percent = True
        items = [self._select_item()]
        while self._accept(PUNCT, ","):
            items.append(self._select_item())
        from_clause = None
        if self._accept(KEYWORD, "from"):
            from_clause = self._from_clause()
        where = None
        if self._accept(KEYWORD, "where"):
            where = self._expression()
        group_by = []
        if self._accept(KEYWORD, "group"):
            self._expect(KEYWORD, "by")
            group_by.append(self._expression())
            while self._accept(PUNCT, ","):
                group_by.append(self._expression())
        having = None
        if self._accept(KEYWORD, "having"):
            having = self._expression()
        order_by = []
        if self._peek().matches(KEYWORD, "order"):
            order_by = self._order_by()
        return self._spanned(
            ast.Select(
                items,
                from_clause=from_clause,
                where=where,
                group_by=group_by,
                having=having,
                order_by=order_by,
                distinct=distinct,
                top=top,
                top_percent=top_percent,
            ),
            mark,
        )

    def _order_by(self):
        self._expect(KEYWORD, "order")
        self._expect(KEYWORD, "by")
        items = [self._order_item()]
        while self._accept(PUNCT, ","):
            items.append(self._order_item())
        return items

    def _order_item(self):
        mark = self.pos
        expr = self._expression()
        descending = False
        if self._accept(KEYWORD, "desc"):
            descending = True
        else:
            self._accept(KEYWORD, "asc")
        return self._spanned(ast.OrderItem(expr, descending), mark)

    def _select_item(self):
        token = self._peek()
        mark = self.pos
        # "*" or "t.*"
        if token.matches(OP, "*"):
            self._next()
            return self._spanned(
                ast.SelectItem(self._spanned(ast.Star(), mark)), mark)
        if (
            token.kind == IDENT
            and self._peek(1).matches(PUNCT, ".")
            and self._peek(2).matches(OP, "*")
        ):
            self._next()
            self._next()
            self._next()
            return self._spanned(
                ast.SelectItem(self._spanned(ast.Star(table=token.value), mark)), mark)
        expr = self._expression()
        alias = None
        if self._accept(KEYWORD, "as"):
            alias = self._alias_name()
        elif self._peek().kind == IDENT:
            alias = self._next().value
        elif self._peek().kind == STRING:
            alias = self._next().value
        return self._spanned(ast.SelectItem(expr, alias), mark)

    def _alias_name(self):
        token = self._peek()
        if token.kind in (IDENT, STRING):
            return self._next().value
        raise ParseError("expected an alias name, got %r" % token.value, token)

    # -- FROM clause ----------------------------------------------------------

    def _from_clause(self):
        mark = self.pos
        left = self._table_source()
        while True:
            token = self._peek()
            if token.matches(PUNCT, ","):
                self._next()
                right = self._table_source()
                left = self._spanned(ast.Join("cross", left, right), mark)
                continue
            kind = self._join_kind()
            if kind is None:
                break
            right = self._table_source()
            condition = None
            if kind != "cross":
                self._expect(KEYWORD, "on")
                condition = self._expression()
            left = self._spanned(ast.Join(kind, left, right, condition), mark)
        return left

    def _join_kind(self):
        token = self._peek()
        if token.matches(KEYWORD, "join"):
            self._next()
            return "inner"
        if token.matches(KEYWORD, "inner"):
            self._next()
            self._expect(KEYWORD, "join")
            return "inner"
        if token.matches(KEYWORD, ("left", "right", "full")):
            kind = self._next().value
            self._accept(KEYWORD, "outer")
            self._expect(KEYWORD, "join")
            return kind
        if token.matches(KEYWORD, "cross"):
            self._next()
            self._expect(KEYWORD, "join")
            return "cross"
        return None

    def _table_source(self):
        mark = self.pos
        if self._accept(PUNCT, "("):
            # Either a derived table or a parenthesized join tree.
            if self._peek().matches(KEYWORD, "select") or self._peek().matches(PUNCT, "("):
                query = self._query_expression()
                self._expect(PUNCT, ")")
                alias = self._table_alias(required=True)
                return self._spanned(ast.SubqueryRef(query, alias), mark)
            source = self._from_clause()
            self._expect(PUNCT, ")")
            return source
        name = self._qualified_name()
        alias = self._table_alias(required=False)
        return self._spanned(ast.TableRef(name, alias), mark)

    def _table_alias(self, required):
        if self._accept(KEYWORD, "as"):
            return self._expect(IDENT).value
        if self._peek().kind == IDENT:
            return self._next().value
        if required:
            raise ParseError("derived table requires an alias", self._peek())
        return None

    # -- expressions ------------------------------------------------------------

    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        mark = self.pos
        left = self._and_expr()
        while self._accept(KEYWORD, "or"):
            right = self._and_expr()
            left = self._spanned(ast.BinaryOp("or", left, right), mark)
        return left

    def _and_expr(self):
        mark = self.pos
        left = self._not_expr()
        while self._accept(KEYWORD, "and"):
            right = self._not_expr()
            left = self._spanned(ast.BinaryOp("and", left, right), mark)
        return left

    def _not_expr(self):
        mark = self.pos
        if self._accept(KEYWORD, "not"):
            return self._spanned(ast.UnaryOp("not", self._not_expr()), mark)
        return self._predicate()

    def _predicate(self):
        mark = self.pos
        if self._peek().matches(KEYWORD, "exists"):
            self._next()
            self._expect(PUNCT, "(")
            subquery = self._query_expression()
            self._expect(PUNCT, ")")
            return self._spanned(ast.Exists(subquery), mark)
        left = self._additive()
        while True:
            token = self._peek()
            if token.kind == OP and token.value in _COMPARISON_OPS:
                op = self._next().value
                right = self._comparison_rhs()
                left = self._spanned(ast.BinaryOp(op, left, right), mark)
                continue
            negated = False
            look = token
            if token.matches(KEYWORD, "not"):
                look = self._peek(1)
                if look.matches(KEYWORD, ("like", "in", "between")):
                    self._next()
                    negated = True
                    token = self._peek()
                else:
                    break
            if token.matches(KEYWORD, "is"):
                self._next()
                neg = bool(self._accept(KEYWORD, "not"))
                self._expect(KEYWORD, "null")
                left = self._spanned(ast.IsNull(left, negated=neg), mark)
                continue
            if token.matches(KEYWORD, "like"):
                self._next()
                pattern = self._additive()
                left = self._spanned(ast.Like(left, pattern, negated=negated), mark)
                continue
            if token.matches(KEYWORD, "between"):
                self._next()
                low = self._additive()
                self._expect(KEYWORD, "and")
                high = self._additive()
                left = self._spanned(
                    ast.Between(left, low, high, negated=negated), mark)
                continue
            if token.matches(KEYWORD, "in"):
                self._next()
                self._expect(PUNCT, "(")
                if self._peek().matches(KEYWORD, "select"):
                    subquery = self._query_expression()
                    self._expect(PUNCT, ")")
                    left = self._spanned(
                        ast.InSubquery(left, subquery, negated=negated), mark)
                else:
                    items = [self._expression()]
                    while self._accept(PUNCT, ","):
                        items.append(self._expression())
                    self._expect(PUNCT, ")")
                    left = self._spanned(
                        ast.InList(left, items, negated=negated), mark)
                continue
            break
        return left

    def _comparison_rhs(self):
        # ANY/ALL/SOME quantified comparisons are not in the dialect; a bare
        # subquery on the RHS is a scalar subquery, handled in _primary.
        return self._additive()

    def _additive(self):
        mark = self.pos
        left = self._multiplicative()
        while True:
            token = self._peek()
            # Bitwise operators share this precedence level (T-SQL places
            # them near +/-); they exist for the SDSS flag-mask idiom.
            if token.kind == OP and token.value in ("+", "-", "||", "&", "|", "^"):
                op = self._next().value
                right = self._multiplicative()
                left = self._spanned(ast.BinaryOp(op, left, right), mark)
            else:
                break
        return left

    def _multiplicative(self):
        mark = self.pos
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == OP and token.value in ("*", "/", "%"):
                op = self._next().value
                right = self._unary()
                left = self._spanned(ast.BinaryOp(op, left, right), mark)
            else:
                break
        return left

    def _unary(self):
        token = self._peek()
        if token.kind == OP and token.value in ("-", "+"):
            mark = self.pos
            self._next()
            return self._spanned(ast.UnaryOp(token.value, self._unary()), mark)
        return self._primary()

    def _primary(self):
        token = self._peek()
        mark = self.pos
        if token.kind == NUMBER or token.kind == STRING:
            self._next()
            return self._spanned(ast.Literal(token.value), mark)
        if token.matches(KEYWORD, "null"):
            self._next()
            return self._spanned(ast.Literal(None), mark)
        if token.matches(KEYWORD, "true"):
            self._next()
            return self._spanned(ast.Literal(True), mark)
        if token.matches(KEYWORD, "false"):
            self._next()
            return self._spanned(ast.Literal(False), mark)
        if token.matches(KEYWORD, "case"):
            return self._spanned(self._case(), mark)
        if token.matches(KEYWORD, ("cast", "try_cast")):
            return self._spanned(self._cast(try_cast=token.value == "try_cast"), mark)
        if token.matches(KEYWORD, "convert"):
            return self._spanned(self._convert(), mark)
        if token.matches(PUNCT, "("):
            self._next()
            if self._peek().matches(KEYWORD, "select"):
                subquery = self._query_expression()
                self._expect(PUNCT, ")")
                return self._spanned(ast.ScalarSubquery(subquery), mark)
            expr = self._expression()
            self._expect(PUNCT, ")")
            return expr
        if token.kind == IDENT:
            return self._identifier_expression()
        if token.matches(OP, "*"):
            # COUNT(*) reaches here via FuncCall args parsing.
            self._next()
            return self._spanned(ast.Star(), mark)
        raise ParseError("unexpected token %r in expression" % (token.value,), token)

    def _identifier_expression(self):
        mark = self.pos
        name = self._expect(IDENT).value
        if self._peek().matches(PUNCT, "("):
            return self._spanned(self._func_call(name), mark)
        if self._accept(PUNCT, "."):
            column = self._expect(IDENT).value
            return self._spanned(ast.ColumnRef(column, table=name), mark)
        return self._spanned(ast.ColumnRef(name), mark)

    def _func_call(self, name):
        self._expect(PUNCT, "(")
        distinct = False
        args = []
        if not self._peek().matches(PUNCT, ")"):
            if self._accept(KEYWORD, "distinct"):
                distinct = True
            elif self._accept(KEYWORD, "all"):
                pass
            args.append(self._expression())
            while self._accept(PUNCT, ","):
                args.append(self._expression())
        self._expect(PUNCT, ")")
        call = ast.FuncCall(name, args, distinct=distinct)
        if self._peek().matches(KEYWORD, "over"):
            return self._over(call)
        return call

    def _over(self, call):
        self._expect(KEYWORD, "over")
        self._expect(PUNCT, "(")
        partition_by = []
        order_by = []
        if self._accept(KEYWORD, "partition"):
            self._expect(KEYWORD, "by")
            partition_by.append(self._expression())
            while self._accept(PUNCT, ","):
                partition_by.append(self._expression())
        if self._peek().matches(KEYWORD, "order"):
            order_by = self._order_by()
        # Window frames (ROWS/RANGE ...) are accepted and ignored: the
        # executor computes whole-partition or running aggregates, which
        # covers the workload's usage.
        if self._peek().matches(KEYWORD, ("rows", "range")):
            self._next()
            self._skip_frame()
        self._expect(PUNCT, ")")
        return ast.WindowFunction(call, partition_by, order_by)

    def _skip_frame(self):
        if self._accept(KEYWORD, "between"):
            self._frame_bound()
            self._expect(KEYWORD, "and")
            self._frame_bound()
        else:
            self._frame_bound()

    def _frame_bound(self):
        if self._accept(KEYWORD, "unbounded"):
            if not (self._accept(KEYWORD, "preceding") or self._accept(KEYWORD, "following")):
                raise ParseError("expected PRECEDING/FOLLOWING", self._peek())
            return
        if self._accept(KEYWORD, "current"):
            self._expect(KEYWORD, "row")
            return
        self._expect(NUMBER)
        if not (self._accept(KEYWORD, "preceding") or self._accept(KEYWORD, "following")):
            raise ParseError("expected PRECEDING/FOLLOWING", self._peek())

    def _case(self):
        self._expect(KEYWORD, "case")
        operand = None
        if not self._peek().matches(KEYWORD, "when"):
            operand = self._expression()
        whens = []
        while self._accept(KEYWORD, "when"):
            condition = self._expression()
            self._expect(KEYWORD, "then")
            result = self._expression()
            whens.append((condition, result))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self._peek())
        else_result = None
        if self._accept(KEYWORD, "else"):
            else_result = self._expression()
        self._expect(KEYWORD, "end")
        return ast.Case(whens, else_result=else_result, operand=operand)

    def _cast(self, try_cast):
        self._next()  # cast / try_cast
        self._expect(PUNCT, "(")
        operand = self._expression()
        self._expect(KEYWORD, "as")
        type_name = self._type_name()
        self._expect(PUNCT, ")")
        return ast.Cast(operand, type_name, try_cast=try_cast)

    def _convert(self):
        self._expect(KEYWORD, "convert")
        self._expect(PUNCT, "(")
        type_name = self._type_name()
        self._expect(PUNCT, ",")
        operand = self._expression()
        if self._accept(PUNCT, ","):
            self._expect(NUMBER)  # style argument, accepted and ignored
        self._expect(PUNCT, ")")
        return ast.Cast(operand, type_name)
