"""Plan execution: drives the pull-based operator iterators."""

from repro.engine.expressions import ExecutionContext


def _run_plan(plan, ctx):
    return plan.execute(ctx)


def execute_plan(root, cancellation=None):
    """Execute a physical plan; returns all rows as a list of tuples."""
    return list(iterate_plan(root, cancellation=cancellation))


def iterate_plan(root, cancellation=None):
    """Execute a physical plan lazily (generator of tuples).

    A fresh :class:`ExecutionContext` is created per execution so that
    uncorrelated-subquery caches never leak across statements.  When a
    ``cancellation`` token is supplied the operators poll it every few
    thousand rows, so cancel/timeout interrupts work mid-scan.
    """
    ctx = ExecutionContext(run_plan=_run_plan, cancellation=cancellation)
    for row in root.execute(ctx):
        yield row
