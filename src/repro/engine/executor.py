"""Plan execution: drives the pull-based operator iterators."""

from repro.engine.expressions import ExecutionContext


def _run_plan(plan, ctx):
    return plan.execute(ctx)


def execute_plan(root):
    """Execute a physical plan; returns all rows as a list of tuples."""
    return list(iterate_plan(root))


def iterate_plan(root):
    """Execute a physical plan lazily (generator of tuples).

    A fresh :class:`ExecutionContext` is created per execution so that
    uncorrelated-subquery caches never leak across statements.
    """
    ctx = ExecutionContext(run_plan=_run_plan)
    for row in root.execute(ctx):
        yield row
