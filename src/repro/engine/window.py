"""Window function computation for the Sequence Project operator.

Supports the ranking functions (ROW_NUMBER, RANK, DENSE_RANK, NTILE) and
aggregate-over-window (SUM/AVG/COUNT/MIN/MAX/STDEV/VAR ``OVER``).  With an
ORDER BY, aggregates are running aggregates over the default frame
(RANGE UNBOUNDED PRECEDING TO CURRENT ROW); without one they are computed
over the whole partition — matching SQL Server's defaults, which is what
the 4% of windowed queries in the workload rely on.
"""

import functools

from repro.engine import aggregates as agg
from repro.engine.operators import _null_first_cmp, group_key
from repro.engine.types import SQLType
from repro.errors import BindError

RANKING_FUNCTIONS = frozenset(["row_number", "rank", "dense_rank", "ntile"])

#: Navigation functions: value of another row in the ordered partition.
NAVIGATION_FUNCTIONS = frozenset(["lag", "lead", "first_value", "last_value"])


class WindowSpec(object):
    """One window expression: function, bound argument, partition and order."""

    __slots__ = ("func_name", "arg_expr", "partition_exprs", "order_exprs",
                 "order_descendings", "ntile_buckets", "offset", "default_expr",
                 "sql_type")

    def __init__(self, func_name, arg_expr, partition_exprs, order_exprs,
                 order_descendings, ntile_buckets=None, offset=1, default_expr=None):
        self.func_name = func_name.lower()
        self.arg_expr = arg_expr
        self.partition_exprs = partition_exprs
        self.order_exprs = order_exprs
        self.order_descendings = order_descendings
        self.ntile_buckets = ntile_buckets
        #: LAG/LEAD offset (rows).
        self.offset = offset
        #: LAG/LEAD default when the offset row does not exist.
        self.default_expr = default_expr
        self.sql_type = self._result_type()

    def _result_type(self):
        if self.func_name in RANKING_FUNCTIONS:
            return SQLType.BIGINT
        arg_type = self.arg_expr.sql_type if self.arg_expr is not None else SQLType.INT
        if self.func_name in NAVIGATION_FUNCTIONS:
            return arg_type
        return agg.result_type(self.func_name, arg_type)


def compute_windows(rows, specs, ctx):
    """Return, for each input row, the list of window values (spec order)."""
    results = [[None] * len(specs) for _ in rows]
    for spec_index, spec in enumerate(specs):
        _compute_one(rows, spec, spec_index, results, ctx)
    return results


def _compute_one(rows, spec, spec_index, results, ctx):
    partitions = {}
    for row_index, row in enumerate(rows):
        key = group_key([expr.eval(row, ctx) for expr in spec.partition_exprs])
        partitions.setdefault(key, []).append(row_index)
    for indices in partitions.values():
        ordered = _order_partition(rows, indices, spec, ctx)
        if spec.func_name in RANKING_FUNCTIONS:
            _rank_partition(rows, ordered, spec, spec_index, results, ctx)
        elif spec.func_name in NAVIGATION_FUNCTIONS:
            _navigate_partition(rows, ordered, spec, spec_index, results, ctx)
        else:
            _aggregate_partition(rows, ordered, spec, spec_index, results, ctx)


def _order_partition(rows, indices, spec, ctx):
    if not spec.order_exprs:
        return list(indices)

    def compare(index_a, index_b):
        for expr, descending in zip(spec.order_exprs, spec.order_descendings):
            result = _null_first_cmp(expr.eval(rows[index_a], ctx), expr.eval(rows[index_b], ctx))
            if result:
                return -result if descending else result
        return 0

    return sorted(indices, key=functools.cmp_to_key(compare))


def _order_key(rows, index, spec, ctx):
    return group_key([expr.eval(rows[index], ctx) for expr in spec.order_exprs])


def _rank_partition(rows, ordered, spec, spec_index, results, ctx):
    name = spec.func_name
    if name == "ntile":
        buckets = spec.ntile_buckets or 1
        size = len(ordered)
        base, remainder = divmod(size, buckets)
        position = 0
        for bucket in range(1, buckets + 1):
            count = base + (1 if bucket <= remainder else 0)
            for _ in range(count):
                if position < size:
                    results[ordered[position]][spec_index] = bucket
                    position += 1
        return
    rank = 0
    dense = 0
    previous_key = object()
    for position, row_index in enumerate(ordered, start=1):
        key = _order_key(rows, row_index, spec, ctx) if spec.order_exprs else position
        if name == "row_number":
            results[row_index][spec_index] = position
            continue
        if key != previous_key:
            rank = position
            dense += 1
            previous_key = key
        results[row_index][spec_index] = rank if name == "rank" else dense


def _navigate_partition(rows, ordered, spec, spec_index, results, ctx):
    name = spec.func_name
    size = len(ordered)

    def value_at(position):
        return spec.arg_expr.eval(rows[ordered[position]], ctx)

    for position, row_index in enumerate(ordered):
        if name == "first_value":
            results[row_index][spec_index] = value_at(0)
            continue
        if name == "last_value":
            # Whole-partition semantics (the common expectation; the default
            # SQL frame ends at CURRENT ROW, a well-known footgun we avoid).
            results[row_index][spec_index] = value_at(size - 1)
            continue
        target = position - spec.offset if name == "lag" else position + spec.offset
        if 0 <= target < size:
            results[row_index][spec_index] = value_at(target)
        elif spec.default_expr is not None:
            results[row_index][spec_index] = spec.default_expr.eval(
                rows[row_index], ctx
            )
        else:
            results[row_index][spec_index] = None


def _aggregate_partition(rows, ordered, spec, spec_index, results, ctx):
    if not agg.is_aggregate_name(spec.func_name):
        raise BindError("unsupported window function %r" % spec.func_name)
    if not spec.order_exprs:
        accumulator = agg.make_accumulator(spec.func_name, star=spec.arg_expr is None)
        for row_index in ordered:
            accumulator.add(
                1 if spec.arg_expr is None else spec.arg_expr.eval(rows[row_index], ctx)
            )
        value = accumulator.result()
        for row_index in ordered:
            results[row_index][spec_index] = value
        return
    # Running aggregate with peers sharing the same order key (RANGE frame).
    accumulator = agg.make_accumulator(spec.func_name, star=spec.arg_expr is None)
    position = 0
    while position < len(ordered):
        peer_key = _order_key(rows, ordered[position], spec, ctx)
        peers = []
        while position < len(ordered) and _order_key(rows, ordered[position], spec, ctx) == peer_key:
            peers.append(ordered[position])
            position += 1
        for row_index in peers:
            accumulator.add(
                1 if spec.arg_expr is None else spec.arg_expr.eval(rows[row_index], ctx)
            )
        value = accumulator.result()
        for row_index in peers:
            results[row_index][spec_index] = value
