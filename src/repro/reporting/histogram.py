"""ASCII bar charts and distribution summaries for bench output."""


def bar_chart(mapping, width=40, title=None, unit=""):
    """Horizontal bars scaled to the largest value."""
    values = [float(v) for v in mapping.values()]
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    labels = [str(key) for key in mapping]
    label_width = max((len(label) for label in labels), default=0)
    out = [title] if title else []
    for (key, value) in mapping.items():
        bar = "#" * int(round(width * float(value) / peak))
        rendered = "%.2f" % value if isinstance(value, float) else str(value)
        out.append(
            "  %s | %s %s%s" % (str(key).ljust(label_width), bar, rendered, unit)
        )
    return "\n".join(out)


def percent_bars(pairs, width=40, title=None):
    """Bars for (label, percent) pairs, scaled to 100%."""
    label_width = max((len(str(label)) for label, _v in pairs), default=0)
    out = [title] if title else []
    for label, value in pairs:
        bar = "#" * int(round(width * float(value) / 100.0))
        out.append("  %s | %s %.2f%%" % (str(label).ljust(label_width), bar, value))
    return "\n".join(out)


def cdf_lines(values, points=(10, 25, 50, 75, 90, 95, 99), title=None):
    """Percentile summary of a numeric list."""
    ordered = sorted(values)
    out = [title] if title else []
    if not ordered:
        out.append("  (no data)")
        return "\n".join(out)
    for pct in points:
        index = min(len(ordered) - 1, int(len(ordered) * pct / 100.0))
        out.append("  p%-2d : %.3f" % (pct, float(ordered[index])))
    return "\n".join(out)
