"""ASCII table rendering."""


def format_table(headers, rows, title=None):
    """Render rows as a boxed ASCII table; values are str()-ed."""
    headers = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    line = "+".join("-" * (w + 2) for w in widths)
    line = "+%s+" % line
    out = []
    if title:
        out.append(title)
    out.append(line)
    out.append(_row(headers, widths))
    out.append(line)
    for row in text_rows:
        out.append(_row(row, widths))
    out.append(line)
    return "\n".join(out)


def _row(values, widths):
    cells = [" %s " % value.ljust(width) for value, width in zip(values, widths)]
    return "|%s|" % "|".join(cells)


def _cell(value):
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def format_kv(mapping, title=None, value_format="%s"):
    """Render a mapping as aligned key/value lines."""
    keys = [str(key) for key in mapping]
    width = max((len(key) for key in keys), default=0)
    out = [title] if title else []
    for key, value in mapping.items():
        if isinstance(value, float):
            rendered = "%.2f" % value
        else:
            rendered = value_format % value
        out.append("  %s : %s" % (str(key).ljust(width), rendered))
    return "\n".join(out)
