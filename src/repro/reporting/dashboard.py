"""`repro top`: a plain-text operations dashboard.

Pure rendering — the CLI fetches the REST payloads (runtime stats, health,
alerts, query store) and this module turns them into one screenful of
text.  Keeping rendering free of I/O makes the dashboard testable without
a server and reusable for one-shot (``--once``) snapshots in scripts.
"""

import time

from repro.reporting.tables import format_table

_STATE_MARKS = {"ok": " ", "pending": "~", "firing": "!"}


def _fmt_seconds(value):
    if value is None:
        return "-"
    if value >= 1.0:
        return "%.2fs" % value
    return "%.1fms" % (value * 1000.0)


def _fmt_rate(value):
    return "-" if value is None else "%.2f/s" % value


def render_dashboard(stats, health=None, alerts=None, querystore=None,
                     now=None):
    """One screenful of operational state from the REST payloads."""
    lines = []
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(now if now is not None else time.time()))
    status = (health or {}).get("status", "unknown")
    lines.append("repro top — %s — health: %s" % (stamp, status.upper()))
    lines.append("")

    if "shards" in stats:
        # Cluster payload: a per-shard summary table, then the aggregate
        # figures (the per-process sections below don't apply as one unit).
        return "\n".join(lines + _render_cluster(stats, health=health))

    lines.append("scheduler  workers=%d  queued=%d  running=%d" % (
        stats.get("workers", 0), stats.get("queued", 0),
        stats.get("running", 0)))
    finished = stats.get("finished") or {}
    if finished:
        lines.append("finished   " + "  ".join(
            "%s=%d" % (state.lower(), count)
            for state, count in sorted(finished.items())))
    latency = stats.get("latency") or {}
    exec_latency = latency.get("exec_seconds")
    if exec_latency:
        lines.append("latency    p50=%s  p90=%s  p99=%s  (n=%d)" % (
            _fmt_seconds(exec_latency.get("p50")),
            _fmt_seconds(exec_latency.get("p90")),
            _fmt_seconds(exec_latency.get("p99")),
            exec_latency.get("count", 0)))
    cache = stats.get("cache")
    if cache:
        lines.append("cache      entries=%d  hit_rate=%.1f%%  hits=%d  misses=%d" % (
            cache.get("entries", 0), 100.0 * cache.get("hit_rate", 0.0),
            cache.get("hits", 0), cache.get("misses", 0)))
    qs = querystore or stats.get("querystore")
    if qs:
        lines.append(
            "querystore entries=%d  plan_changes=%d  regressions=%d" % (
                qs.get("entries", 0), qs.get("plan_changes", 0),
                qs.get("regressions", 0)))

    if alerts:
        lines.append("")
        rows = [
            ("%s%s" % (_STATE_MARKS.get(rule["state"], "?"), rule["name"]),
             rule["state"], rule["severity"],
             "-" if rule["value"] is None else "%.4g" % rule["value"],
             "%.4g" % rule["threshold"])
            for rule in alerts.get("alerts", [])
        ]
        if rows:
            lines.append(format_table(
                ["alert", "state", "severity", "value", "threshold"], rows))
        for note in alerts.get("notifications", [])[-5:]:
            lines.append("  %s %s: %s -> %s" % (
                time.strftime("%H:%M:%S", time.localtime(note["epoch"])),
                note["rule"], note["from_state"], note["to_state"]))
    return "\n".join(lines)


def _render_cluster(stats, health=None):
    """Per-shard rows + aggregate line for a cluster stats payload."""
    lines = []
    cluster = stats.get("cluster") or {}
    down = (health or {}).get("shards_down") or cluster.get("down") or []
    lines.append("cluster    shards=%d  down=%s  directory=%d" % (
        cluster.get("shards", len(stats.get("shards", {}))),
        ",".join(str(s) for s in down) if down else "none",
        cluster.get("directory_entries", 0)))
    restarts = {str(w["shard"]): w["restarts"]
                for w in cluster.get("workers", [])}
    rows = []
    for shard in sorted(stats.get("shards", {}), key=int):
        shard_stats = stats["shards"][shard]
        if not shard_stats.get("alive", True):
            rows.append((shard, "DOWN", "-", "-", "-", "-",
                         restarts.get(shard, 0)))
            continue
        finished = shard_stats.get("finished") or {}
        latency = (shard_stats.get("latency") or {}).get("exec_seconds") or {}
        batch = shard_stats.get("batch") or {}
        rows.append((
            shard, "up",
            "%d/%d" % (shard_stats.get("running", 0),
                       shard_stats.get("queued", 0)),
            sum(finished.values()) if isinstance(finished, dict) else finished,
            _fmt_seconds(latency.get("p99")),
            "%d/%d" % (batch.get("queued", 0), batch.get("total", 0)),
            restarts.get(shard, 0),
        ))
    if rows:
        lines.append(format_table(
            ["shard", "state", "run/queue", "finished", "p99",
             "batch q/total", "restarts"], rows))
    aggregate = stats.get("aggregate") or {}
    if aggregate:
        lines.append("aggregate  " + "  ".join(
            "%s=%s" % (key, value)
            for key, value in sorted(aggregate.items())))
    traces = stats.get("cross_shard_traces") or []
    if traces:
        lines.append("")
        lines.append("slowest cross-shard traces (coordinator submit time):")
        lines.append(format_table(
            ["trace", "job", "user", "home", "submit"],
            [(entry.get("trace_id", "?"), entry.get("job_id", "?"),
              entry.get("user", "?"), entry.get("home", "?"),
              "%.1fms" % entry.get("submit_ms", 0.0))
             for entry in traces]))
    return lines


def render_querystore(payload, regressions_only=False):
    """The query store listing `repro querystore` prints."""
    lines = [
        "query store: %d entr%s (%d recorded, %d evicted, "
        "%d plan change%s, %d regression%s)" % (
            payload.get("entries", 0),
            "y" if payload.get("entries") == 1 else "ies",
            payload.get("recorded", 0), payload.get("evictions", 0),
            payload.get("plan_changes", 0),
            "" if payload.get("plan_changes") == 1 else "s",
            payload.get("regressions", 0),
            "" if payload.get("regressions") == 1 else "s"),
    ]
    queries = payload.get("queries", [])
    if not queries:
        lines.append("  (no %s)" % (
            "regressions" if regressions_only else "queries recorded"))
        return "\n".join(lines)
    rows = []
    for entry in queries:
        sql = entry["sql"]
        rows.append((
            entry["fingerprint"],
            entry["executions"],
            entry["errors"],
            entry["cache_hits"],
            len(entry["plans"]),
            "yes" if entry.get("regression") else "",
            sql[:48] + ("..." if len(sql) > 48 else ""),
        ))
    lines.append(format_table(
        ["fingerprint", "execs", "errors", "hits", "plans", "regressed", "sql"],
        rows))
    for entry in queries:
        verdict = entry.get("regression")
        if verdict:
            lines.append(render_regression_verdict(verdict))
    return "\n".join(lines)


def render_regression_verdict(verdict):
    """One regression verdict as a readable block."""
    return (
        "regression %(fingerprint)s: plan %(baseline_plan)s -> "
        "%(regressed_plan)s, mean %(baseline)s -> %(regressed)s "
        "(%(slowdown).1fx over %(n)d vs %(m)d executions)\n  %(sql)s" % {
            "fingerprint": verdict["fingerprint"],
            "baseline_plan": verdict["baseline_plan"],
            "regressed_plan": verdict["regressed_plan"],
            "baseline": _fmt_seconds(verdict["baseline_mean_seconds"]),
            "regressed": _fmt_seconds(verdict["regressed_mean_seconds"]),
            "slowdown": verdict["slowdown"],
            "n": verdict["baseline_executions"],
            "m": verdict["regressed_executions"],
            "sql": verdict["sql"][:100],
        })
