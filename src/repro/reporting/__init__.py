"""Plain-text rendering of tables, histograms and series for the benches."""

from repro.reporting.tables import format_table, format_kv
from repro.reporting.histogram import bar_chart, cdf_lines, percent_bars

__all__ = ["bar_chart", "cdf_lines", "format_kv", "format_table", "percent_bars"]
