"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

- ``demo``    — run the quickstart workflow and print the results.
- ``analyze`` — generate a deployment and print the paper's tables/figures.
- ``serve``   — start the REST API over a freshly generated deployment
  (``--shards N`` scales out across N worker processes behind a
  coordinator).
- ``cluster`` — inspect a running cluster (``cluster status``).
- ``export``  — write an anonymized corpus release to a directory.
- ``lint``    — statically check SQL files (or stdin) without executing.
- ``selfcheck`` — concurrency lint (lock discipline) over this codebase.
- ``profile`` — EXPLAIN ANALYZE a statement (estimated vs actual rows per
  operator), or report q-error over a generated workload.
- ``checkpoint`` — force a snapshot checkpoint on a data directory.
- ``recover``    — rebuild a platform from a data directory and report (or
  ``--verify`` round-trip) the recovered state.
- ``top``        — live terminal dashboard over a running server's
  scheduler stats, alerts and health.
- ``logs``       — merged structured event log of a serve data directory
  (coordinator + every shard, one timeline), filterable by trace id,
  user or event kind, with ``--follow`` tailing.
- ``querystore`` — per-fingerprint runtime history and plan regressions,
  from a running server (``--url``) or a local replay/grow/replay
  experiment.
- ``advise``     — workload-driven physical-design advisor: ranked index
  and materialization recommendations with opt-in ``--apply``, from a
  running server (``--url``) or a local plant→detect→re-plan demo.
"""

import argparse
import sys


def _cmd_demo(_args):
    from examples import quickstart  # noqa: F401  (examples on sys.path)

    quickstart.main()
    return 0


def _cmd_analyze(args):
    sys.path.insert(0, "benchmarks")
    from benchmarks import run_all

    run_all.main(args.scale)
    return 0


def _generate(scale):
    from repro.synth.driver import build_sqlshare_deployment

    print("generating deployment at scale %.2f..." % scale)
    platform, generator = build_sqlshare_deployment(scale=scale)
    print("  %(uploads)d uploads, %(queries)d logged queries" % generator.stats)
    return platform


def _cmd_serve(args):
    from repro.runtime import RuntimeConfig
    from repro.server.rest import serve

    if args.shards > 1:
        return _serve_cluster(args)
    platform = None
    if args.data_dir:
        from repro.storage import StorageManager

        manager = StorageManager(
            args.data_dir, sync=args.wal_sync,
            auto_checkpoint_records=args.checkpoint_every or None)
        if manager.has_state():
            print("recovering from %s..." % args.data_dir)
            platform, report = manager.recover()
            print("  snapshot %s + %d replayed record(s)"
                  " (%d torn dropped) in %.3fs"
                  % (report.to_dict()["snapshot"], report.records_replayed,
                     report.torn_records_dropped, report.elapsed_seconds))
        else:
            platform = _generate(args.scale) if args.scale > 0 else None
            if platform is not None:
                manager.adopt(platform)
                print("  checkpointed into %s" % args.data_dir)
            else:
                from repro.core.sqlshare import SQLShare

                platform = manager.attach(SQLShare())
    elif args.scale > 0:
        platform = _generate(args.scale)
    if args.data_dir:
        # Single-node structured event log beside the WAL, where `repro
        # logs --data-dir` expects it (clusters configure per process).
        import os

        from repro.obs import events

        events.configure(
            path=os.path.join(args.data_dir, events.EVENTS_FILE),
            process="server")
    config = RuntimeConfig(
        max_workers=4,
        monitor_enabled=not args.no_monitor,
        monitor_interval=args.monitor_interval,
        histogram_max_seconds=args.histogram_max or None,
    )
    server = serve(platform, host=args.host, port=args.port,
                   runtime_config=config)
    print("SQLShare REST API listening on http://%s:%d "
          "(X-SQLShare-User header selects the identity)"
          % (args.host, server.server_address[1]))
    if config.monitor_enabled:
        print("continuous monitoring on: /api/v1/health, /api/v1/timeseries,"
              " /api/v1/querystore, /api/v1/alerts (sample every %.1fs)"
              % config.monitor_interval)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _serve_cluster(args):
    """``repro serve --shards N``: coordinator + N worker processes."""
    import signal

    from repro.cluster.app import serve_cluster
    from repro.cluster.coordinator import ClusterCoordinator

    if not args.data_dir and not args.ephemeral:
        print("error: --shards requires --data-dir (each shard gets its own "
              "WAL/snapshot directory under it); add --ephemeral to run "
              "without durability", file=sys.stderr)
        return 2
    coordinator = ClusterCoordinator(
        args.shards,
        args.data_dir or ".repro-cluster",
        scale=args.scale,
        ephemeral=args.ephemeral,
        wal_sync=args.wal_sync,
        workers=args.shard_workers,
        checkpoint_every=args.checkpoint_every,
        monitor_interval=args.monitor_interval,
    )
    # A plain `kill` of the coordinator must not orphan N worker
    # processes: route SIGTERM through the same shutdown path as ^C.
    signal.signal(signal.SIGTERM, lambda _sig, _frm: sys.exit(0))
    print("starting %d shard worker(s)..." % args.shards)
    coordinator.start()
    try:
        for worker in coordinator.status()["workers"]:
            print("  shard %d: pid %d, port %d (%s)"
                  % (worker["shard"], worker["pid"], worker["port"],
                     worker["data_dir"]))
        server = serve_cluster(coordinator, host=args.host, port=args.port)
        print("SQLShare cluster API listening on http://%s:%d "
              "(%d shards; X-SQLShare-User selects identity and home shard)"
              % (args.host, server.server_address[1], args.shards))
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down cluster")
    finally:
        # Covers bind failures too: a coordinator that already spawned
        # workers must never leak them when the front-door port is taken.
        coordinator.stop()
    return 0


def _cmd_cluster(args):
    """``repro cluster status``: one-shot cluster topology report."""
    import json

    from repro.server.client import ClientError, SQLShareClient

    client = SQLShareClient(args.user, base_url=args.url)
    try:
        payload = client._call("GET", "/api/v1/cluster/status")
    except ClientError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    down = payload.get("down", [])
    print("cluster: %d shard(s), %d down, %d directory entries"
          % (payload["shards"], len(down), payload["directory_entries"]))
    for worker in payload["workers"]:
        print("  shard %d: %s pid=%s port=%s restarts=%d"
              % (worker["shard"],
                 "up  " if worker["alive"] else "DOWN",
                 worker["pid"], worker["port"], worker["restarts"]))
    return 1 if down else 0


def _cmd_export(args):
    from repro.synth.driver import build_sqlshare_deployment
    from repro.workload.extract import WorkloadAnalyzer
    from repro.workload.release import export_corpus

    print("generating deployment at scale %.2f..." % args.scale)
    platform, _generator = build_sqlshare_deployment(scale=args.scale)
    print("attaching plans...")
    WorkloadAnalyzer(platform).analyze()
    manifest = export_corpus(
        platform, args.out, anonymize=not args.identified
    )
    print("wrote corpus release to %s: %s" % (args.out, manifest))
    return 0


def _render_diagnostic(diagnostic, text, path):
    """One finding as ``path:line:col: [CODE] severity: message`` plus a
    caret line pointing into the source."""
    lines = []
    span = diagnostic.span
    where = path
    if span is not None and span.line:
        where = "%s:%d:%d" % (path, span.line, span.col)
    lines.append("%s: [%s] %s: %s"
                 % (where, diagnostic.code, diagnostic.severity,
                    diagnostic.message))
    if span is not None and span.line:
        source_lines = text.splitlines()
        if 0 < span.line <= len(source_lines):
            source_line = source_lines[span.line - 1].replace("\t", " ")
            lines.append("    " + source_line)
            width = max(1, span.end - span.start)
            # Clamp the underline to the rest of the line (spans may cover
            # several lines; the caret marks where they start).
            width = max(1, min(width, len(source_line) - span.col + 1))
            lines.append("    " + " " * (span.col - 1) + "^" * width)
    return "\n".join(lines)


def _cmd_lint(args):
    from repro.engine.database import Database
    from repro.lint import lint_text

    db = Database()
    sources = []
    try:
        if args.ddl:
            with open(args.ddl) as handle:
                sources.append((args.ddl, handle.read(), True))
        for path in args.files:
            if path == "-":
                sources.append(("<stdin>", sys.stdin.read(), False))
            else:
                with open(path) as handle:
                    sources.append((path, handle.read(), False))
    except OSError as error:
        print("error: cannot read %r: %s"
              % (error.filename, error.strerror), file=sys.stderr)
        return 2
    if not sources:
        print("nothing to lint", file=sys.stderr)
        return 2
    errors = 0
    total = 0
    for path, text, ddl_only in sources:
        findings = lint_text(text, db, lint=not args.no_lint)
        if ddl_only:
            # The --ddl file only sets up the catalog; still report its
            # errors (a broken schema makes everything downstream noise).
            findings = [d for d in findings if d.severity == "error"]
        for diagnostic in findings:
            total += 1
            if diagnostic.severity == "error":
                errors += 1
            print(_render_diagnostic(diagnostic, text, path))
        if args.explain and not ddl_only:
            # Static plan verdict per query (lint_text above already
            # applied the script's DDL, so queries plan against it).
            from repro.lint import split_statements

            for offset, stmt_text in split_statements(text):
                violations = db.check_plan(stmt_text.strip())
                if violations is None:
                    continue
                line = text.count("\n", 0, offset) + 1
                if not violations:
                    print("%s:%d: plan check ok" % (path, line))
                    continue
                for violation in violations:
                    total += 1
                    errors += 1
                    print("%s:%d: [%s] error: %s at %s (path %s)"
                          % (path, line, violation.code, violation.message,
                             violation.operator, violation.path))
    print("%d finding%s (%d error%s)"
          % (total, "" if total == 1 else "s",
             errors, "" if errors == 1 else "s"))
    return 1 if errors else 0


def _cmd_selfcheck(args):
    import os

    from repro.check import analyze_paths, format_baseline, load_baseline

    root = os.path.abspath(args.root) if args.root else os.getcwd()
    findings = analyze_paths(args.paths, root=root)
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(format_baseline(findings))
        print("wrote %d accepted finding key(s) to %s"
              % (len(set(f.key for f in findings)), args.write_baseline))
        return 0
    baseline = load_baseline(args.baseline) if args.baseline else set()
    fresh = [f for f in findings if f.key not in baseline]
    for finding in fresh:
        print("%s:%d: [%s] %s: %s  (%s)"
              % (finding.path, finding.line, finding.code, finding.severity,
                 finding.message, finding.scope))
    accepted = len(findings) - len(fresh)
    print("%d finding%s (%d accepted by baseline)"
          % (len(fresh), "" if len(fresh) == 1 else "s", accepted))
    return 1 if fresh else 0


def _cmd_profile(args):
    from repro.analysis.estimation import analyze_estimation, render_estimation
    from repro.engine.database import Database
    from repro.lint import split_statements

    if args.workload:
        from repro.synth.driver import build_sqlshare_deployment

        print("generating deployment at scale %.2f..." % args.scale)
        platform, _generator = build_sqlshare_deployment(scale=args.scale)
        report = analyze_estimation(platform, limit=args.limit)
        print(render_estimation(report))
        return 0

    if args.sql is None:
        print("error: provide a SQL statement (or --workload)", file=sys.stderr)
        return 2
    text = sys.stdin.read() if args.sql == "-" else args.sql

    db = Database()
    try:
        if args.ddl:
            with open(args.ddl) as handle:
                for _offset, statement in split_statements(handle.read()):
                    db.execute(statement)
    except OSError as error:
        print("error: cannot read %r: %s"
              % (error.filename, error.strerror), file=sys.stderr)
        return 2

    from repro.errors import SQLError
    from repro.obs.profiler import render_explain_analyze
    from repro.obs.tracing import Trace

    exit_code = 0
    for _offset, statement in split_statements(text):
        trace = Trace("cli")
        try:
            result = db.execute(statement, trace=trace, profile=True)
        except SQLError as error:
            print("error: %s" % error, file=sys.stderr)
            exit_code = 1
            continue
        if result.profile is None:
            print("-- %s: %d row(s), nothing to profile (not a SELECT)"
                  % (statement.split(None, 1)[0].upper(), len(result.rows)))
            continue
        print(render_explain_analyze(result.profile))
        phases = ", ".join(
            "%s %.3fms" % (span.name, span.duration * 1000.0)
            for span in trace.spans()
        )
        print("phases: %s" % phases)
    return exit_code


def _cmd_top(args):
    import time as _time

    from repro.reporting.dashboard import render_dashboard
    from repro.server.client import ClientError, SQLShareClient

    client = SQLShareClient(args.user, base_url=args.url)

    def fetch():
        stats = client.runtime_stats()
        health = client.health()
        try:
            alerts = client.alerts()
        except ClientError:
            alerts = None  # monitoring disabled on the server
        return render_dashboard(stats, health=health, alerts=alerts)

    try:
        if args.once:
            print(fetch())
            return 0
        while True:
            # ANSI clear + home; plain reprint keeps dumb terminals usable.
            print("\033[2J\033[H" + fetch(), flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0
    except ClientError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


def _render_event(record):
    """One event record as a terminal line: time, process, event, then
    the correlation keys and structured fields as ``key=value`` pairs."""
    import datetime

    try:
        stamp = datetime.datetime.fromtimestamp(
            record.get("ts", 0.0)).strftime("%H:%M:%S.%f")[:-3]
    except (OverflowError, OSError, ValueError):
        stamp = "??:??:??.???"
    parts = ["%s %-11s %-10s" % (stamp, record.get("process", "?"),
                                 record.get("event", "?"))]
    if record.get("trace_id"):
        parts.append("trace=%s" % record["trace_id"])
    if record.get("user"):
        parts.append("user=%s" % record["user"])
    if record.get("fingerprint"):
        parts.append("fp=%s" % record["fingerprint"])
    rendered = ("ts", "event", "process", "seq", "trace_id", "user",
                "fingerprint")
    for key in sorted(record):
        if key in rendered:
            continue
        value = record[key]
        if value is not None:
            parts.append("%s=%s" % (key, value))
    return " ".join(parts)


def _cmd_logs(args):
    """``repro logs``: one merged timeline over every event log under a
    serve data directory (coordinator + shards), oldest first."""
    import json

    from repro.obs import events

    paths = events.cluster_log_paths(args.data_dir)
    if not paths:
        print("no event logs under %s (is it a --data-dir a server wrote "
              "to?)" % args.data_dir, file=sys.stderr)
        return 2
    emit = ((lambda record: print(json.dumps(record, sort_keys=True,
                                             default=str)))
            if args.json else (lambda record: print(_render_event(record))))
    if args.follow:
        try:
            for record in events.follow_events(
                    paths, trace_id=args.trace, user=args.user,
                    event=args.event):
                emit(record)
        except KeyboardInterrupt:
            print()
        return 0
    records = events.read_events(paths, trace_id=args.trace,
                                 user=args.user, event=args.event)
    if args.limit and len(records) > args.limit:
        records = records[-args.limit:]
    for record in records:
        emit(record)
    return 0


def _cmd_querystore(args):
    from repro.reporting.dashboard import render_querystore

    if args.url:
        from repro.server.client import ClientError, SQLShareClient

        client = SQLShareClient(args.user, base_url=args.url)
        try:
            if args.fingerprint:
                payload = client.querystore(fingerprint=args.fingerprint)
                import json

                print(json.dumps(payload, indent=2, sort_keys=True, default=str))
                return 0
            payload = client.querystore(regressions=args.regressions,
                                        limit=args.limit)
        except ClientError as error:
            print("error: %s" % error, file=sys.stderr)
            return 1
        print(render_querystore(payload, regressions_only=args.regressions))
        return 0 if not (args.regressions and payload["queries"]) else 3

    # No server: run the replay/grow/replay regression experiment locally.
    from repro.analysis.regressions import analyze_regressions, render_regressions

    report = analyze_regressions(limit=args.limit, scale=args.scale)
    print(render_regressions(report))
    if args.regressions:
        return 3 if report["regressions"] else 0
    return 0


def _cmd_advise(args):
    import json

    if args.url:
        from repro.reporting.tables import format_table
        from repro.server.client import ClientError, SQLShareClient

        client = SQLShareClient(args.user, base_url=args.url)
        try:
            payload = client.advisor(limit=args.top,
                                     min_executions=args.min_executions)
        except ClientError as error:
            print("error: %s" % error, file=sys.stderr)
            return 1
        recommendations = payload["recommendations"]
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        else:
            if not recommendations:
                print("no recommendations (need >= %d executions per "
                      "fingerprint; run more workload first)"
                      % payload["min_executions"])
            else:
                print(format_table(
                    ["rank", "kind", "dataset", "column", "freq", "score",
                     "action"],
                    [(r["rank"], r["kind"], r["dataset"],
                      r.get("column", ""), r["frequency"],
                      "%.1f" % r["score"], r["action"])
                     for r in recommendations],
                    title="workload advisor (%d queries considered)"
                          % payload["queries_considered"]))
        if not args.apply:
            return 0
        failures = 0
        for recommendation in recommendations:
            try:
                outcome = client.advisor_apply(recommendation,
                                               dry_run=args.dry_run)
            except ClientError as error:
                failures += 1
                print("apply %s [%s]: error: %s"
                      % (recommendation["kind"], recommendation["dataset"],
                         error), file=sys.stderr)
                continue
            print("apply %s [%s]: %s"
                  % (recommendation["kind"], recommendation["dataset"],
                     "dry run ok" if outcome.get("dry_run") else "applied"))
        return 1 if failures else 0

    # No server: run the full plant -> detect -> probe -> re-plan flip
    # plus the advisor apply experiment on a purpose-built deployment.
    from repro.analysis.adaptive_flip import analyze_adaptive, render_adaptive

    report = analyze_adaptive()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(render_adaptive(report))
    return 0 if report["flip"]["within_bound"] else 1


def _cmd_checkpoint(args):
    import json

    from repro.storage import StorageManager

    manager = StorageManager(args.data_dir, sync=args.wal_sync)
    if not manager.has_state():
        print("error: %s holds no recoverable state" % args.data_dir,
              file=sys.stderr)
        return 2
    manager.recover()
    stats = manager.checkpoint()
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_recover(args):
    import json

    from repro.storage import StorageManager, state_digest

    manager = StorageManager(args.data_dir, sync=args.wal_sync)
    if not manager.has_state():
        print("error: %s holds no recoverable state" % args.data_dir,
              file=sys.stderr)
        return 2
    platform, report = manager.recover(strict=not args.lenient)
    payload = {
        "report": report.to_dict(),
        "summary": platform.summary(),
        "digest": state_digest(platform),
    }
    if args.verify:
        # Round-trip: checkpoint the recovered platform into a scratch
        # directory, recover *that*, and require digest equality — proof
        # the recovered state serializes losslessly.
        import tempfile

        with tempfile.TemporaryDirectory() as scratch:
            probe = StorageManager(scratch)
            probe.attach(platform)
            probe.checkpoint()
            manager.attach(platform)  # re-point the hooks at the real WAL
            replica, _ = probe.recover()
            payload["verify"] = {
                "digest": state_digest(replica),
                "ok": state_digest(replica) == payload["digest"],
            }
        if not payload["verify"]["ok"]:
            print(json.dumps(payload, indent=2, sort_keys=True))
            print("error: recovered state failed round-trip verification",
                  file=sys.stderr)
            return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQLShare reproduction (SIGMOD 2016) command-line tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the quickstart workflow")

    analyze = commands.add_parser("analyze", help="regenerate the paper's results")
    analyze.add_argument("--scale", type=float, default=0.05,
                         help="workload scale (1.0 ~ paper size; default 0.05)")

    serve = commands.add_parser("serve", help="start the REST API")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--scale", type=float, default=0.0,
                       help="pre-populate with a generated deployment (0 = empty)")
    serve.add_argument("--data-dir", default=None,
                       help="durable data directory: recover from it on start, "
                            "write-ahead log every mutation into it")
    serve.add_argument("--wal-sync", choices=["buffered", "fsync"],
                       default="buffered",
                       help="WAL durability: 'buffered' survives a killed "
                            "process, 'fsync' survives power loss (default "
                            "buffered)")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="auto-checkpoint after this many WAL records "
                            "(0 = only on POST /api/v1/checkpoint)")
    serve.add_argument("--no-monitor", action="store_true",
                       help="disable the continuous monitor (sampler + alerts)")
    serve.add_argument("--monitor-interval", type=float, default=5.0,
                       help="seconds between metrics samples (default 5)")
    serve.add_argument("--histogram-max", type=float, default=0.0,
                       help="extend latency histogram buckets up to this many "
                            "seconds (default keeps the 10s ceiling)")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard the deployment across this many worker "
                            "processes behind a coordinator (default 1 = "
                            "single process)")
    serve.add_argument("--shard-workers", type=int, default=4,
                       help="interactive worker threads per shard (default 4)")
    serve.add_argument("--ephemeral", action="store_true",
                       help="with --shards: run workers without WAL/snapshots")

    cluster = commands.add_parser(
        "cluster", help="inspect a running cluster coordinator")
    cluster_commands = cluster.add_subparsers(dest="cluster_command",
                                              required=True)
    cluster_status = cluster_commands.add_parser(
        "status", help="shard topology, liveness and restart counts")
    cluster_status.add_argument("--url", default="http://127.0.0.1:8080",
                                help="coordinator base URL "
                                     "(default http://127.0.0.1:8080)")
    cluster_status.add_argument("--user", default="operator")
    cluster_status.add_argument("--json", action="store_true",
                                help="dump the raw status payload as JSON")

    top = commands.add_parser(
        "top", help="live terminal dashboard over a running server")
    top.add_argument("--url", default="http://127.0.0.1:8080",
                     help="server base URL (default http://127.0.0.1:8080)")
    top.add_argument("--user", default="operator",
                     help="identity for the X-SQLShare-User header")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds (default 2)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (no screen clearing)")

    logs = commands.add_parser(
        "logs",
        help="merged structured event log of a serve data directory "
             "(coordinator + every shard, one ordered timeline)")
    logs.add_argument("--data-dir", default=".repro-cluster",
                      help="the --data-dir a server wrote to "
                           "(default .repro-cluster)")
    logs.add_argument("--trace", default=None,
                      help="only events stamped with this trace id")
    logs.add_argument("--user", default=None,
                      help="only events for this user")
    logs.add_argument("--event", default=None,
                      help="only this event kind (submit, route, shard_op, "
                           "cache_hit, cache_miss, batch, respawn, alert, "
                           "finish, probe, replan, regression)")
    logs.add_argument("--limit", type=int, default=200,
                      help="keep the newest N merged events (default 200; "
                           "0 = all)")
    logs.add_argument("--follow", action="store_true",
                      help="keep tailing the logs after the replay "
                           "(Ctrl-C stops)")
    logs.add_argument("--json", action="store_true",
                      help="raw JSON records instead of rendered lines")

    querystore = commands.add_parser(
        "querystore",
        help="per-fingerprint runtime history and plan regressions "
             "(from a server with --url, or a local replay experiment)")
    querystore.add_argument("--url", default=None,
                            help="read a running server's query store "
                                 "instead of replaying locally")
    querystore.add_argument("--user", default="operator")
    querystore.add_argument("--fingerprint", default=None,
                            help="dump one entry's full history as JSON "
                                 "(requires --url)")
    querystore.add_argument("--regressions", action="store_true",
                            help="only regressed queries; exit 3 when any "
                                 "are found")
    querystore.add_argument("--limit", type=int, default=50,
                            help="max queries listed / replayed (default 50)")
    querystore.add_argument("--scale", type=float, default=0.05,
                            help="deployment scale for the local experiment "
                                 "(default 0.05)")

    advise = commands.add_parser(
        "advise",
        help="workload-driven advisor: ranked index/materialization "
             "recommendations (from a server with --url, or a local "
             "adaptive re-planning demo)")
    advise.add_argument("--url", default=None,
                        help="read a running server's workload instead of "
                             "running the local experiment")
    advise.add_argument("--user", default="operator",
                        help="identity for the X-SQLShare-User header; "
                             "--apply runs ownership checks as this user")
    advise.add_argument("--top", type=int, default=10,
                        help="max recommendations listed (default 10)")
    advise.add_argument("--min-executions", type=int, default=2,
                        dest="min_executions",
                        help="frequency floor per fingerprint (default 2)")
    advise.add_argument("--apply", action="store_true",
                        help="opt-in: apply every listed recommendation "
                             "(requires --url)")
    advise.add_argument("--dry-run", action="store_true",
                        help="with --apply: validate targets without "
                             "mutating anything")
    advise.add_argument("--json", action="store_true",
                        help="raw JSON payload instead of rendered tables")

    export = commands.add_parser("export", help="write a corpus release")
    export.add_argument("--out", required=True, help="output directory")
    export.add_argument("--scale", type=float, default=0.05)
    export.add_argument("--identified", action="store_true",
                        help="keep real usernames (default anonymizes)")

    lint = commands.add_parser(
        "lint", help="statically check SQL files without executing them")
    lint.add_argument("files", nargs="*", default=["-"],
                      help="SQL files to check ('-' for stdin)")
    lint.add_argument("--ddl", default=None,
                      help="schema file executed first to populate the catalog")
    lint.add_argument("--no-lint", action="store_true",
                      help="semantic errors only, skip the smell rules")
    lint.add_argument("--explain", action="store_true",
                      help="also plan each query and report the static "
                           "plan verifier's verdict (PLAN codes)")

    selfcheck = commands.add_parser(
        "selfcheck",
        help="concurrency lint over this codebase's own lock discipline")
    selfcheck.add_argument("paths", nargs="*", default=["src/repro"],
                           help="python files/directories to analyze "
                                "(default src/repro)")
    selfcheck.add_argument("--root", default=None,
                           help="directory finding paths are made relative "
                                "to (default: cwd), keeping baselines "
                                "machine-independent")
    selfcheck.add_argument("--baseline", default=None,
                           help="accepted-findings file; only findings not "
                                "listed in it are reported (exit 1)")
    selfcheck.add_argument("--write-baseline", default=None,
                           help="write current finding keys to this file "
                                "and exit 0")

    profile = commands.add_parser(
        "profile",
        help="EXPLAIN ANALYZE a statement: estimated vs actual rows per operator")
    profile.add_argument("sql", nargs="?", default=None,
                         help="SQL text to profile ('-' for stdin)")
    profile.add_argument("--ddl", default=None,
                         help="schema/data file executed first to populate the catalog")
    profile.add_argument("--workload", action="store_true",
                         help="profile a generated workload and report q-error "
                              "per operator type instead of one statement")
    profile.add_argument("--scale", type=float, default=0.05,
                         help="workload scale for --workload (default 0.05)")
    profile.add_argument("--limit", type=int, default=200,
                         help="max replayed queries for --workload (default 200)")

    checkpoint = commands.add_parser(
        "checkpoint",
        help="recover a data directory, then snapshot it and truncate the WAL")
    checkpoint.add_argument("--data-dir", required=True)
    checkpoint.add_argument("--wal-sync", choices=["buffered", "fsync"],
                            default="buffered")

    recover = commands.add_parser(
        "recover",
        help="rebuild a platform from a data directory and report what "
             "recovery did")
    recover.add_argument("--data-dir", required=True)
    recover.add_argument("--wal-sync", choices=["buffered", "fsync"],
                         default="buffered")
    recover.add_argument("--verify", action="store_true",
                         help="also round-trip the recovered state through a "
                              "scratch checkpoint and require digest equality")
    recover.add_argument("--lenient", action="store_true",
                         help="collect replay errors instead of failing on the "
                              "first one")

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "demo": _cmd_demo,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "export": _cmd_export,
        "lint": _cmd_lint,
        "selfcheck": _cmd_selfcheck,
        "profile": _cmd_profile,
        "checkpoint": _cmd_checkpoint,
        "recover": _cmd_recover,
        "top": _cmd_top,
        "logs": _cmd_logs,
        "querystore": _cmd_querystore,
        "advise": _cmd_advise,
        "cluster": _cmd_cluster,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
