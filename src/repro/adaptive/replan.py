"""Adaptive re-planning: notice bad plans, probe, and re-plan.

The control loop closes in three bounded steps, all riding the scheduler's
job-completion path (:meth:`AdaptiveController.after_job`):

1. **Detect.**  Every successful uncached completion gets a free root
   q-error check: the plan's estimated output rows against the rows the
   query actually returned.  When the error exceeds ``q_error_bound`` (or
   the Query Store issues a regression verdict for the fingerprint), the
   controller requests a *probe* and drops the fingerprint's cached
   result+plan entry so nothing stale can be served meanwhile.
2. **Probe.**  The next submission of the same fingerprint is upgraded to
   ``profile=True`` by the scheduler (profiled runs bypass the result
   cache, so actuals are real).  Its per-operator actual cardinalities are
   harvested into the :class:`~repro.adaptive.feedback.CardinalityFeedbackStore`.
3. **Re-plan.**  The cache entry is forgotten again, so the execution
   after the probe plans from scratch — now with observed cardinalities
   overriding the synthetic selectivity guesses — and the corrected plan
   is what gets cached and recorded going forward.

Each fingerprint is limited to ``max_replans`` probe cycles, so an
inherently volatile query cannot ping-pong forever: the loop converges in
at most ``2 * max_replans + 1`` executions, well under the experiment's
bound (see ``repro.analysis.adaptive_flip``).

The controller also owns the **regression first-fire** signal: the first
time the Query Store's verdict appears for a (fingerprint, regressed
plan) pair it increments ``repro_plan_regressions_total`` and emits a
structured ``regression`` event, which the default alert rule set and
``repro logs --event regression`` pick up.
"""

import threading

from repro.obs.metrics import NullRegistry
from repro.obs.profiler import q_error

#: Root q-error above which a fingerprint is scheduled for a probe.
DEFAULT_Q_ERROR_BOUND = 4.0
#: Probe/re-plan cycles allowed per fingerprint.
DEFAULT_MAX_REPLANS = 3


class AdaptiveController(object):
    """Watches job completions; schedules probes and plan invalidations.

    Duck-typed against the runtime: ``cache`` needs ``forget_sql(sql)``,
    ``query_store`` needs ``get``/``min_executions``/``regression_factor``,
    ``job`` needs ``sql``/``result``/``cache_hit``/``profile``/
    ``profile_data``.  Everything here is advisory — any internal error is
    swallowed rather than surfaced on the scheduler's completion path.
    """

    def __init__(self, feedback, cache=None, query_store=None, metrics=None,
                 q_error_bound=DEFAULT_Q_ERROR_BOUND,
                 max_replans=DEFAULT_MAX_REPLANS, events_enabled=True):
        self.feedback = feedback
        self.cache = cache
        self.query_store = query_store
        self.metrics = metrics if metrics is not None else NullRegistry()
        self.q_error_bound = float(q_error_bound)
        self.max_replans = int(max_replans)
        self.events_enabled = events_enabled
        self._lock = threading.Lock()
        self._pending = set()  # feedback fingerprints awaiting a probe
        self._replans = {}  # feedback fingerprint -> completed probe cycles
        self._regression_seen = set()  # (store fingerprint, regressed plan)
        # Registered up front (get-or-create) so the series exist at 0 in
        # every snapshot — the PlanRegression alert rule needs data from
        # the first sampler tick, not from the first verdict.
        self._probes_total = self.metrics.counter(
            "repro_adaptive_probes_total",
            "Profiled probe executions requested by the adaptive controller.")
        self._replans_total = self.metrics.counter(
            "repro_adaptive_replans_total",
            "Harvests that invalidated a plan to force re-planning with feedback.")
        self._regressions_total = self.metrics.counter(
            "repro_plan_regressions_total",
            "Query Store regression verdicts (first fire per regressed plan).")

    # -- the scheduler-facing surface -----------------------------------------

    def wants_probe(self, sql):
        """True when this statement's next run should be profiled.

        O(1) on the hot path: an empty pending set answers without even
        fingerprinting the text.
        """
        if not self._pending:
            return False
        fingerprint = self.feedback.fingerprint_for(sql)
        with self._lock:
            return fingerprint in self._pending

    def after_job(self, job, fingerprint=None):
        """Fold one terminal job into the control loop.

        ``fingerprint`` is the Query Store's (parser-normalized) value when
        available — used for verdict lookups and the regression event; the
        feedback store keys on its own raw-text fingerprint throughout.
        """
        try:
            self._after_job(job, fingerprint)
        except Exception:
            pass  # advisory; never take the scheduler down

    # -- internals -------------------------------------------------------------

    def _after_job(self, job, store_fingerprint):
        result = getattr(job, "result", None)
        if result is None or getattr(job, "cache_hit", False):
            return
        fingerprint = self.feedback.fingerprint_for(job.sql)
        if fingerprint is None:
            return
        profile = getattr(job, "profile_data", None)
        if getattr(job, "profile", False) and profile is not None:
            self._absorb_probe(job, fingerprint, result, profile,
                               store_fingerprint)
            return
        plan = getattr(result, "plan", None)
        if plan is not None and self._may_replan(fingerprint):
            error = q_error(plan.est_rows, float(len(result.rows)))
            if error > self.q_error_bound:
                if self.request_probe(fingerprint, sql=job.sql):
                    self._emit("probe", fingerprint=store_fingerprint,
                               trigger="q_error", q_error=round(error, 2))
        self._check_regression(job, store_fingerprint)

    def _absorb_probe(self, job, fingerprint, result, profile,
                      store_fingerprint):
        """Harvest a profiled run, then invalidate so the next run re-plans."""
        sites = self.feedback.harvest(fingerprint, result.plan, profile)
        with self._lock:
            self._pending.discard(fingerprint)
            if sites:
                self._replans[fingerprint] = (
                    self._replans.get(fingerprint, 0) + 1)
                if len(self._replans) > 4096:
                    self._replans.clear()
        if not sites:
            return
        self._replans_total.inc()
        if self.cache is not None:
            self.cache.forget_sql(job.sql)
        self._emit("replan", fingerprint=store_fingerprint, sites=sites)

    def request_probe(self, fingerprint, sql=None):
        """Schedule a profiled probe for a feedback fingerprint.

        Also forgets the fingerprint's cached result+plan entry — the
        ISSUE's "no-parse/plan memo" — so a cache hit cannot outlive the
        evidence that its plan is bad.  Returns False when a probe is
        already pending.
        """
        if fingerprint is None:
            return False
        with self._lock:
            if fingerprint in self._pending:
                return False
            self._pending.add(fingerprint)
        self._probes_total.inc()
        if self.cache is not None and sql is not None:
            self.cache.forget_sql(sql)
        return True

    def _may_replan(self, fingerprint):
        with self._lock:
            return self._replans.get(fingerprint, 0) < self.max_replans

    def _check_regression(self, job, fingerprint):
        """First-fire detection for Query Store regression verdicts."""
        store = self.query_store
        if store is None or fingerprint is None:
            return
        entry = store.get(fingerprint)
        # A verdict needs an established plan change, so the (cheap)
        # plan_changes gate keeps never-changed fingerprints off the
        # verdict computation entirely.
        if entry is None or not entry.plan_changes:
            return
        verdict = entry.regression(store.min_executions,
                                   store.regression_factor)
        if verdict is None:
            return
        key = (fingerprint, verdict["regressed_plan"])
        with self._lock:
            if key in self._regression_seen:
                return
            self._regression_seen.add(key)
            if len(self._regression_seen) > 4096:
                self._regression_seen.clear()
        self._regressions_total.inc()
        self._emit("regression", fingerprint=fingerprint,
                   slowdown=verdict["slowdown"],
                   regressed_plan=verdict["regressed_plan"],
                   baseline_plan=verdict["baseline_plan"],
                   regressed_mean_seconds=verdict["regressed_mean_seconds"],
                   baseline_mean_seconds=verdict["baseline_mean_seconds"])
        feedback_fp = self.feedback.fingerprint_for(job.sql)
        if self._may_replan(feedback_fp):
            self.request_probe(feedback_fp, sql=job.sql)

    def _emit(self, event, **fields):
        if not self.events_enabled:
            return
        from repro.obs import events

        events.emit(event, **fields)

    # -- introspection ---------------------------------------------------------

    def summary(self):
        with self._lock:
            return {
                "pending_probes": len(self._pending),
                "fingerprints_replanned": len(self._replans),
                "replans": sum(self._replans.values()),
                "regressions_seen": len(self._regression_seen),
                "q_error_bound": self.q_error_bound,
                "max_replans": self.max_replans,
            }
