"""Workload-driven physical-design advisor.

The paper's premise is that SQLShare users get *no* DBA: nobody creates
indexes, nobody decides which views deserve materialization.  This module
is the automated stand-in.  It reads the workload the platform already
tracks (the Query Store's per-fingerprint execution counts), plans each
frequent statement with the engine's own cost model — including any
harvested cardinality feedback — and ranks two kinds of physical-design
candidates by **fingerprint frequency × estimated cost saved**:

- **index** — a base table repeatedly filtered on a sargable column that
  is not its clustered order.  Applying the recommendation physically
  re-sorts the table (:meth:`repro.core.sqlshare.SQLShare.recluster_dataset`),
  which lets the seek operator bisect to the matching row range.
- **materialize** — a derived dataset whose defining query does join or
  aggregate work on every reference.  Applying it snapshots the view's
  contents under its own name
  (:meth:`~repro.core.sqlshare.SQLShare.materialize_in_place`); the
  platform demotes the snapshot automatically if upstream data changes.

Recommendations are a dry run by default; :meth:`WorkloadAdvisor.apply`
is the opt-in step, surfaced as ``repro advise --apply`` and
``POST /api/v1/advisor/apply``.
"""

import re

from repro.engine import cost as costmodel
from repro.engine import operators as ops

#: Sargable-comparison prefix of an operator filter description
#: (``BoundBinary.describe()`` renders ``column EQ 'x'``, ``column LT 5``…).
_SARGABLE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*) (?:EQ|LT|GT|LE|GE) ")

#: Queries below this execution count are ignored: a one-off statement
#: cannot justify a physical-design change.
DEFAULT_MIN_EXECUTIONS = 2


def _walk(operator, out):
    out.append(operator)
    for subplan in operator.subplans:
        _walk(subplan, out)
    for child in operator.children:
        _walk(child, out)
    return out


class WorkloadAdvisor(object):
    """Ranks index and materialized-view candidates for one platform."""

    def __init__(self, platform, query_store=None):
        self.platform = platform
        self.query_store = query_store

    # -- recommendation --------------------------------------------------------

    def recommendations(self, top=10, min_executions=DEFAULT_MIN_EXECUTIONS):
        """The ranked dry-run report (the ``repro advise`` payload)."""
        workload = self._workload(min_executions)
        candidates = {}
        for item in workload:
            explained = self._explain(item["sql"])
            if explained is None:
                continue
            plan_ops = _walk(explained.plan, [])
            self._index_candidates(item, plan_ops, candidates)
            self._mv_candidates(item, candidates)
        ranked = sorted(candidates.values(),
                        key=lambda cand: (-cand["score"], cand["dataset"]))
        for rank, candidate in enumerate(ranked, start=1):
            candidate["rank"] = rank
        return {
            "queries_considered": len(workload),
            "min_executions": min_executions,
            "recommendations": ranked[:top],
        }

    def _workload(self, min_executions):
        store = self.query_store
        if store is None:
            return []
        items = []
        for entry in store.entries():
            executions = entry.executions + entry.cache_hits
            if executions < min_executions:
                continue
            items.append({
                "sql": entry.sql,
                "fingerprint": entry.fingerprint,
                "executions": executions,
                "total_seconds": entry.total_seconds,
            })
        items.sort(key=lambda item: -item["executions"])
        return items

    def _explain(self, sql):
        try:
            return self.platform.db.explain(sql)
        except Exception:
            return None  # e.g. a truncated Query Store text; skip it

    def _index_candidates(self, item, plan_ops, out):
        for operator in plan_ops:
            if not isinstance(operator, (ops.ClusteredIndexScan,
                                         ops.ClusteredIndexSeek)):
                continue
            table = operator.table
            dataset = self._dataset_for_table(table.name)
            if dataset is None:
                continue
            for description in operator.filters:
                match = _SARGABLE.match(description)
                if match is None:
                    continue
                column = match.group(1).lower()
                if not any(col.name.lower() == column for col in table.columns):
                    continue
                if (table.clustered_on is not None
                        and table.clustered_on.lower() == column):
                    continue  # already clustered on it
                rows = float(len(table.rows)) or 1.0
                selectivity = min(1.0, max(operator.est_rows, 1.0) / rows)
                saved = ((operator.io_cost + operator.cpu_cost)
                         * (1.0 - selectivity))
                if saved <= 0.0:
                    continue
                key = ("index", dataset.name.lower(), column)
                self._accumulate(out, key, item, saved, {
                    "kind": "index",
                    "dataset": dataset.name,
                    "column": column,
                    "action": "recluster",
                    "reason": ("%d executions filter %s on [%s]; clustering "
                               "enables seek range pruning"
                               % (item["executions"], dataset.name, column)),
                })
                break  # one recommendation per operator

    def _mv_candidates(self, item, out):
        for name in self._referenced_datasets(item["sql"]):
            dataset = self.platform.datasets.get(name.lower())
            if (dataset is None or dataset.kind != "derived"
                    or dataset.base_table):
                continue
            explained = self._explain("SELECT * FROM [%s]" % dataset.name)
            if explained is None:
                continue
            view_cost = explained.plan.total_cost
            plan_ops = _walk(explained.plan, [])
            if not any("Join" in op.logical or "Aggregate" in op.logical
                       for op in plan_ops):
                continue  # a trivial wrapper gains nothing from a snapshot
            est_rows = max(explained.plan.est_rows, 1.0)
            after = (costmodel.seek_io(est_rows, explained.plan.row_size)
                     + costmodel.scan_cpu(est_rows))
            saved = view_cost - after
            if saved <= 0.0:
                continue
            key = ("materialize", dataset.name.lower())
            self._accumulate(out, key, item, saved, {
                "kind": "materialize",
                "dataset": dataset.name,
                "action": "materialize_in_place",
                "reason": ("%d executions re-run the join/aggregate "
                           "definition of [%s]"
                           % (item["executions"], dataset.name)),
            })

    def _accumulate(self, out, key, item, saved_per_execution, payload):
        candidate = out.get(key)
        if candidate is None:
            candidate = out[key] = dict(payload)
            candidate.update({
                "score": 0.0,
                "frequency": 0,
                "estimated_saved_per_execution": 0.0,
                "fingerprints": [],
            })
        candidate["frequency"] += item["executions"]
        candidate["score"] += item["executions"] * saved_per_execution
        candidate["estimated_saved_per_execution"] = max(
            candidate["estimated_saved_per_execution"], saved_per_execution)
        if item["fingerprint"] not in candidate["fingerprints"]:
            candidate["fingerprints"].append(item["fingerprint"])

    def _referenced_datasets(self, sql):
        from repro.core.sqlshare import referenced_dataset_names
        from repro.engine import parser as sql_parser

        try:
            return referenced_dataset_names(sql_parser.parse(sql))
        except Exception:
            return []

    def _dataset_for_table(self, table_name):
        lowered = table_name.lower()
        for dataset in self.platform.all_datasets():
            base = dataset.base_table
            if base is not None and base.lower() == lowered:
                return dataset
        return None

    # -- apply (the opt-in step) -----------------------------------------------

    def apply(self, recommendation, owner=None, dry_run=False):
        """Apply one recommendation dict; returns an outcome payload.

        ``owner`` defaults to the target dataset's owner (the advisor is
        an operator surface; ownership checks still run underneath).
        ``dry_run=True`` validates the target without mutating anything.
        """
        kind = recommendation.get("kind")
        dataset = self.platform.dataset(recommendation["dataset"])
        owner = owner or dataset.owner
        if kind == "index":
            column = recommendation["column"]
            if dry_run:
                return {"applied": False, "dry_run": True, "kind": kind,
                        "dataset": dataset.name, "column": column}
            detail = self.platform.recluster_dataset(
                owner, dataset.name, column)
        elif kind == "materialize":
            if dry_run:
                return {"applied": False, "dry_run": True, "kind": kind,
                        "dataset": dataset.name}
            materialized = self.platform.materialize_in_place(
                owner, dataset.name)
            detail = {
                "dataset": materialized.name,
                "base_table": materialized.base_table,
            }
        else:
            raise ValueError("unknown recommendation kind %r" % kind)
        return {"applied": True, "kind": kind, "dataset": dataset.name,
                "detail": detail}
