"""Cardinality feedback store: observed per-operator row counts.

Profiled executions already measure what every operator actually produced
(:mod:`repro.obs.profiler`); this module keeps those observations keyed by
``(query fingerprint, plan site)`` so the planner can replace a synthetic
selectivity guess with the measured cardinality the next time the same
query is planned.

A *plan site* is a structural digest of an operator: its logical role (so
Nested Loops / Hash Match / Merge Join alternatives of the same logical
join share one site), the relation it reads (for scans and seeks), its
predicate descriptions, and the sites of its children.  Estimated rows and
costs are deliberately excluded — the whole point is that the same site
must match across plan alternatives whose estimates differ.

The store is engine-agnostic on purpose: ``repro.engine`` never imports
this package.  The planner receives a duck-typed :class:`FeedbackView`
(``Planner.plan(query, feedback=...)``) and calls ``estimate_for(op)``;
all site-key computation lives here, on both the harvest and lookup side.
"""

import hashlib
import threading
from collections import OrderedDict

#: Bound on remembered fingerprints (LRU beyond this).
DEFAULT_CAPACITY = 512
#: Bound on the raw-SQL -> fingerprint memo (the hot-path shortcut that
#: keeps feedback lookups from re-normalizing every repeated statement).
MEMO_CAPACITY = 1024


def operator_site_key(operator):
    """Structural digest identifying one plan site across re-plannings.

    Stable across physical join alternatives (all three join operators
    report the same *logical* name for a given join kind) and across
    estimate changes; sensitive to the relation scanned, the predicate
    set, and the shape of the subtree below.
    """
    parts = [_site_label(operator)]
    filters = getattr(operator, "filters", None)
    if filters:
        parts.extend(sorted(filters))
    for child in operator.children:
        parts.append(operator_site_key(child))
    blob = "\x1f".join(parts)
    return hashlib.sha256(blob.encode("utf-8", "replace")).hexdigest()[:16]


def _site_label(operator):
    table = getattr(operator, "table", None)
    if table is not None:
        return "%s:%s" % (operator.logical, table.name.lower())
    return operator.logical


def _plan_walk(operator, out):
    """Pre-order walk matching ``QueryProfiler._collect`` (node, then
    subplans, then children) so harvested stats zip positionally."""
    out.append(operator)
    for subplan in operator.subplans:
        _plan_walk(subplan, out)
    for child in operator.children:
        _plan_walk(child, out)


class FeedbackView(object):
    """Read-only per-fingerprint view handed to the planner.

    Duck-typed contract with ``Planner._apply_feedback``: one method,
    ``estimate_for(operator) -> observed rows or None``.
    """

    __slots__ = ("fingerprint", "_sites")

    def __init__(self, fingerprint, sites):
        self.fingerprint = fingerprint
        self._sites = sites

    def estimate_for(self, operator):
        return self._sites.get(operator_site_key(operator))

    def __len__(self):
        return len(self._sites)


class CardinalityFeedbackStore(object):
    """Thread-safe, LRU-bounded map of fingerprint -> observed plan sites."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries = OrderedDict()  # fingerprint -> {site key: rows}
        self._fp_memo = OrderedDict()  # raw sql -> fingerprint
        self.harvests = 0

    # -- fingerprints ----------------------------------------------------------

    def fingerprint_for(self, sql):
        """Query-store fingerprint of ``sql``, memoized on the raw text.

        The memo is what keeps the per-query feedback probe cheap on hot
        paths: repeated statements cost one dict hit, not a re-parse.
        """
        with self._lock:
            cached = self._fp_memo.get(sql)
            if cached is not None:
                self._fp_memo.move_to_end(sql)
                return cached
        from repro.obs.querystore import query_fingerprint

        try:
            fingerprint = query_fingerprint(sql)
        except Exception:
            return None
        with self._lock:
            self._fp_memo[sql] = fingerprint
            while len(self._fp_memo) > MEMO_CAPACITY:
                self._fp_memo.popitem(last=False)
        return fingerprint

    # -- harvesting ------------------------------------------------------------

    def harvest(self, fingerprint, plan_root, profile):
        """Record the observed cardinalities of one profiled execution.

        Walks the executed plan in profiler order, zips it with the
        profile's per-operator stats, and stores ``actual_rows_per_loop``
        for every operator that actually ran.  Returns the number of plan
        sites recorded (0 when the inputs don't line up — learning nothing
        beats learning garbage).
        """
        if fingerprint is None or plan_root is None or profile is None:
            return 0
        operators = []
        _plan_walk(plan_root, operators)
        stats = getattr(profile, "operators", None) or []
        if len(operators) != len(stats):
            return 0
        sites = {}
        for operator, stat in zip(operators, stats):
            if stat.physical_name != operator.physical_name:
                return 0
            if not stat.loops:
                continue
            sites[operator_site_key(operator)] = float(stat.actual_rows_per_loop)
        if not sites:
            return 0
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = self._entries[fingerprint] = {}
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            entry.update(sites)
            self._entries.move_to_end(fingerprint)
            self.harvests += 1
        return len(sites)

    # -- lookup ----------------------------------------------------------------

    def view_for(self, sql):
        """Per-fingerprint :class:`FeedbackView` for a statement, or None.

        This is the per-execution probe on the query hot path: when the
        store is empty it costs one lock acquisition; otherwise one memo
        hit plus one dict get.
        """
        with self._lock:
            if not self._entries:
                return None
        fingerprint = self.fingerprint_for(sql)
        if fingerprint is None:
            return None
        with self._lock:
            sites = self._entries.get(fingerprint)
        if not sites:
            return None
        return FeedbackView(fingerprint, sites)

    def view(self, fingerprint):
        with self._lock:
            sites = self._entries.get(fingerprint)
        if not sites:
            return None
        return FeedbackView(fingerprint, sites)

    def invalidate(self, fingerprint):
        """Forget everything learned about one fingerprint."""
        with self._lock:
            return self._entries.pop(fingerprint, None) is not None

    # -- introspection / persistence -------------------------------------------

    def summary(self):
        with self._lock:
            return {
                "fingerprints": len(self._entries),
                "sites": sum(len(sites) for sites in self._entries.values()),
                "harvests": self.harvests,
                "capacity": self.capacity,
            }

    def dump_state(self):
        """JSON-serializable snapshot (persisted beside the Query Store)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": [
                    {"fingerprint": fingerprint, "sites": dict(sites)}
                    for fingerprint, sites in self._entries.items()
                ],
            }

    def restore_state(self, state):
        entries = OrderedDict()
        for item in state.get("entries", []):
            fingerprint = item.get("fingerprint")
            sites = item.get("sites")
            if not fingerprint or not isinstance(sites, dict):
                continue
            entries[fingerprint] = {
                str(key): float(rows) for key, rows in sites.items()
            }
        with self._lock:
            self.capacity = int(state.get("capacity", self.capacity))
            self._entries = entries
