"""Adaptive optimization: close the loop from observation to planning.

The paper's workload is ad-hoc science queries over unmanaged schemas —
exactly where static cost estimates fail.  This package consumes the
signals the platform already measures and feeds them back into planning:

- :mod:`repro.adaptive.feedback` — per-fingerprint observed operator
  cardinalities harvested from profiled runs; the planner consults them
  instead of the synthetic selectivity defaults when available.
- :mod:`repro.adaptive.replan` — the controller that notices bad root
  estimates (q-error over a bound) or Query Store regression verdicts,
  schedules a profiled probe, and invalidates cached plans so the next
  execution re-plans with feedback.
- :mod:`repro.adaptive.advisor` — workload-driven index and
  materialized-view recommendations ranked by fingerprint frequency ×
  estimated cost saved, with dry-run and opt-in auto-apply modes.
"""

from repro.adaptive.feedback import CardinalityFeedbackStore, FeedbackView
from repro.adaptive.replan import AdaptiveController
from repro.adaptive.advisor import WorkloadAdvisor

__all__ = [
    "CardinalityFeedbackStore",
    "FeedbackView",
    "AdaptiveController",
    "WorkloadAdvisor",
]
