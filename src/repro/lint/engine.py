"""Rule registry and drivers for the lint layer."""

from repro.engine import parser, semantic
from repro.errors import Diagnostic, LexError, ParseError, Span

#: code -> LintRule, in registration order (dicts preserve it).
RULES = {}


class LintRule(object):
    """One registered lint rule.

    ``check`` is a callable ``(result, catalog) -> iterable of (severity,
    message, span)`` — severity may be None to use the rule's default.
    """

    __slots__ = ("code", "name", "description", "severity", "check")

    def __init__(self, code, name, description, severity, check):
        self.code = code
        self.name = name
        self.description = description
        self.severity = severity
        self.check = check

    def run(self, result, catalog):
        for finding in self.check(result, catalog):
            severity, message, span = finding
            yield Diagnostic(self.code, severity or self.severity, message,
                             span, category="lint")


def rule(code, name, description, severity):
    """Decorator registering a lint rule under ``code``."""

    def register(func):
        if code in RULES:
            raise ValueError("duplicate lint rule %s" % code)
        RULES[code] = LintRule(code, name, description, severity, func)
        return func

    return register


def run_rules(result, catalog, codes=None):
    """Run every registered rule (or the given codes) over one analysis."""
    diagnostics = []
    for code, lint_rule in RULES.items():
        if codes is not None and code not in codes:
            continue
        diagnostics.extend(lint_rule.run(result, catalog))
    return diagnostics


def lint_statement(statement, catalog, source=None, codes=None):
    """Analyze + lint one parsed statement; returns (result, diagnostics).

    ``diagnostics`` contains the semantic findings followed by the lint
    findings, position-sorted within each group.
    """
    result = semantic.analyze(statement, catalog, source=source)
    diagnostics = result.sorted_diagnostics() + run_rules(result, catalog, codes)
    return result, diagnostics


def split_statements(text):
    """Split a script into top-level statements on ``;``.

    Respects single-quoted strings, quoted identifiers (double quotes and
    square brackets), line comments and block comments.  Returns a list of
    ``(offset, statement_text)`` pairs; empty statements are dropped.
    """
    parts = []
    start = 0
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            i += 1
            while i < n:
                if text[i] == "'":
                    if text[i + 1 : i + 2] == "'":
                        i += 2
                        continue
                    break
                i += 1
            i += 1
        elif ch == '"' or ch == "[":
            close = '"' if ch == '"' else "]"
            end = text.find(close, i + 1)
            i = n if end < 0 else end + 1
        elif text.startswith("--", i):
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            i = n if end < 0 else end + 2
        elif ch == ";":
            parts.append((start, text[start:i]))
            i += 1
            start = i
        else:
            i += 1
    parts.append((start, text[start:]))
    return [(offset, stmt) for offset, stmt in parts if stmt.strip()]


def _shift_span(span, offset, full_text):
    """Rebase a statement-relative span onto the whole script."""
    if span is None:
        return None
    shifted = Span.from_offset(full_text, span.start + offset,
                               span.end + offset)
    return shifted


def lint_text(text, db, apply_statements=True, lint=True):
    """Lint a multi-statement script; returns a list of Diagnostics.

    Statements are checked in order against ``db``'s catalog.  When
    ``apply_statements`` is set, error-free non-query statements (DDL and
    INSERT) are executed so that later statements resolve against the
    objects they create — the natural mode for linting a schema + queries
    script.  Spans are rebased onto the full script text.
    """
    findings = []
    for offset, stmt_text in split_statements(text):
        pad = len(stmt_text) - len(stmt_text.lstrip())
        stmt_offset = offset + pad
        stmt_text = stmt_text.strip()
        try:
            statement = parser.parse(stmt_text)
        except (LexError, ParseError) as error:
            diagnostic = Diagnostic.from_error(error, stmt_text)
            diagnostic.span = _shift_span(diagnostic.span, stmt_offset, text)
            findings.append(diagnostic)
            continue
        if lint:
            _result, diagnostics = lint_statement(
                statement, db.catalog, source=stmt_text)
        else:
            result = semantic.analyze(statement, db.catalog, source=stmt_text)
            diagnostics = result.sorted_diagnostics()
        had_error = False
        for diagnostic in diagnostics:
            had_error = had_error or diagnostic.severity == "error"
            diagnostic.span = _shift_span(diagnostic.span, stmt_offset, text)
            findings.append(diagnostic)
        if (apply_statements and not had_error
                and not isinstance(statement, semantic.QUERY_NODES)):
            db.execute(stmt_text)
    return findings
