"""Workload lint: query-smell rules over the semantic analyzer's output.

The lint layer never re-implements name resolution — it consumes the
annotated :class:`~repro.engine.semantic.AnalysisResult` (per-SELECT source
lists, inferred expression types, used-column sets) and the catalog's table
statistics, and emits :class:`~repro.errors.Diagnostic` objects with
``LINTxxx`` codes at warning/info severity.
"""

from repro.lint.engine import (
    LintRule,
    RULES,
    lint_statement,
    lint_text,
    run_rules,
    split_statements,
)

# Importing the module registers the built-in rules.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "LintRule",
    "RULES",
    "lint_statement",
    "lint_text",
    "run_rules",
    "split_statements",
]
