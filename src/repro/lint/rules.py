"""Built-in lint rules (LINT001-LINT012).

Each rule consumes the semantic analyzer's :class:`AnalysisResult` — the
per-SELECT source lists, the inferred type of every expression and the
used-column sets — plus the catalog for table statistics.  Rules yield
``(severity, message, span)`` with ``severity=None`` meaning the rule's
default.
"""

from repro.engine import aggregates
from repro.engine import ast_nodes as ast
from repro.engine.ast_nodes import span_of
from repro.engine.types import SQLType, is_numeric, is_temporal
from repro.errors import INFO, WARNING
from repro.lint.engine import rule

_COMPARISONS = ("=", "<>", "<", ">", "<=", ">=")
_SUBQUERY_NODES = (ast.ScalarSubquery, ast.Exists, ast.InSubquery)

#: Estimated cross-product size above which LINT011 fires.
CARTESIAN_ROW_THRESHOLD = 100000


def _walk_shallow(expr):
    """Walk an expression without descending into subquery bodies."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SUBQUERY_NODES):
            if isinstance(node, ast.InSubquery):
                stack.append(node.operand)
            continue
        stack.extend(node.children())


def _clause_exprs(select):
    """Top-level expressions of one SELECT block."""
    for item in select.items:
        yield item.expr
    if select.where is not None:
        yield select.where
    for expr in select.group_by:
        yield expr
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expr


def _join_conditions(select):
    if select.from_clause is None:
        return
    stack = [select.from_clause]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Join):
            if node.condition is not None:
                yield node.condition
            stack.append(node.left)
            stack.append(node.right)


def _resolution_map(result):
    return {id(node): column for node, column in result.resolutions}


def _side_qualifiers(expr, resolutions):
    qualifiers = set()
    for node in _walk_shallow(expr):
        if isinstance(node, ast.ColumnRef):
            column = resolutions.get(id(node))
            if column is not None and column.qualifier:
                qualifiers.add(column.qualifier.lower())
    return qualifiers


def _components(info, resolutions):
    """Connected components of a SELECT's sources under its predicates.

    Any comparison whose two sides touch different sources counts as a
    connecting edge, whether it appears in a JOIN condition or in WHERE.
    """
    names = [source.qualifier.lower() for source in info.sources
             if source.qualifier]
    parent = {name: name for name in names}

    def find(name):
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(a, b):
        if a in parent and b in parent:
            parent[find(a)] = find(b)

    predicates = list(_join_conditions(info.select))
    if info.select.where is not None:
        predicates.append(info.select.where)
    for predicate in predicates:
        for node in _walk_shallow(predicate):
            if isinstance(node, ast.BinaryOp) and node.op in _COMPARISONS:
                left = _side_qualifiers(node.left, resolutions)
                right = _side_qualifiers(node.right, resolutions)
                for a in left:
                    for b in right:
                        if a != b:
                            union(a, b)
    groups = {}
    for name in names:
        groups.setdefault(find(name), []).append(name)
    return list(groups.values())


@rule("LINT001", "select-star-in-view",
      "SELECT * inside a view definition", WARNING)
def select_star_in_view(result, catalog):
    if not isinstance(result.statement, ast.CreateView):
        return
    for info in result.selects:
        for item in info.select.items:
            if isinstance(item.expr, ast.Star):
                yield (None,
                       "SELECT * in view %r: the view silently changes shape "
                       "when an underlying table does"
                       % result.statement.name,
                       span_of(item) or span_of(result.statement))


@rule("LINT002", "missing-join-predicate",
      "FROM sources not connected by any join predicate", WARNING)
def missing_join_predicate(result, catalog):
    resolutions = _resolution_map(result)
    for info in result.selects:
        if len(info.sources) < 2:
            continue
        components = _components(info, resolutions)
        if len(components) > 1:
            flat = sorted(name for group in components for name in group)
            yield (None,
                   "no join predicate connects %s: the query builds a "
                   "cross product" % ", ".join(repr(n) for n in flat),
                   span_of(info.select))


@rule("LINT003", "non-sargable-predicate",
      "predicate wraps a column in an expression, defeating seeks", WARNING)
def non_sargable_predicate(result, catalog):
    resolutions = _resolution_map(result)

    def wrapped_column(expr):
        """A resolved column buried inside a function/cast/arithmetic.

        Views count too: the planner expands them to base-table scans, so
        the wrapped expression defeats seek pushdown just the same.
        """
        if isinstance(expr, (ast.FuncCall, ast.Cast, ast.BinaryOp, ast.UnaryOp)):
            for node in _walk_shallow(expr):
                if isinstance(node, ast.ColumnRef) and id(node) in resolutions:
                    return node
        return None

    for info in result.selects:
        if info.select.where is None:
            continue
        for node in _walk_shallow(info.select.where):
            if isinstance(node, ast.BinaryOp) and node.op in _COMPARISONS:
                sides = ((node.left, node.right), (node.right, node.left))
                for side, other in sides:
                    if not isinstance(other, ast.Literal):
                        continue
                    column = wrapped_column(side)
                    if column is not None:
                        yield (None,
                               "predicate wraps column %r in an expression; "
                               "it cannot be used for a seek" % column.name,
                               span_of(node))
                        break
            elif isinstance(node, ast.Like):
                pattern = node.pattern
                if (isinstance(pattern, ast.Literal)
                        and isinstance(pattern.value, str)
                        and pattern.value.startswith("%")
                        and isinstance(node.operand, ast.ColumnRef)):
                    yield (None,
                           "LIKE pattern %r starts with a wildcard; the scan "
                           "cannot seek" % pattern.value,
                           span_of(node))


@rule("LINT004", "implicit-coercion",
      "comparison relies on an implicit lossy type conversion", WARNING)
def implicit_coercion(result, catalog):
    def lossy(left, right):
        if SQLType.VARCHAR in (left, right):
            other = right if left is SQLType.VARCHAR else left
            return is_numeric(other) or is_temporal(other)
        return (is_numeric(left) and is_temporal(right)) or \
               (is_temporal(left) and is_numeric(right))

    for node in result.statement.walk():
        if isinstance(node, ast.BinaryOp) and node.op in _COMPARISONS:
            left = result.type_of(node.left)
            right = result.type_of(node.right)
            if lossy(left, right):
                yield (None,
                       "comparison between %s and %s relies on implicit "
                       "conversion" % (left.value, right.value),
                       span_of(node))


@rule("LINT005", "unused-cte",
      "CTE is defined but never referenced", WARNING)
def unused_cte(result, catalog):
    for cte in result.unused_ctes:
        yield (None,
               "CTE %r is defined but never referenced" % cte.name,
               span_of(cte))


@rule("LINT006", "unused-derived-column",
      "derived-table column is never used by the outer query", INFO)
def unused_derived_column(result, catalog):
    for info in result.selects:
        for source in info.sources:
            if source.kind != "derived":
                continue
            unused = [column.name for column in source.schema
                      if id(column) not in result.used_columns]
            if unused and len(unused) < len(source.schema):
                yield (None,
                       "derived table %r computes %s but the outer query "
                       "never uses %s"
                       % (source.qualifier,
                          "columns" if len(unused) > 1 else "a column",
                          ", ".join(repr(n) for n in unused)),
                       span_of(source.node))


@rule("LINT007", "order-by-in-subquery",
      "ORDER BY in a subquery without TOP has no effect", WARNING)
def order_by_in_subquery(result, catalog):
    for info in result.selects:
        if info.depth > 0 and info.select.order_by and info.select.top is None:
            yield (None,
                   "ORDER BY in a subquery has no effect without TOP",
                   span_of(info.select.order_by[0]))


@rule("LINT008", "distinct-with-group-by",
      "DISTINCT is redundant when GROUP BY is present", WARNING)
def distinct_with_group_by(result, catalog):
    for info in result.selects:
        if info.select.distinct and info.select.group_by:
            yield (None,
                   "DISTINCT is redundant: GROUP BY already returns one row "
                   "per group",
                   span_of(info.select))


@rule("LINT009", "unqualified-column",
      "unqualified column reference in a multi-table query", INFO)
def unqualified_column(result, catalog):
    resolutions = _resolution_map(result)
    for info in result.selects:
        if len(info.sources) < 2:
            continue
        names = []
        first_span = None
        for expr in _clause_exprs(info.select):
            for node in _walk_shallow(expr):
                if (isinstance(node, ast.ColumnRef) and node.table is None
                        and id(node) in resolutions):
                    if node.name.lower() not in [n.lower() for n in names]:
                        names.append(node.name)
                    if first_span is None:
                        first_span = span_of(node)
        for condition in _join_conditions(info.select):
            for node in _walk_shallow(condition):
                if (isinstance(node, ast.ColumnRef) and node.table is None
                        and id(node) in resolutions):
                    if node.name.lower() not in [n.lower() for n in names]:
                        names.append(node.name)
                    if first_span is None:
                        first_span = span_of(node)
        if names:
            yield (None,
                   "unqualified column%s %s in a query over %d sources"
                   % ("s" if len(names) > 1 else "",
                      ", ".join(repr(n) for n in names), len(info.sources)),
                   first_span)


@rule("LINT010", "aggregate-mixing",
      "aggregates mixed with plain columns and no GROUP BY", WARNING)
def aggregate_mixing(result, catalog):
    for info in result.selects:
        if info.select.group_by or not info.aggregated:
            continue
        plain = None
        has_aggregate = False

        for item in info.select.items:
            stack = [(item.expr, False)]
            while stack:
                node, inside = stack.pop()
                if isinstance(node, _SUBQUERY_NODES + (ast.WindowFunction,)):
                    continue
                if (isinstance(node, ast.FuncCall)
                        and aggregates.is_aggregate_name(node.name)):
                    has_aggregate = True
                    inside = True
                if isinstance(node, ast.ColumnRef) and not inside:
                    plain = plain or node
                stack.extend((child, inside) for child in node.children())
        if has_aggregate and plain is not None:
            yield (None,
                   "column %r appears alongside aggregates without GROUP BY"
                   % plain.name,
                   span_of(plain))


@rule("LINT011", "cartesian-growth",
      "cross product over large tables (catalog cardinality estimate)", WARNING)
def cartesian_growth(result, catalog):
    resolutions = _resolution_map(result)
    for info in result.selects:
        if len(info.sources) < 2:
            continue
        if len(_components(info, resolutions)) < 2:
            continue
        estimate = 1
        known = 0
        for source in info.sources:
            if source.table is not None:
                rows = getattr(source.table.stats, "row_count", 0) or 0
                if rows:
                    estimate *= rows
                    known += 1
        if known >= 2 and estimate >= CARTESIAN_ROW_THRESHOLD:
            yield (None,
                   "cross product would produce on the order of %d rows "
                   "(%d base tables)" % (estimate, known),
                   span_of(info.select))


@rule("LINT012", "order-by-ordinal",
      "ORDER BY by output position, or by an alias shared by several "
      "output columns", WARNING)
def order_by_ordinal(result, catalog):
    """Fragile top-level ORDER BY targets.

    ``ORDER BY 2`` is legal (SEM011 only rejects out-of-range ordinals) but
    silently re-sorts by a different column the moment someone edits the
    select list; an unqualified name matching two output aliases sorts by
    whichever one the binder happens to pick.  Both are paper-grade query
    smells: hand-edited ad-hoc SQL where the ORDER BY stopped meaning what
    it says.  Subquery ORDER BY is LINT007's business, so only the
    statement's outermost query is checked here.
    """

    def check(order_items, output_names):
        for order in order_items:
            expr = order.expr
            if (isinstance(expr, ast.Literal)
                    and isinstance(expr.value, int)
                    and not isinstance(expr.value, bool)
                    and 1 <= expr.value <= len(output_names)):
                yield (None,
                       "ORDER BY %d sorts by position (currently column %r); "
                       "name the column instead"
                       % (expr.value, output_names[expr.value - 1]),
                       span_of(expr))
            elif isinstance(expr, ast.ColumnRef) and expr.table is None:
                matches = sum(
                    1 for name in output_names
                    if name and name.lower() == expr.name.lower())
                if matches > 1:
                    yield (None,
                           "ORDER BY %r is ambiguous: %d output columns "
                           "share that name" % (expr.name, matches),
                           span_of(expr))

    for info in result.selects:
        if info.depth or not info.select.order_by:
            continue
        names = [column.name for column in info.output]
        for finding in check(info.select.order_by, names):
            yield finding
    statement = result.statement
    if isinstance(statement, ast.WithQuery):
        statement = statement.body
    if (isinstance(statement, ast.SetOperation)
            and getattr(statement, "order_by", None) and result.schema):
        names = [column.name for column in result.schema]
        for finding in check(statement.order_by, names):
            yield finding
